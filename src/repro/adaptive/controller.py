"""The adaptive optimization controller.

Modeled on Jikes RVM's adaptive optimization system: method samples
(from whichever profiler is installed — timer or CBS, the controller
does not care) drive promotion through optimization levels; promotion
(re)compiles the method through the optimizer pipeline with the
configured inlining policy.

Levels:

* 0 — baseline (whatever the code cache started with),
* 1 — static inlining only (no profile input),
* 2 — profile-directed inlining using the profiler's current DCG.

A method already at level 2 is *re*-optimized when its sample count has
doubled since its last compile, so maturing profiles can revise early
inlining decisions — this is where profile accuracy pays off or hurts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.program import Program
from repro.opt.inline import merge_plans
from repro.opt.pipeline import optimize_function
from repro.inlining.policy import InlinerPolicy
from repro.inlining.static_heur import StaticSizePolicy


@dataclass
class AdaptiveConfig:
    """Promotion thresholds and behavior switches."""

    #: Method samples required to reach each level.  Level 2 waits for a
    #: reasonably mature profile: its plan quality depends on the DCG,
    #: and sticky plans lock early decisions in.
    level1_samples: int = 3
    level2_samples: int = 24
    #: Re-optimize a level-2 method when samples have grown by this factor.
    reoptimize_growth: float = 2.0
    #: Use the profile (DCG) at level 2.  When False the policy runs with
    #: no DCG even at level 2 — the "static heuristics only" baseline.
    use_profile: bool = True
    #: Upper bound on recompilations per method (safety valve).
    max_compiles_per_method: int = 8
    #: Extend guard chains (PIC-style) when successive plans disagree on
    #: a guard target.  The Jikes-side new inliner uses this; the J9
    #: configuration models the paper's single-target dynamic guarding.
    extend_guard_chains: bool = True
    #: Exponential DCG decay (profile aging for phase tracking): every
    #: ``dcg_decay_period`` ticks, multiply all edge weights by
    #: ``dcg_decay_factor``.  1.0 disables decay (the default; the
    #: paper's accuracy experiments use undecayed cumulative profiles).
    dcg_decay_factor: float = 1.0
    dcg_decay_period: int = 100
    #: Level 3: template-JIT the hottest level-2 methods to generated
    #: host code (see repro.vm.jit).  Host-level only — level 3 charges
    #: no compile time and emits no CompilationEvent, because the JIT
    #: must keep observables bit-identical with interpreted runs.
    jit: bool = False
    #: Method samples required before a level-2 method is JIT-compiled.
    level3_samples: int = 48


@dataclass
class CompilationEvent:
    """Record of one adaptive recompilation (for tests and reports)."""

    tick: int
    function_index: int
    level: int
    inlines: int
    size_before: int
    size_after: int


class AdaptiveSystem:
    """Drives recompilation from profiler samples.  Install via
    :meth:`install`, which hooks the interpreter's tick callback."""

    def __init__(
        self,
        program: Program,
        policy: InlinerPolicy,
        config: AdaptiveConfig | None = None,
        static_policy: InlinerPolicy | None = None,
    ):
        self.program = program
        self.policy = policy
        self.config = config if config is not None else AdaptiveConfig()
        self.static_policy = (
            static_policy
            if static_policy is not None
            else StaticSizePolicy(program, cha=policy.cha)
        )
        self.events: list[CompilationEvent] = []
        self._last_compile_samples: dict[int, int] = {}
        self._compiles: dict[int, int] = {}
        self._last_plan: dict[int, object] = {}  # sticky level-2 plans
        self._decay_organizer = None
        self._jit_attempts: dict[int, int] = {}

    def install(self, vm) -> None:
        if vm.tick_hook is not None:
            raise RuntimeError("interpreter already has a tick hook")
        vm.tick_hook = self.on_tick
        if vm.telemetry is not None and self.policy.telemetry is None:
            # Propagate the VM's tracer so inlining decisions made during
            # adaptive recompilation land in the same trace.
            self.policy.telemetry = vm.telemetry
            self.static_policy.telemetry = vm.telemetry

    # -- warm start (fleet profiles) --------------------------------------------------

    def warm_start(self, vm, dcg, threshold: float | None = None) -> list[int]:
        """Seed the controller from an aggregated offline DCG.

        Methods whose aggregate weight (incoming + outgoing edge weight,
        the offline analogue of method samples) meets ``threshold``
        (default: the level-2 promotion threshold) are compiled straight
        to level 2 with profile-directed plans *before* the run, so hot
        methods of short-running programs never wait for online samples.
        Seeded plans are sticky and re-optimization fires only after the
        run's own samples double the threshold — exactly as if the
        method had been promoted online.  Returns the promoted function
        indices (heaviest first).
        """
        config = self.config
        if threshold is None:
            threshold = float(config.level2_samples)
        weights: dict[int, float] = {}
        for (caller, _pc, callee), weight in dcg.edges().items():
            weights[callee] = weights.get(callee, 0.0) + weight
            weights[caller] = weights.get(caller, 0.0) + weight
        promoted: list[int] = []
        for function_index, weight in sorted(
            weights.items(), key=lambda item: (-item[1], item[0])
        ):
            if weight < threshold:
                continue
            if self._compiles.get(function_index, 0) >= config.max_compiles_per_method:
                continue
            plan = self.policy.plan_for(
                function_index, dcg if config.use_profile else None
            )
            result = optimize_function(self.program, plan)
            vm.code_cache.install(result.function, 2)
            self._last_plan[function_index] = plan
            self._compiles[function_index] = (
                self._compiles.get(function_index, 0) + 1
            )
            # Pretend the method was promoted with a full sample budget:
            # the run's own samples must double it to trigger re-opt.
            self._last_compile_samples[function_index] = int(threshold)
            promoted.append(function_index)
            self.events.append(
                CompilationEvent(
                    tick=vm.ticks,
                    function_index=function_index,
                    level=2,
                    inlines=result.inlines_applied,
                    size_before=result.size_before,
                    size_after=result.size_after,
                )
            )
            if vm.telemetry is not None:
                vm.telemetry.on_recompile(
                    vm.time,
                    function_index,
                    2,
                    result.inlines_applied,
                    result.size_before,
                    result.size_after,
                )
        if vm.telemetry is not None:
            vm.telemetry.on_warm_start(
                vm.time, len(promoted), len(dcg), dcg.total_weight
            )
        return promoted

    # -- tick processing ------------------------------------------------------------

    def on_tick(self, vm) -> None:
        profiler = vm.profiler
        if profiler is None:
            return
        config = self.config
        if config.dcg_decay_factor < 1.0:
            if self._decay_organizer is None:
                from repro.adaptive.organizer import DecayingDCGOrganizer

                self._decay_organizer = DecayingDCGOrganizer(
                    profiler.dcg,
                    factor=config.dcg_decay_factor,
                    period=config.dcg_decay_period,
                )
            self._decay_organizer.on_tick()
        cache = vm.code_cache
        for function_index, samples in profiler.method_samples.items():
            level = cache.opt_level(function_index)
            if level < 1 and samples >= config.level1_samples:
                self._recompile(vm, function_index, 1)
            elif level < 2 and samples >= config.level2_samples:
                self._recompile(vm, function_index, 2)
            elif level >= 2:
                last = self._last_compile_samples.get(function_index, samples)
                if samples >= last * config.reoptimize_growth:
                    self._recompile(vm, function_index, 2)
        if config.jit:
            self._consider_jit(vm)

    def _consider_jit(self, vm) -> None:
        """Level-3 promotion: template-JIT mature level-2 methods.

        Candidates are ordered hottest-first — by observed path heat
        when a path tracker is attached (the Ball-Larus profile knows
        which loops actually run), otherwise by sample count.  A method
        whose level-2 plan was just reinstalled (fresh
        :class:`CompiledMethod`, ``jit`` is None) or whose inline caches
        moved since its guards were baked is re-JITted; attempts are
        capped per function like the plain-run manager's."""
        from repro.vm.jit.compiler import compile_into, ic_signature, vm_jit_sig
        from repro.vm.jit.manager import MAX_ATTEMPTS

        profiler = vm.profiler
        config = self.config
        cache = vm.code_cache
        tracker = vm.path_tracker
        path_totals = (
            tracker.profile.function_totals() if tracker is not None else {}
        )
        candidates = []
        for function_index, samples in profiler.method_samples.items():
            if samples < config.level3_samples:
                continue
            if cache.opt_level(function_index) < 2:
                continue
            heat = path_totals.get(function_index, 0) or samples
            candidates.append((heat, function_index))
        sig = vm_jit_sig(vm)
        for _heat, function_index in sorted(
            candidates, key=lambda item: (-item[0], item[1])
        ):
            method = cache.methods[function_index]
            jrec = method.jit
            if (
                jrec is not None
                and jrec.sig == sig
                and jrec.ic_sig == ic_signature(method)
            ):
                continue
            tries = self._jit_attempts.get(function_index, 0)
            if tries >= MAX_ATTEMPTS:
                continue
            self._jit_attempts[function_index] = tries + 1
            compile_into(vm, method)

    def _recompile(self, vm, function_index: int, level: int) -> None:
        if self._compiles.get(function_index, 0) >= self.config.max_compiles_per_method:
            return
        profiler = vm.profiler
        if level >= 2:
            dcg = profiler.dcg if self.config.use_profile else None
            policy = self.policy
        else:
            dcg = None
            policy = self.static_policy
        plan = policy.plan_for(function_index, dcg)
        if level >= 2:
            previous = self._last_plan.get(function_index)
            if previous is not None:
                plan = merge_plans(
                    previous, plan, dcg, self.config.extend_guard_chains
                )
            self._last_plan[function_index] = plan
        result = optimize_function(self.program, plan)
        vm.code_cache.install(result.function, level)
        # A replaced body starts over at level 3: the fresh CompiledMethod
        # has no JIT record, and its new shape deserves a new attempt
        # budget.
        self._jit_attempts.pop(function_index, None)
        self._compiles[function_index] = self._compiles.get(function_index, 0) + 1
        self._last_compile_samples[function_index] = profiler.method_samples.get(
            function_index, 0
        )
        self.events.append(
            CompilationEvent(
                tick=vm.ticks,
                function_index=function_index,
                level=level,
                inlines=result.inlines_applied,
                size_before=result.size_before,
                size_after=result.size_after,
            )
        )
        if vm.telemetry is not None:
            vm.telemetry.on_recompile(
                vm.time,
                function_index,
                level,
                result.inlines_applied,
                result.size_before,
                result.size_after,
            )
