"""The adaptive optimization system: sampling-driven recompilation."""

from repro.adaptive.controller import AdaptiveConfig, AdaptiveSystem, CompilationEvent
from repro.adaptive.modes import jit_only_cache
from repro.adaptive.organizer import DecayingDCGOrganizer, HotMethodOrganizer

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSystem",
    "CompilationEvent",
    "DecayingDCGOrganizer",
    "HotMethodOrganizer",
    "jit_only_cache",
]
