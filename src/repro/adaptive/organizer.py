"""Profile organizers (after Jikes RVM's adaptive-system organizers).

The raw profilers accumulate method samples and DCG edges; organizers
turn those into the decisions' inputs: a ranked hot-method list and an
optionally decayed call graph.  Per the paper (§5.1), the organizers do
not care whether samples came from timer-based or counter-based
listeners — they just process samples.
"""

from __future__ import annotations

from collections import Counter

from repro.profiling.dcg import DCG


class HotMethodOrganizer:
    """Ranks methods by accumulated samples."""

    def __init__(self, method_samples: Counter):
        self._samples = method_samples

    def hot_methods(self, minimum_samples: int = 1) -> list[tuple[int, int]]:
        """(function index, samples) pairs, hottest first."""
        ranked = [
            (index, count)
            for index, count in self._samples.items()
            if count >= minimum_samples
        ]
        ranked.sort(key=lambda item: -item[1])
        return ranked

    def samples_for(self, function_index: int) -> int:
        return self._samples.get(function_index, 0)


class DecayingDCGOrganizer:
    """Maintains an exponentially decayed view of a profiler's DCG.

    Jikes RVM periodically decays DCG weights so the profile tracks
    phase changes; this organizer applies the decay every ``period``
    ticks when :meth:`on_tick` is called.
    """

    def __init__(self, dcg: DCG, factor: float = 0.95, period: int = 100):
        if not 0.0 < factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        if period < 1:
            raise ValueError("period must be >= 1")
        self._dcg = dcg
        self._factor = factor
        self._period = period
        self._ticks = 0

    def on_tick(self) -> None:
        self._ticks += 1
        if self._ticks % self._period == 0 and self._factor < 1.0:
            self._dcg.decay(self._factor)

    @property
    def dcg(self) -> DCG:
        return self._dcg
