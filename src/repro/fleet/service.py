"""The fleet aggregation service.

One asyncio process serves many concurrent VM publishers.  Each
connection is a sequence of frames (see :mod:`repro.fleet.protocol`);
``publish`` deltas are folded into per-fingerprint
:class:`~repro.fleet.merge.AggregateProfile` instances (loaded lazily
from the repository) and persisted with atomic writes every
``persist_every`` merges per program plus on connection close and
shutdown.

Because merging is synchronous (no ``await`` between reading a frame
and folding it in) the event loop serializes merges per process, and
because the merge itself is order-independent (see
:mod:`repro.fleet.merge`) the aggregate any client observes is a pure
function of the set of published deltas.

A client that violates the protocol gets an ``error`` reply when the
stream is still decodable, otherwise its connection is dropped; the
repository only ever sees complete, validated deltas, so a client
killed mid-frame cannot corrupt anything.

The service also keeps a :class:`~repro.telemetry.metrics.MetricsRegistry`
of its own counters and per-client publish accounting (drops are
inferred from gaps in each run's ``seq`` numbers, since publishers
number every enqueue attempt — even dropped ones).  ``serve
--http-port`` mounts :class:`~repro.telemetry.httpapi.ObservabilityHTTP`
on the same event loop, exposing the registry at ``/metrics`` and
:meth:`FleetService.status` at ``/status``.
"""

from __future__ import annotations

import asyncio

from repro.fleet.merge import AggregateProfile, MergeError, MergePolicy
from repro.fleet.protocol import (
    ProtocolError,
    ack_message,
    error_message,
    read_message,
    snapshot_message,
    write_message,
)
from repro.fleet.repository import ProfileRepository, RepositoryError
from repro.telemetry.metrics import MetricsRegistry

#: Histogram bounds for edges-per-delta: deltas are small by design, so
#: the buckets resolve the interesting low end.
DELTA_EDGE_BUCKETS = (1, 4, 16, 64, 256, 1024)


class FleetService:
    """Aggregates published DCG deltas and serves snapshots."""

    def __init__(
        self,
        repository: ProfileRepository,
        persist_every: int = 1,
        telemetry=None,
        registry: MetricsRegistry | None = None,
    ):
        if persist_every < 1:
            raise ValueError("persist_every must be >= 1")
        self.repository = repository
        self.persist_every = persist_every
        self.telemetry = telemetry
        self.aggregates: dict[str, AggregateProfile] = {}
        self.merges = 0
        self.publishes_rejected = 0
        self.connections = 0
        #: Per-run publish accounting, keyed by the client's ``run_id``.
        self.clients: dict[str, dict] = {}
        self._unpersisted: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

        #: Registry behind ``/metrics`` (names render Prometheus-style,
        #: e.g. ``fleet.publishes`` → ``fleet_publishes_total``).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_publishes = self.registry.counter(
            "fleet.publishes", "publish deltas accepted and merged"
        )
        self._m_rejected = self.registry.counter(
            "fleet.rejected", "publish deltas rejected (malformed or unmergeable)"
        )
        self._m_fetches = self.registry.counter(
            "fleet.fetches", "snapshot fetch requests served"
        )
        self._m_connections = self.registry.counter(
            "fleet.connections", "client connections accepted"
        )
        self._m_active = self.registry.gauge(
            "fleet.active_connections", "client connections currently open"
        )
        self._m_edges = self.registry.counter(
            "fleet.edges_merged", "DCG edges folded into aggregates"
        )
        self._m_dropped = self.registry.counter(
            "fleet.client_drops", "client-side drops inferred from seq gaps"
        )
        self._m_programs = self.registry.gauge(
            "fleet.programs", "distinct program fingerprints aggregated"
        )
        self._m_delta_edges = self.registry.histogram(
            "fleet.delta_edges", DELTA_EDGE_BUCKETS, "edges per published delta"
        )

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.persist_all()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    def persist_all(self) -> None:
        """Flush every dirty aggregate to the repository."""
        for fingerprint, pending in list(self._unpersisted.items()):
            if pending:
                self.repository.store(self.aggregates[fingerprint])
                self._unpersisted[fingerprint] = 0

    # -- connection handling ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        self._m_connections.inc()
        self._m_active.inc()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError:
                    # Undecodable stream (truncated frame, garbage):
                    # nothing sensible to reply to — drop the connection.
                    break
                if message is None:
                    break
                reply = self._dispatch(message)
                try:
                    await write_message(writer, reply)
                except (ConnectionError, OSError):
                    break
        finally:
            # A dead client must not leave merged-but-unpersisted state.
            self._m_active.dec()
            self.persist_all()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, message: dict) -> dict:
        kind = message["type"]
        if kind == "publish":
            return self._on_publish(message)
        if kind == "fetch":
            return self._on_fetch(message)
        if kind == "stats":
            return self._on_stats()
        return error_message(f"unknown message type {kind!r}")

    # -- message handlers ---------------------------------------------------------

    def _aggregate_for(self, fingerprint: str) -> AggregateProfile:
        aggregate = self.aggregates.get(fingerprint)
        if aggregate is None:
            aggregate = self.repository.load(fingerprint)
            if aggregate is None:
                aggregate = AggregateProfile(fingerprint, self.repository.policy)
            self.aggregates[fingerprint] = aggregate
            self._unpersisted.setdefault(fingerprint, 0)
        return aggregate

    def _reject(self, reason: str) -> dict:
        self.publishes_rejected += 1
        self._m_rejected.inc()
        return error_message(reason)

    def _account_client(self, message: dict, edge_count: int, epoch: int) -> None:
        """Fold one accepted publish into the per-run accounting.

        Publishers number every enqueue attempt, including batches their
        bounded queue dropped, so a gap between consecutive ``seq``
        values (or a first ``seq`` above zero) is exactly the number of
        deltas this run lost before they reached the wire.
        """
        run_id = message.get("run_id")
        if not isinstance(run_id, str):
            return
        client = self.clients.get(run_id)
        if client is None:
            client = self.clients[run_id] = {
                "publishes": 0,
                "edges": 0,
                "last_seq": None,
                "dropped": 0,
                "epoch": epoch,
            }
        seq = message.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            expected = 0 if client["last_seq"] is None else client["last_seq"] + 1
            if seq > expected:
                gap = seq - expected
                client["dropped"] += gap
                self._m_dropped.inc(gap)
            if client["last_seq"] is None or seq > client["last_seq"]:
                client["last_seq"] = seq
        client["publishes"] += 1
        client["edges"] += edge_count
        client["epoch"] = epoch

    def _on_publish(self, message: dict) -> dict:
        fingerprint = message.get("fingerprint")
        edges = message.get("edges")
        receivers = message.get("receivers")
        paths = message.get("paths")
        if not isinstance(fingerprint, str) or not isinstance(edges, list):
            return self._reject("publish needs a fingerprint and an edge list")
        if receivers is not None and not isinstance(receivers, list):
            return self._reject("receivers must be a list when present")
        if paths is not None and not isinstance(paths, list):
            return self._reject("paths must be a list when present")
        try:
            aggregate = self._aggregate_for(fingerprint)
        except RepositoryError as error:
            return self._reject(str(error))
        try:
            epoch = int(message.get("epoch", 0))
        except (TypeError, ValueError):
            return self._reject("epoch must be an integer")
        try:
            aggregate.merge_delta(
                edges,
                epoch=epoch,
                run_id=message.get("run_id"),
                receivers=receivers,
                paths=paths,
            )
        except MergeError as error:
            return self._reject(str(error))
        self.merges += 1
        self._m_publishes.inc()
        self._m_edges.inc(len(edges))
        self._m_delta_edges.observe(len(edges))
        self._m_programs.set(len(set(self.aggregates) | set(self.repository.fingerprints())))
        self._account_client(message, len(edges), epoch)
        self._unpersisted[fingerprint] = self._unpersisted.get(fingerprint, 0) + 1
        if self._unpersisted[fingerprint] >= self.persist_every:
            self.repository.store(aggregate)
            self._unpersisted[fingerprint] = 0
        if self.telemetry is not None:
            self.telemetry.on_fleet_merge(
                fingerprint,
                len(edges),
                aggregate.runs,
                aggregate.total_weight,
                trace_id=message.get("trace_id"),
                span_id=message.get("span_id"),
            )
        return ack_message(aggregate.runs, len(aggregate), aggregate.total_weight)

    def _on_fetch(self, message: dict) -> dict:
        self._m_fetches.inc()
        fingerprint = message.get("fingerprint")
        if not isinstance(fingerprint, str):
            return error_message("fetch needs a fingerprint")
        try:
            aggregate = self.aggregates.get(fingerprint) or self.repository.load(
                fingerprint
            )
        except RepositoryError as error:
            return error_message(str(error))
        if aggregate is None or len(aggregate) == 0:
            return snapshot_message(None)
        return snapshot_message(aggregate.to_dict())

    def _on_stats(self) -> dict:
        return {
            "v": 1,
            "type": "stats",
            "programs": sorted(
                set(self.aggregates) | set(self.repository.fingerprints())
            ),
            "merges": self.merges,
            "rejected": self.publishes_rejected,
            "connections": self.connections,
            "quarantined": self.repository.quarantined,
            "clients": len(self.clients),
            "client_drops": sum(c["dropped"] for c in self.clients.values()),
        }

    # -- observability ---------------------------------------------------------------

    def status(self) -> dict:
        """The ``/status`` document: aggregates, clients, and totals.

        Everything here is computed from in-memory state the event loop
        already owns, so serving it cannot block or perturb merging.
        """
        programs = {}
        for fingerprint in sorted(set(self.aggregates) | set(self.repository.fingerprints())):
            aggregate = self.aggregates.get(fingerprint)
            if aggregate is None:
                programs[fingerprint] = {"loaded": False}
                continue
            programs[fingerprint] = {
                "loaded": True,
                "edges": len(aggregate),
                "runs": aggregate.runs,
                "total_weight": round(aggregate.total_weight, 6),
                "epoch": aggregate.epoch,
                "publishes": aggregate.publishes,
            }
        clients = {}
        for run_id, entry in sorted(self.clients.items()):
            attempts = entry["publishes"] + entry["dropped"]
            clients[run_id] = {
                "publishes": entry["publishes"],
                "edges": entry["edges"],
                "last_seq": entry["last_seq"],
                "epoch": entry["epoch"],
                "dropped": entry["dropped"],
                "drop_rate": round(entry["dropped"] / attempts, 6) if attempts else 0.0,
            }
        return {
            "service": "repro-fleet",
            "programs": programs,
            "clients": clients,
            "totals": {
                "merges": self.merges,
                "rejected": self.publishes_rejected,
                "connections": self.connections,
                "quarantined": self.repository.quarantined,
                "client_drops": sum(c["dropped"] for c in self.clients.values()),
            },
        }


async def run_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    decay: float = 1.0,
    max_edges: int | None = None,
    persist_every: int = 1,
    ready=None,
    http_port: int | None = None,
    http_ready=None,
    telemetry=None,
) -> None:
    """Run a fleet service until cancelled (the ``serve`` CLI backend).

    ``ready``, if given, is called with the bound ``(host, port)`` once
    the socket is listening — used for readiness lines and tests.
    ``http_port``, if given, additionally mounts the observability
    listener (``/metrics``, ``/healthz``, ``/status``) on the same
    event loop; ``http_ready`` is called with its bound address.
    """
    from repro.telemetry.httpapi import ObservabilityHTTP

    repository = ProfileRepository(
        root, MergePolicy(decay=decay, max_edges=max_edges)
    )
    service = FleetService(repository, persist_every=persist_every, telemetry=telemetry)
    http = None
    await service.start(host, port)
    if ready is not None:
        ready(service.address)
    try:
        if http_port is not None:
            http = ObservabilityHTTP(
                registry=service.registry,
                status_fn=service.status,
                health_fn=lambda: {"status": "ok", "service": "repro-fleet"},
            )
            await http.start(host, http_port)
            if http_ready is not None:
                http_ready(http.address)
        await service.serve_forever()
    finally:
        if http is not None:
            await http.stop()
        await service.stop()
