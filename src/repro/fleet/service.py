"""The fleet aggregation service.

One asyncio process serves many concurrent VM publishers.  Each
connection is a sequence of frames (see :mod:`repro.fleet.protocol`);
``publish`` deltas are folded into per-fingerprint
:class:`~repro.fleet.merge.AggregateProfile` instances (loaded lazily
from the repository).

The service runs in one of two publish modes:

* **Eager** (the default): each delta is validated and merged inline
  before its ``ack``, and snapshots persist synchronously every
  ``persist_every`` merges per program.  Acks carry post-merge totals
  — the semantics every pre-sharding client observed.
* **Coalescing** (``coalesce=True``, what ``serve --workers N`` shard
  workers and ``serve --coalesce`` run): the accept path only
  validates the delta, appends it to a bounded
  :class:`~repro.fleet.staging.StagingBuffer`, and acks immediately
  (``staged: true``).  A background drain task later coalesces each
  fingerprint's staged deltas into per-epoch lumps
  (:func:`~repro.fleet.merge.coalesce_validated`) and merges them in
  one pass — by merge commutativity the eventual aggregate is
  identical to one-at-a-time merging, so early acks are safe.  A
  ``fetch`` drains that fingerprint first (read-your-writes) and a
  ``flush`` is a full drain-and-persist barrier.

Backpressure: with a per-client rate limit configured (``rate``), or
when the staging buffer hits its high-water mark, a publish is answered
with ``busy`` and a ``retry_after`` the client honors with backoff —
load never silently drops deltas and never kills connections.

Snapshot persistence for the coalescing path — and for every
end-of-connection / shutdown flush (see :meth:`FleetService.drain`) —
happens off the event loop: aggregates are cloned on-loop
(:meth:`~repro.fleet.merge.AggregateProfile.clone_for_snapshot`) and
serialized + atomically written in a worker thread, so a large
repository flush cannot stall concurrent publishes.

Because merging is synchronous (no ``await`` between taking deltas and
folding them in) the event loop serializes merges per process, and
because the merge itself is order-independent (see
:mod:`repro.fleet.merge`) the aggregate any client observes is a pure
function of the set of published deltas.

A client that violates the protocol gets an ``error`` reply when the
stream is still decodable, otherwise its connection is dropped; the
repository only ever sees complete, validated deltas, so a client
killed mid-frame cannot corrupt anything.

The service also keeps a :class:`~repro.telemetry.metrics.MetricsRegistry`
of its own counters and per-client publish accounting (drops are
inferred from gaps in each run's ``seq`` numbers, since publishers
number every enqueue attempt — even dropped ones).  ``serve
--http-port`` mounts :class:`~repro.telemetry.httpapi.ObservabilityHTTP`
on the same event loop, exposing the registry at ``/metrics`` and
:meth:`FleetService.status` at ``/status``.
"""

from __future__ import annotations

import asyncio

from repro.fleet.merge import (
    AggregateProfile,
    MergeError,
    MergePolicy,
    coalesce_validated,
)
from repro.fleet.protocol import (
    ProtocolError,
    ack_message,
    busy_message,
    error_message,
    read_message,
    snapshot_message,
    staged_ack_message,
    write_message,
)
from repro.fleet.repository import ProfileRepository, RepositoryError
from repro.fleet.staging import RateLimiter, StagingBuffer
from repro.telemetry.metrics import MetricsRegistry

#: Histogram bounds for edges-per-delta: deltas are small by design, so
#: the buckets resolve the interesting low end.
DELTA_EDGE_BUCKETS = (1, 4, 16, 64, 256, 1024)


class FleetService:
    """Aggregates published DCG deltas and serves snapshots."""

    def __init__(
        self,
        repository: ProfileRepository,
        persist_every: int = 1,
        telemetry=None,
        registry: MetricsRegistry | None = None,
        coalesce: bool = False,
        rate: float | None = None,
        burst: float | None = None,
        max_staged_rows: int = 200_000,
        drain_interval: float = 0.005,
        allow_shutdown: bool = False,
        shard_id: int | None = None,
    ):
        if persist_every < 1:
            raise ValueError("persist_every must be >= 1")
        self.repository = repository
        self.persist_every = persist_every
        self.telemetry = telemetry
        self.aggregates: dict[str, AggregateProfile] = {}
        self.merges = 0
        self.publishes_rejected = 0
        self.busy_rejections = 0
        self.connections = 0
        #: Per-run publish accounting, keyed by the client's ``run_id``.
        self.clients: dict[str, dict] = {}
        self._unpersisted: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

        self.coalesce = coalesce
        self.drain_interval = drain_interval
        self.allow_shutdown = allow_shutdown
        self.shard_id = shard_id
        self.staging = StagingBuffer(max_staged_rows)
        self.limiter = RateLimiter(rate, burst) if rate else None
        #: Fingerprints merged but not yet snapshotted by the writer.
        self._dirty: set[str] = set()
        self._drain_task: asyncio.Task | None = None
        self._drain_wakeup = asyncio.Event()
        self._persist_lock = asyncio.Lock()
        #: Set by a permitted ``shutdown`` message; the shard worker
        #: main loop waits on it instead of ``serve_forever``.
        self.shutdown_requested = asyncio.Event()

        #: Registry behind ``/metrics`` (names render Prometheus-style,
        #: e.g. ``fleet.publishes`` → ``fleet_publishes_total``).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_publishes = self.registry.counter(
            "fleet.publishes", "publish deltas accepted and merged"
        )
        self._m_rejected = self.registry.counter(
            "fleet.rejected", "publish deltas rejected (malformed or unmergeable)"
        )
        self._m_fetches = self.registry.counter(
            "fleet.fetches", "snapshot fetch requests served"
        )
        self._m_connections = self.registry.counter(
            "fleet.connections", "client connections accepted"
        )
        self._m_active = self.registry.gauge(
            "fleet.active_connections", "client connections currently open"
        )
        self._m_edges = self.registry.counter(
            "fleet.edges_merged", "DCG edges folded into aggregates"
        )
        self._m_dropped = self.registry.counter(
            "fleet.client_drops", "client-side drops inferred from seq gaps"
        )
        self._m_programs = self.registry.gauge(
            "fleet.programs", "distinct program fingerprints aggregated"
        )
        self._m_delta_edges = self.registry.histogram(
            "fleet.delta_edges", DELTA_EDGE_BUCKETS, "edges per published delta"
        )
        self._m_staged = self.registry.counter(
            "fleet.staged", "publish deltas staged for coalesced merging"
        )
        self._m_lumps = self.registry.counter(
            "fleet.coalesced_lumps", "coalesced merge lumps applied"
        )
        self._m_coalesced = self.registry.counter(
            "fleet.coalesced_deltas", "publish deltas absorbed by coalesced lumps"
        )
        self._m_queue_depth = self.registry.gauge(
            "fleet.queue_depth", "publish deltas currently staged"
        )
        self._m_busy = self.registry.counter(
            "fleet.busy", "publishes rejected with busy backpressure"
        )
        self._m_persist_writes = self.registry.counter(
            "fleet.persist_writes", "snapshot files written"
        )
        self._m_persist_pending = self.registry.gauge(
            "fleet.persist_pending", "dirty aggregates awaiting a snapshot write"
        )

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if self.coalesce and self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain_loop())
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        await self.drain()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    def persist_all(self) -> None:
        """Synchronously flush every dirty aggregate to the repository.

        The legacy blocking flush — still correct, but the serving path
        uses :meth:`drain`, which moves the atomic writes off the event
        loop.  Coalesced-but-unstaged deltas are merged first so a sync
        flush can never lose staged state.
        """
        if self.coalesce:
            self._merge_staged()
        for fingerprint in list(self._dirty):
            self._unpersisted[fingerprint] = max(
                1, self._unpersisted.get(fingerprint, 0)
            )
        self._dirty.clear()
        for fingerprint, pending in list(self._unpersisted.items()):
            if pending:
                self.repository.store(self.aggregates[fingerprint])
                self._m_persist_writes.inc()
                self._unpersisted[fingerprint] = 0
        self._m_persist_pending.set(0)

    async def drain(self) -> None:
        """Merge everything staged and persist every dirty aggregate.

        The read-your-writes / durability barrier: serialization and
        the atomic file writes run in a worker thread on a detached
        clone, so the event loop keeps serving while a large repository
        flushes.  Used at connection close, on ``flush`` messages, and
        at shutdown.
        """
        if self.coalesce:
            self._merge_staged()
        for fingerprint, pending in self._unpersisted.items():
            if pending:
                self._dirty.add(fingerprint)
        await self._write_dirty()

    # -- coalesced draining -------------------------------------------------------

    def _kick_drain(self) -> None:
        self._drain_wakeup.set()

    async def _drain_loop(self) -> None:
        """Background task: wake on staged deltas, merge, persist.

        The short sleep after a wakeup is the coalescing window — it
        lets a burst of publishes accumulate so one lump absorbs many
        deltas instead of merging them singly.
        """
        while True:
            await self._drain_wakeup.wait()
            if self.drain_interval > 0:
                await asyncio.sleep(self.drain_interval)
            self._drain_wakeup.clear()
            self._merge_staged()
            await self._write_dirty()

    def _merge_staged(self) -> None:
        """Coalesce and merge every staged delta (synchronous, on-loop)."""
        for fingerprint, deltas, run_ids, count in self.staging.take_all():
            self._merge_lump(fingerprint, deltas, run_ids, count)
        self._m_queue_depth.set(len(self.staging))

    def _merge_one(self, fingerprint: str) -> None:
        """Drain one fingerprint's staged deltas (the fetch barrier)."""
        taken = self.staging.take_one(fingerprint)
        if taken is not None:
            deltas, run_ids, count = taken
            self._merge_lump(fingerprint, deltas, run_ids, count)
            self._m_queue_depth.set(len(self.staging))

    def _merge_lump(self, fingerprint: str, deltas, run_ids, count: int) -> None:
        try:
            aggregate = self._aggregate_for(fingerprint)
        except RepositoryError:
            # The repository refused the fingerprint (e.g. unsafe name
            # that slipped past staging); count the loss explicitly.
            self.publishes_rejected += count
            self._m_rejected.inc(count)
            return
        aggregate.merge_coalesced(
            coalesce_validated(deltas), run_ids=run_ids, publishes=count
        )
        self.merges += count
        self._m_lumps.inc()
        self._m_coalesced.inc(count)
        self._unpersisted[fingerprint] = self._unpersisted.get(fingerprint, 0) + count
        self._dirty.add(fingerprint)
        self._m_persist_pending.set(len(self._dirty))
        if self.telemetry is not None:
            self.telemetry.on_fleet_merge(
                fingerprint, count, aggregate.runs, aggregate.total_weight
            )

    async def _write_dirty(self) -> None:
        """Snapshot every dirty aggregate off the event loop.

        Clones are taken on-loop (cheap shallow dict copies) and the
        sort/serialize/atomic-rename runs in a thread; the lock keeps
        concurrent drains (connection close vs. the drain task) from
        writing the same fingerprint twice in flight.
        """
        async with self._persist_lock:
            while self._dirty:
                fingerprint = self._dirty.pop()
                self._m_persist_pending.set(len(self._dirty))
                aggregate = self.aggregates.get(fingerprint)
                if aggregate is None:
                    continue
                clone = aggregate.clone_for_snapshot()
                await asyncio.to_thread(self.repository.store, clone)
                self._m_persist_writes.inc()
                self._unpersisted[fingerprint] = 0

    # -- connection handling ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        self._m_connections.inc()
        self._m_active.inc()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError:
                    # Undecodable stream (truncated frame, garbage):
                    # nothing sensible to reply to — drop the connection.
                    break
                if message is None:
                    break
                reply = await self._dispatch(message)
                try:
                    await write_message(writer, reply)
                except (ConnectionError, OSError):
                    break
        except asyncio.CancelledError:
            # Event-loop teardown (shard-worker shutdown) cancels open
            # handlers mid-read; exit quietly — stop() already drained.
            pass
        finally:
            # A dead client must not leave merged-but-unpersisted state;
            # the writes themselves run off-loop (see drain()).
            self._m_active.dec()
            await self.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, message: dict) -> dict:
        kind = message["type"]
        if kind == "publish":
            return self._on_publish(message)
        if kind == "fetch":
            return self._on_fetch(message)
        if kind == "stats":
            return self._on_stats()
        if kind == "flush":
            await self.drain()
            return self._on_stats()
        if kind == "status":
            return {"v": 1, "type": "status", "status": self.status()}
        if kind == "shutdown":
            if not self.allow_shutdown:
                return error_message("shutdown not permitted on this service")
            self.shutdown_requested.set()
            return {"v": 1, "type": "ack", "stopping": True}
        return error_message(f"unknown message type {kind!r}")

    # -- message handlers ---------------------------------------------------------

    def _aggregate_for(self, fingerprint: str) -> AggregateProfile:
        aggregate = self.aggregates.get(fingerprint)
        if aggregate is None:
            aggregate = self.repository.load(fingerprint)
            if aggregate is None:
                aggregate = AggregateProfile(fingerprint, self.repository.policy)
            self.aggregates[fingerprint] = aggregate
            self._unpersisted.setdefault(fingerprint, 0)
        return aggregate

    def _reject(self, reason: str) -> dict:
        self.publishes_rejected += 1
        self._m_rejected.inc()
        return error_message(reason)

    def _account_client(self, message: dict, edge_count: int, epoch: int) -> None:
        """Fold one accepted publish into the per-run accounting.

        Publishers number every enqueue attempt, including batches their
        bounded queue dropped, so a gap between consecutive ``seq``
        values (or a first ``seq`` above zero) is exactly the number of
        deltas this run lost before they reached the wire.
        """
        run_id = message.get("run_id")
        if not isinstance(run_id, str):
            return
        client = self.clients.get(run_id)
        if client is None:
            client = self.clients[run_id] = {
                "publishes": 0,
                "edges": 0,
                "last_seq": None,
                "dropped": 0,
                "epoch": epoch,
            }
        seq = message.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            expected = 0 if client["last_seq"] is None else client["last_seq"] + 1
            if seq > expected:
                gap = seq - expected
                client["dropped"] += gap
                self._m_dropped.inc(gap)
            if client["last_seq"] is None or seq > client["last_seq"]:
                client["last_seq"] = seq
        client["publishes"] += 1
        client["edges"] += edge_count
        client["epoch"] = epoch

    def _on_publish(self, message: dict) -> dict:
        fingerprint = message.get("fingerprint")
        edges = message.get("edges")
        receivers = message.get("receivers")
        paths = message.get("paths")
        if not isinstance(fingerprint, str) or not isinstance(edges, list):
            return self._reject("publish needs a fingerprint and an edge list")
        if receivers is not None and not isinstance(receivers, list):
            return self._reject("receivers must be a list when present")
        if paths is not None and not isinstance(paths, list):
            return self._reject("paths must be a list when present")
        try:
            epoch = int(message.get("epoch", 0))
        except (TypeError, ValueError):
            return self._reject("epoch must be an integer")
        if self.coalesce:
            return self._on_publish_staged(
                message, fingerprint, epoch, edges, receivers, paths
            )
        try:
            aggregate = self._aggregate_for(fingerprint)
        except RepositoryError as error:
            return self._reject(str(error))
        try:
            aggregate.merge_delta(
                edges,
                epoch=epoch,
                run_id=message.get("run_id"),
                receivers=receivers,
                paths=paths,
            )
        except MergeError as error:
            return self._reject(str(error))
        self.merges += 1
        self._m_publishes.inc()
        self._m_edges.inc(len(edges))
        self._m_delta_edges.observe(len(edges))
        self._m_programs.set(len(set(self.aggregates) | set(self.repository.fingerprints())))
        self._account_client(message, len(edges), epoch)
        self._unpersisted[fingerprint] = self._unpersisted.get(fingerprint, 0) + 1
        if self._unpersisted[fingerprint] >= self.persist_every:
            self.repository.store(aggregate)
            self._m_persist_writes.inc()
            self._unpersisted[fingerprint] = 0
        if self.telemetry is not None:
            self.telemetry.on_fleet_merge(
                fingerprint,
                len(edges),
                aggregate.runs,
                aggregate.total_weight,
                trace_id=message.get("trace_id"),
                span_id=message.get("span_id"),
            )
        return ack_message(aggregate.runs, len(aggregate), aggregate.total_weight)

    def _on_publish_staged(
        self, message: dict, fingerprint: str, epoch: int, edges, receivers, paths
    ) -> dict:
        """The coalescing accept path: admit, validate, stage, ack.

        Validation happens here — synchronously, so a malformed delta
        is rejected in its own reply exactly like eager mode — but the
        merge is deferred to the drain task.  Both backpressure checks
        precede validation: a ``busy`` reply means the delta was *not*
        staged and the client must retry it.
        """
        if self.limiter is not None:
            retry_after = self.limiter.check(message.get("run_id"))
            if retry_after > 0.0:
                self.busy_rejections += 1
                self._m_busy.inc()
                return busy_message(retry_after)
        if self.staging.full:
            self._kick_drain()
            self.busy_rejections += 1
            self._m_busy.inc()
            return busy_message(0.05)
        try:
            validated_edges = [
                (key, weight)
                for key, weight in (
                    AggregateProfile._validate_row(entry, "edge") for entry in edges
                )
                if weight
            ]
            validated_receivers = [
                (key, count)
                for key, count in (
                    AggregateProfile._validate_row(entry, "receiver row")
                    for entry in receivers or ()
                )
                if count
            ]
            validated_paths = [
                (key, count)
                for key, count in (
                    AggregateProfile._validate_path_row(entry, "path row")
                    for entry in paths or ()
                )
                if count
            ]
        except MergeError as error:
            return self._reject(str(error))
        depth = self.staging.stage(
            fingerprint,
            epoch,
            validated_edges,
            validated_receivers,
            validated_paths,
            message.get("run_id"),
        )
        self._m_publishes.inc()
        self._m_staged.inc()
        self._m_edges.inc(len(edges))
        self._m_delta_edges.observe(len(edges))
        self._m_queue_depth.set(depth)
        self._account_client(message, len(edges), epoch)
        self._kick_drain()
        return staged_ack_message(depth)

    def _on_fetch(self, message: dict) -> dict:
        self._m_fetches.inc()
        fingerprint = message.get("fingerprint")
        if not isinstance(fingerprint, str):
            return error_message("fetch needs a fingerprint")
        if self.coalesce:
            # Read-your-writes: a fetch observes everything this
            # service has acked for the fingerprint, staged or merged.
            self._merge_one(fingerprint)
        try:
            aggregate = self.aggregates.get(fingerprint) or self.repository.load(
                fingerprint
            )
        except RepositoryError as error:
            return error_message(str(error))
        if aggregate is None or len(aggregate) == 0:
            return snapshot_message(None)
        return snapshot_message(aggregate.to_dict())

    def _on_stats(self) -> dict:
        return {
            "v": 1,
            "type": "stats",
            "programs": sorted(
                set(self.aggregates) | set(self.repository.fingerprints())
            ),
            "merges": self.merges,
            "rejected": self.publishes_rejected,
            "busy": self.busy_rejections,
            "staged": len(self.staging),
            "coalesce_ratio": self.staging.coalesce_ratio(),
            "connections": self.connections,
            "quarantined": self.repository.quarantined,
            "clients": len(self.clients),
            "client_drops": sum(c["dropped"] for c in self.clients.values()),
        }

    # -- observability ---------------------------------------------------------------

    def status(self) -> dict:
        """The ``/status`` document: aggregates, clients, and totals.

        Everything here is computed from in-memory state the event loop
        already owns, so serving it cannot block or perturb merging.
        """
        programs = {}
        for fingerprint in sorted(set(self.aggregates) | set(self.repository.fingerprints())):
            aggregate = self.aggregates.get(fingerprint)
            if aggregate is None:
                programs[fingerprint] = {"loaded": False}
                continue
            programs[fingerprint] = {
                "loaded": True,
                "edges": len(aggregate),
                "runs": aggregate.runs,
                "total_weight": round(aggregate.total_weight, 6),
                "epoch": aggregate.epoch,
                "publishes": aggregate.publishes,
            }
        clients = {}
        for run_id, entry in sorted(self.clients.items()):
            attempts = entry["publishes"] + entry["dropped"]
            clients[run_id] = {
                "publishes": entry["publishes"],
                "edges": entry["edges"],
                "last_seq": entry["last_seq"],
                "epoch": entry["epoch"],
                "dropped": entry["dropped"],
                "drop_rate": round(entry["dropped"] / attempts, 6) if attempts else 0.0,
            }
        document = {
            "service": "repro-fleet",
            "programs": programs,
            "clients": clients,
            "totals": {
                "merges": self.merges,
                "rejected": self.publishes_rejected,
                "busy": self.busy_rejections,
                "connections": self.connections,
                "quarantined": self.repository.quarantined,
                "client_drops": sum(c["dropped"] for c in self.clients.values()),
            },
            "staging": {
                "coalesce": self.coalesce,
                "queue_depth": len(self.staging),
                "staged_rows": self.staging.staged_rows,
                "coalesce_ratio": self.staging.coalesce_ratio(),
                "busy_rejections": self.busy_rejections,
                "persist_pending": len(self._dirty),
            },
        }
        if self.shard_id is not None:
            document["shard"] = self.shard_id
        return document


async def run_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    decay: float = 1.0,
    max_edges: int | None = None,
    persist_every: int = 1,
    ready=None,
    http_port: int | None = None,
    http_ready=None,
    telemetry=None,
    coalesce: bool = False,
    rate: float | None = None,
    burst: float | None = None,
) -> None:
    """Run a single-process fleet service until cancelled.

    The ``serve`` CLI backend for ``--workers 1`` (``--workers N``
    routes through :func:`repro.fleet.shard.run_sharded_service`
    instead).  ``ready``, if given, is called with the bound ``(host,
    port)`` once the socket is listening — used for readiness lines and
    tests.  ``http_port``, if given, additionally mounts the
    observability listener (``/metrics``, ``/healthz``, ``/status``) on
    the same event loop; ``http_ready`` is called with its bound
    address.  ``coalesce`` switches the publish path to staged acks
    with background coalesced merging; ``rate``/``burst`` enable the
    per-client token-bucket backpressure.
    """
    from repro.telemetry.httpapi import ObservabilityHTTP

    repository = ProfileRepository(
        root, MergePolicy(decay=decay, max_edges=max_edges)
    )
    service = FleetService(
        repository,
        persist_every=persist_every,
        telemetry=telemetry,
        coalesce=coalesce,
        rate=rate,
        burst=burst,
    )
    http = None
    await service.start(host, port)
    if ready is not None:
        ready(service.address)
    try:
        if http_port is not None:
            http = ObservabilityHTTP(
                registry=service.registry,
                status_fn=service.status,
                health_fn=lambda: {"status": "ok", "service": "repro-fleet"},
            )
            await http.start(host, http_port)
            if http_ready is not None:
                http_ready(http.address)
        await service.serve_forever()
    finally:
        if http is not None:
            await http.stop()
        await service.stop()
