"""The fleet aggregation service.

One asyncio process serves many concurrent VM publishers.  Each
connection is a sequence of frames (see :mod:`repro.fleet.protocol`);
``publish`` deltas are folded into per-fingerprint
:class:`~repro.fleet.merge.AggregateProfile` instances (loaded lazily
from the repository) and persisted with atomic writes every
``persist_every`` merges per program plus on connection close and
shutdown.

Because merging is synchronous (no ``await`` between reading a frame
and folding it in) the event loop serializes merges per process, and
because the merge itself is order-independent (see
:mod:`repro.fleet.merge`) the aggregate any client observes is a pure
function of the set of published deltas.

A client that violates the protocol gets an ``error`` reply when the
stream is still decodable, otherwise its connection is dropped; the
repository only ever sees complete, validated deltas, so a client
killed mid-frame cannot corrupt anything.
"""

from __future__ import annotations

import asyncio

from repro.fleet.merge import AggregateProfile, MergeError, MergePolicy
from repro.fleet.protocol import (
    ProtocolError,
    ack_message,
    error_message,
    read_message,
    snapshot_message,
    write_message,
)
from repro.fleet.repository import ProfileRepository, RepositoryError


class FleetService:
    """Aggregates published DCG deltas and serves snapshots."""

    def __init__(
        self,
        repository: ProfileRepository,
        persist_every: int = 1,
        telemetry=None,
    ):
        if persist_every < 1:
            raise ValueError("persist_every must be >= 1")
        self.repository = repository
        self.persist_every = persist_every
        self.telemetry = telemetry
        self.aggregates: dict[str, AggregateProfile] = {}
        self.merges = 0
        self.publishes_rejected = 0
        self.connections = 0
        self._unpersisted: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.persist_all()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    def persist_all(self) -> None:
        """Flush every dirty aggregate to the repository."""
        for fingerprint, pending in list(self._unpersisted.items()):
            if pending:
                self.repository.store(self.aggregates[fingerprint])
                self._unpersisted[fingerprint] = 0

    # -- connection handling ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError:
                    # Undecodable stream (truncated frame, garbage):
                    # nothing sensible to reply to — drop the connection.
                    break
                if message is None:
                    break
                reply = self._dispatch(message)
                try:
                    await write_message(writer, reply)
                except (ConnectionError, OSError):
                    break
        finally:
            # A dead client must not leave merged-but-unpersisted state.
            self.persist_all()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, message: dict) -> dict:
        kind = message["type"]
        if kind == "publish":
            return self._on_publish(message)
        if kind == "fetch":
            return self._on_fetch(message)
        if kind == "stats":
            return self._on_stats()
        return error_message(f"unknown message type {kind!r}")

    # -- message handlers ---------------------------------------------------------

    def _aggregate_for(self, fingerprint: str) -> AggregateProfile:
        aggregate = self.aggregates.get(fingerprint)
        if aggregate is None:
            aggregate = self.repository.load(fingerprint)
            if aggregate is None:
                aggregate = AggregateProfile(fingerprint, self.repository.policy)
            self.aggregates[fingerprint] = aggregate
            self._unpersisted.setdefault(fingerprint, 0)
        return aggregate

    def _on_publish(self, message: dict) -> dict:
        fingerprint = message.get("fingerprint")
        edges = message.get("edges")
        receivers = message.get("receivers")
        if not isinstance(fingerprint, str) or not isinstance(edges, list):
            self.publishes_rejected += 1
            return error_message("publish needs a fingerprint and an edge list")
        if receivers is not None and not isinstance(receivers, list):
            self.publishes_rejected += 1
            return error_message("receivers must be a list when present")
        try:
            aggregate = self._aggregate_for(fingerprint)
        except RepositoryError as error:
            self.publishes_rejected += 1
            return error_message(str(error))
        try:
            epoch = int(message.get("epoch", 0))
        except (TypeError, ValueError):
            self.publishes_rejected += 1
            return error_message("epoch must be an integer")
        try:
            aggregate.merge_delta(
                edges,
                epoch=epoch,
                run_id=message.get("run_id"),
                receivers=receivers,
            )
        except MergeError as error:
            self.publishes_rejected += 1
            return error_message(str(error))
        self.merges += 1
        self._unpersisted[fingerprint] = self._unpersisted.get(fingerprint, 0) + 1
        if self._unpersisted[fingerprint] >= self.persist_every:
            self.repository.store(aggregate)
            self._unpersisted[fingerprint] = 0
        if self.telemetry is not None:
            self.telemetry.on_fleet_merge(
                fingerprint, len(edges), aggregate.runs, aggregate.total_weight
            )
        return ack_message(aggregate.runs, len(aggregate), aggregate.total_weight)

    def _on_fetch(self, message: dict) -> dict:
        fingerprint = message.get("fingerprint")
        if not isinstance(fingerprint, str):
            return error_message("fetch needs a fingerprint")
        try:
            aggregate = self.aggregates.get(fingerprint) or self.repository.load(
                fingerprint
            )
        except RepositoryError as error:
            return error_message(str(error))
        if aggregate is None or len(aggregate) == 0:
            return snapshot_message(None)
        return snapshot_message(aggregate.to_dict())

    def _on_stats(self) -> dict:
        return {
            "v": 1,
            "type": "stats",
            "programs": sorted(
                set(self.aggregates) | set(self.repository.fingerprints())
            ),
            "merges": self.merges,
            "rejected": self.publishes_rejected,
            "connections": self.connections,
            "quarantined": self.repository.quarantined,
        }


async def run_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    decay: float = 1.0,
    max_edges: int | None = None,
    persist_every: int = 1,
    ready=None,
) -> None:
    """Run a fleet service until cancelled (the ``serve`` CLI backend).

    ``ready``, if given, is called with the bound ``(host, port)`` once
    the socket is listening — used for readiness lines and tests.
    """
    repository = ProfileRepository(
        root, MergePolicy(decay=decay, max_edges=max_edges)
    )
    service = FleetService(repository, persist_every=persist_every)
    await service.start(host, port)
    if ready is not None:
        ready(service.address)
    try:
        await service.serve_forever()
    finally:
        await service.stop()
