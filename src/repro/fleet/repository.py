"""On-disk snapshot repository for fleet aggregates.

Layout: one JSON file per program fingerprint under the repository
root — ``<root>/<fingerprint>.json`` — each a version-2 profile dict
(so ``repro-mini run --load-profile <root>/<fp>.json`` works on a
snapshot directly).

Durability contract:

* **Atomic writes.**  Snapshots are written to a temporary file in the
  repository directory and ``os.replace``d into place; a reader (or a
  crash) never observes a torn snapshot.
* **Corruption recovery.**  A snapshot that fails to parse is
  quarantined (renamed to ``<fingerprint>.json.corrupt``) and treated
  as absent, so one bad file — a truncated disk, a partial copy — never
  takes the service down or blocks future aggregation for that program.
"""

from __future__ import annotations

import json
import os
import re
import tempfile

from repro.fleet.merge import AggregateProfile, MergeError, MergePolicy

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{8,64}$")


class RepositoryError(Exception):
    """The repository root is unusable or a fingerprint is invalid."""


def _check_fingerprint(fingerprint: str) -> str:
    if not _FINGERPRINT_RE.match(fingerprint or ""):
        raise RepositoryError(f"invalid fingerprint {fingerprint!r}")
    return fingerprint


class ProfileRepository:
    """Stores one :class:`AggregateProfile` snapshot per fingerprint."""

    def __init__(self, root: str, policy: MergePolicy | None = None):
        self.root = os.path.abspath(root)
        self.policy = policy if policy is not None else MergePolicy()
        self.quarantined = 0
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as error:
            raise RepositoryError(f"cannot create repository at {root}: {error}")

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, _check_fingerprint(fingerprint) + ".json")

    def fingerprints(self) -> list[str]:
        """Fingerprints with a (non-quarantined) snapshot on disk, sorted."""
        found = []
        for name in os.listdir(self.root):
            stem, ext = os.path.splitext(name)
            if ext == ".json" and _FINGERPRINT_RE.match(stem):
                found.append(stem)
        return sorted(found)

    def load(self, fingerprint: str) -> AggregateProfile | None:
        """Load a snapshot; ``None`` if absent or quarantined as corrupt."""
        path = self.path_for(fingerprint)
        try:
            with open(path) as handle:
                data = json.load(handle)
            return AggregateProfile.from_dict(data, self.policy)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, MergeError, ValueError):
            self._quarantine(path)
            return None

    def store(self, aggregate: AggregateProfile) -> str:
        """Atomically persist ``aggregate``; returns the snapshot path."""
        path = self.path_for(aggregate.fingerprint)
        fd, tmp_path = tempfile.mkstemp(
            prefix=aggregate.fingerprint[:12] + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(aggregate.to_dict(), handle, separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + ".corrupt")
            self.quarantined += 1
        except OSError:
            pass
