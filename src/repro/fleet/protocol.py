"""The fleet wire protocol: length-prefixed, versioned JSON messages.

Every message on the wire is one *frame*: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON encoding a single
object.  Every object carries ``"v"`` (protocol version) and ``"type"``
(message kind).  Frames are small (deltas, not whole profiles) and
bounded by :data:`MAX_MESSAGE_BYTES`; anything larger, truncated
mid-frame, or non-JSON raises :class:`ProtocolError` — the server drops
the connection, never its repository.

Message kinds
-------------

Client → server:

* ``publish`` — one DCG delta for one program::

      {"v": 1, "type": "publish", "fingerprint": "<sha256>",
       "run_id": "<opaque>", "seq": 0, "epoch": 0,
       "edges": [["Caller.name", pc, "Callee.name", weight], ...],
       "receivers": [["Caller.name", pc, "ClassName", count], ...],
       "trace_id": "<run id>", "span_id": "<run id>:<seq>"}

  ``epoch`` is the client's profile age (newer epochs dominate under
  decay; see :mod:`repro.fleet.merge`); ``seq`` numbers the deltas of
  one run for diagnostics.  ``receivers`` is optional: the exact
  per-site receiver-class counts the VM's inline caches accumulated
  since the last delta (see :mod:`repro.profiling.receivers`), keyed
  symbolically like edges so aggregates outlive any single build.
  ``paths`` is likewise optional: Ball-Larus path-profile rows
  (``[function, path_id, count]``, see :mod:`repro.profiling.paths`)
  merged with the same decay and commutativity guarantees.
  ``trace_id``/``span_id`` are optional trace-span coordinates: when a
  publisher stamps them, the server echoes them into its own telemetry
  (``fleet_merge`` events) so the client's and server's offline traces
  stitch into one cross-process timeline (see docs/OBSERVABILITY.md).
  Old servers ignore the keys; old clients simply never send them.

* ``fetch`` — request the aggregated snapshot for a fingerprint.
* ``stats`` — request server-wide counters.
* ``flush`` — force staged deltas to merge and dirty aggregates to
  persist before the reply (used by benchmarks and tests that need a
  read-your-writes barrier against a coalescing service).
* ``status`` — request the full ``/status`` document over the framed
  protocol (what the sharded frontend uses to poll its workers).
* ``shutdown`` — ask the service to stop serving (honored only by
  shard workers, which are started with ``allow_shutdown=True``;
  public-facing services reply with an error).

Server → client:

* ``ack`` — publish accepted: ``{"runs", "edges", "total_weight"}``.
  A coalescing service acks as soon as the delta is validated and
  staged (``"staged": true`` plus the staging queue depth) — merge
  commutativity guarantees the eventual aggregate is identical, so
  early acks are safe.
* ``busy`` — publish rejected for load, not content:
  ``{"retry_after": seconds}``.  The client must back off and retry;
  the delta was *not* staged.  Emitted when a per-client token bucket
  is exhausted or the staging buffer is at its high-water mark.
* ``snapshot`` — fetch reply: ``{"found": bool, "snapshot": {...}|null}``
  where the snapshot is a version-2 profile dict (see
  :mod:`repro.profiling.serialize`) plus a ``"fleet"`` metadata key.
* ``stats`` — server counters.
* ``status`` — the ``/status`` document: ``{"status": {...}}``.
* ``error`` — the request was malformed: ``{"reason": "..."}``.

Sharded routing
---------------

``serve --workers N`` puts a routing frontend in front of N worker
processes; every fingerprint maps to exactly one shard via
:func:`shard_for` (first 8 hex digits, modulo worker count), so the
order-independent epoch merge keeps each aggregate whole on its shard.
The frontend never JSON-decodes publish frames on the hot path:
:func:`extract_fingerprint` scans the raw payload for the
``"fingerprint":"..."`` key (sound for canonically-encoded messages —
a quote inside a JSON string value is always backslash-escaped, so the
unescaped key bytes cannot occur inside a value) and falls back to a
full parse when the scan fails.

Both asyncio-stream and blocking-socket helpers are provided; the VM
side publishes from a plain thread (it must never touch the VM's loop),
while the server is a single asyncio process.
"""

from __future__ import annotations

import json
import socket
import struct

PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  A delta for even a large DCG is
#: a few hundred KB; anything bigger is garbage or abuse.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A frame or message violated the wire protocol."""


# -- message constructors ---------------------------------------------------------


def publish_message(
    fingerprint: str,
    edges: list,
    run_id: str,
    seq: int = 0,
    epoch: int = 0,
    receivers: list | None = None,
    paths: list | None = None,
    trace_id: str | None = None,
    span_id: str | None = None,
) -> dict:
    message = {
        "v": PROTOCOL_VERSION,
        "type": "publish",
        "fingerprint": fingerprint,
        "run_id": run_id,
        "seq": seq,
        "epoch": epoch,
        "edges": edges,
    }
    if receivers:
        message["receivers"] = receivers
    if paths:
        message["paths"] = paths
    if span_id is not None:
        message["trace_id"] = trace_id
        message["span_id"] = span_id
    return message


def fetch_message(fingerprint: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "fetch", "fingerprint": fingerprint}


def stats_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "stats"}


def flush_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "flush"}


def status_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "status"}


def shutdown_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "shutdown"}


def ack_message(runs: int, edges: int, total_weight: float) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "ack",
        "runs": runs,
        "edges": edges,
        "total_weight": total_weight,
    }


def staged_ack_message(depth: int) -> dict:
    """The coalescing ack: validated and staged, merge pending."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "ack",
        "staged": True,
        "queue_depth": depth,
    }


def busy_message(retry_after: float) -> dict:
    """Backpressure reject: try again in ``retry_after`` seconds."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "busy",
        "retry_after": round(float(retry_after), 4),
    }


def snapshot_message(snapshot: dict | None) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "snapshot",
        "found": snapshot is not None,
        "snapshot": snapshot,
    }


def error_message(reason: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "error", "reason": reason}


# -- framing ----------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """Frame ``message`` (which must already carry ``v``/``type``)."""
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(payload)} bytes)")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse and validate one frame's payload."""
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    if message.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {message.get('v')!r} "
            f"(expected {PROTOCOL_VERSION})"
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no type")
    return message


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")


# -- sharded routing --------------------------------------------------------------

_FP_MARKER = b'"fingerprint":"'


def shard_for(fingerprint: str, shards: int) -> int:
    """The shard owning ``fingerprint`` (first 8 hex digits mod N).

    Any function of the fingerprint alone is a correct router — the
    epoch merge is order-independent, so correctness only needs every
    delta for one fingerprint to land on one shard.  Non-hex
    fingerprints (which the shard will reject anyway) route to 0.
    """
    if shards <= 1:
        return 0
    try:
        return int(fingerprint[:8], 16) % shards
    except ValueError:
        return 0


def extract_fingerprint(payload: bytes) -> str | None:
    """The ``fingerprint`` field of a framed payload, without a parse.

    Fast path: scan for the raw ``"fingerprint":"`` key bytes.  In any
    valid JSON document those fifteen bytes can only appear as key
    syntax — a quote inside a string value is always escaped as
    ``\\"`` — so the first hit is the first ``fingerprint`` key, which
    for every message our clients encode is the top-level one.  A
    candidate containing an escape, or a payload with no hit, falls
    back to a full parse; undecodable payloads yield ``None`` (the
    frontend forwards those to shard 0, whose decoder produces the
    protocol error reply).
    """
    start = payload.find(_FP_MARKER)
    if start >= 0:
        begin = start + len(_FP_MARKER)
        end = payload.find(b'"', begin)
        if end >= 0:
            candidate = payload[begin:end]
            if b"\\" not in candidate:
                return candidate.decode("utf-8", "replace")
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    fingerprint = message.get("fingerprint")
    return fingerprint if isinstance(fingerprint, str) else None


# -- asyncio streams (server side) ------------------------------------------------


async def read_frame_payload(reader) -> bytes | None:
    """Read one frame's raw payload bytes without decoding it.

    The routing frontend's hot path: it forwards payloads verbatim and
    never pays the JSON parse (the owning shard does).  Same EOF and
    truncation semantics as :func:`read_message`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error


def frame_payload(payload: bytes) -> bytes:
    """Re-frame an already-encoded payload (the forwarding path)."""
    _check_length(len(payload))
    return _HEADER.pack(len(payload)) + payload


async def read_message(reader) -> dict | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` for truncation mid-frame, oversized frames,
    or undecodable payloads.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return decode_payload(payload)


async def write_message(writer, message: dict) -> None:
    writer.write(encode_message(message))
    await writer.drain()


# -- blocking sockets (client side) -----------------------------------------------


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket) -> dict:
    """Read one frame from a blocking socket (honors its timeout)."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
