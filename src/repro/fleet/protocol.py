"""The fleet wire protocol: length-prefixed, versioned JSON messages.

Every message on the wire is one *frame*: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON encoding a single
object.  Every object carries ``"v"`` (protocol version) and ``"type"``
(message kind).  Frames are small (deltas, not whole profiles) and
bounded by :data:`MAX_MESSAGE_BYTES`; anything larger, truncated
mid-frame, or non-JSON raises :class:`ProtocolError` — the server drops
the connection, never its repository.

Message kinds
-------------

Client → server:

* ``publish`` — one DCG delta for one program::

      {"v": 1, "type": "publish", "fingerprint": "<sha256>",
       "run_id": "<opaque>", "seq": 0, "epoch": 0,
       "edges": [["Caller.name", pc, "Callee.name", weight], ...],
       "receivers": [["Caller.name", pc, "ClassName", count], ...],
       "trace_id": "<run id>", "span_id": "<run id>:<seq>"}

  ``epoch`` is the client's profile age (newer epochs dominate under
  decay; see :mod:`repro.fleet.merge`); ``seq`` numbers the deltas of
  one run for diagnostics.  ``receivers`` is optional: the exact
  per-site receiver-class counts the VM's inline caches accumulated
  since the last delta (see :mod:`repro.profiling.receivers`), keyed
  symbolically like edges so aggregates outlive any single build.
  ``paths`` is likewise optional: Ball-Larus path-profile rows
  (``[function, path_id, count]``, see :mod:`repro.profiling.paths`)
  merged with the same decay and commutativity guarantees.
  ``trace_id``/``span_id`` are optional trace-span coordinates: when a
  publisher stamps them, the server echoes them into its own telemetry
  (``fleet_merge`` events) so the client's and server's offline traces
  stitch into one cross-process timeline (see docs/OBSERVABILITY.md).
  Old servers ignore the keys; old clients simply never send them.

* ``fetch`` — request the aggregated snapshot for a fingerprint.
* ``stats`` — request server-wide counters.

Server → client:

* ``ack`` — publish accepted: ``{"runs", "edges", "total_weight"}``.
* ``snapshot`` — fetch reply: ``{"found": bool, "snapshot": {...}|null}``
  where the snapshot is a version-2 profile dict (see
  :mod:`repro.profiling.serialize`) plus a ``"fleet"`` metadata key.
* ``stats`` — server counters.
* ``error`` — the request was malformed: ``{"reason": "..."}``.

Both asyncio-stream and blocking-socket helpers are provided; the VM
side publishes from a plain thread (it must never touch the VM's loop),
while the server is a single asyncio process.
"""

from __future__ import annotations

import json
import socket
import struct

PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  A delta for even a large DCG is
#: a few hundred KB; anything bigger is garbage or abuse.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A frame or message violated the wire protocol."""


# -- message constructors ---------------------------------------------------------


def publish_message(
    fingerprint: str,
    edges: list,
    run_id: str,
    seq: int = 0,
    epoch: int = 0,
    receivers: list | None = None,
    paths: list | None = None,
    trace_id: str | None = None,
    span_id: str | None = None,
) -> dict:
    message = {
        "v": PROTOCOL_VERSION,
        "type": "publish",
        "fingerprint": fingerprint,
        "run_id": run_id,
        "seq": seq,
        "epoch": epoch,
        "edges": edges,
    }
    if receivers:
        message["receivers"] = receivers
    if paths:
        message["paths"] = paths
    if span_id is not None:
        message["trace_id"] = trace_id
        message["span_id"] = span_id
    return message


def fetch_message(fingerprint: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "fetch", "fingerprint": fingerprint}


def stats_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "stats"}


def ack_message(runs: int, edges: int, total_weight: float) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "ack",
        "runs": runs,
        "edges": edges,
        "total_weight": total_weight,
    }


def snapshot_message(snapshot: dict | None) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "snapshot",
        "found": snapshot is not None,
        "snapshot": snapshot,
    }


def error_message(reason: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "error", "reason": reason}


# -- framing ----------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """Frame ``message`` (which must already carry ``v``/``type``)."""
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(payload)} bytes)")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse and validate one frame's payload."""
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    if message.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {message.get('v')!r} "
            f"(expected {PROTOCOL_VERSION})"
        )
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no type")
    return message


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame too large ({length} bytes)")


# -- asyncio streams (server side) ------------------------------------------------


async def read_message(reader) -> dict | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` for truncation mid-frame, oversized frames,
    or undecodable payloads.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return decode_payload(payload)


async def write_message(writer, message: dict) -> None:
    writer.write(encode_message(message))
    await writer.drain()


# -- blocking sockets (client side) -----------------------------------------------


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket) -> dict:
    """Read one frame from a blocking socket (honors its timeout)."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
