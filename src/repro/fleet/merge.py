"""Order-independent weighted-decay merging of DCG deltas.

The fleet server receives deltas from many concurrent VM runs with no
ordering guarantees, yet the aggregate must be a pure function of *what*
was published, not *when* it arrived — otherwise two servers fed the
same fleet would disagree, and tests (or shards) could never compare
aggregates.

The trick is to make decay a function of the delta's **epoch** (an age
stamp the client chooses — e.g. a build number or day counter), not of
arrival order.  An aggregate at epoch ``E`` holds, for every edge, the
sum over all merged deltas of ``weight · decay^(E − epoch(delta))``
where ``E`` is the maximum epoch seen.  Summation is commutative and
the scale factor depends only on the delta's own stamp and the final
maximum, so any arrival order yields the same aggregate.  (With the
default ``decay=1.0`` this degenerates to plain summation.)  Decay
factors that are negative powers of two — 0.5, 0.25 — are exact in
binary floating point, which the determinism tests exploit.

Edges are keyed symbolically (``caller name, pc, callee name``) exactly
like serialized profiles, so an aggregate outlives any single build of
the program; :meth:`AggregateProfile.to_dict` emits a version-2 profile
dict (resolvable by :func:`repro.profiling.serialize.dcg_from_dict`)
with a ``"fleet"`` metadata key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.profiling.serialize import FORMAT_VERSION

#: Symbolic edge key: (caller qualified name, callsite pc, callee qualified name).
NamedEdge = tuple[str, int, str]

#: Symbolic receiver key: (caller qualified name, callsite pc, receiver class name).
NamedReceiver = tuple[str, int, str]

#: Symbolic Ball-Larus path key: (function qualified name, path id).
NamedPath = tuple[str, int]


class MergeError(Exception):
    """A delta or snapshot could not be merged (malformed edges)."""


@dataclass(frozen=True)
class MergePolicy:
    """How deltas fold into an aggregate.

    ``decay`` is applied per *epoch* of age difference (1.0 disables
    aging).  ``max_edges`` bounds a persisted snapshot: the lightest
    edges are pruned deterministically at serialization time only, so
    pruning never makes in-memory merging order-dependent.
    """

    decay: float = 1.0
    max_edges: int | None = None

    def __post_init__(self):
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.max_edges is not None and self.max_edges < 1:
            raise ValueError("max_edges must be >= 1")


def coalesce_validated(deltas) -> list[tuple[int, dict, dict, dict]]:
    """Sum validated deltas into per-epoch lumps ready for merging.

    ``deltas`` is an iterable of ``(epoch, edge_pairs, receiver_pairs,
    path_pairs)`` where each pair list is already validated ``(key,
    weight)`` tuples (the shape the staging buffer holds).  Returns
    ``[(epoch, edge_sums, receiver_sums, path_sums), ...]`` in
    ascending epoch order — deterministic, and equivalent to any other
    order by merge commutativity.
    """
    by_epoch: dict[int, tuple[dict, dict, dict]] = {}
    for epoch, edges, receivers, paths in deltas:
        group = by_epoch.get(epoch)
        if group is None:
            group = by_epoch[epoch] = ({}, {}, {})
        edge_sums, receiver_sums, path_sums = group
        for key, weight in edges:
            edge_sums[key] = edge_sums.get(key, 0.0) + weight
        for key, count in receivers:
            receiver_sums[key] = receiver_sums.get(key, 0.0) + count
        for key, count in paths:
            path_sums[key] = path_sums.get(key, 0.0) + count
    return [
        (epoch, *by_epoch[epoch]) for epoch in sorted(by_epoch)
    ]


class AggregateProfile:
    """The fleet-wide profile for one program fingerprint."""

    def __init__(self, fingerprint: str, policy: MergePolicy | None = None):
        self.fingerprint = fingerprint
        self.policy = policy if policy is not None else MergePolicy()
        self.epoch = 0
        self.publishes = 0
        self._edges: dict[NamedEdge, float] = {}
        self._receivers: dict[NamedReceiver, float] = {}
        self._paths: dict[NamedPath, float] = {}
        self._run_ids: set[str] = set()
        #: Runs folded into snapshots this aggregate was loaded from
        #: (their ids are not retained; see :meth:`from_dict`).
        self._base_runs = 0

    # -- merging ------------------------------------------------------------------

    def merge_delta(
        self,
        edges: list,
        epoch: int = 0,
        run_id: str | None = None,
        receivers: list | None = None,
        paths: list | None = None,
    ) -> None:
        """Fold one published delta into the aggregate.

        ``edges`` is a list of ``[caller, pc, callee, weight]`` entries
        (the wire shape); ``receivers``, when present, is a list of
        ``[caller, pc, class_name, count]`` inline-cache receiver rows
        folded the same way (same decay, same commutativity), and
        ``paths`` a list of ``[function, path_id, count]`` Ball-Larus
        rows likewise.  Raises :class:`MergeError` on malformed entries
        without mutating the aggregate.
        """
        validated = [
            (key, weight)
            for key, weight in (
                self._validate_row(entry, "edge") for entry in edges
            )
            if weight
        ]
        validated_receivers = []
        if receivers is not None:
            validated_receivers = [
                (key, count)
                for key, count in (
                    self._validate_row(entry, "receiver row")
                    for entry in receivers
                )
                if count
            ]
        validated_paths = []
        if paths is not None:
            validated_paths = [
                (key, count)
                for key, count in (
                    self._validate_path_row(entry, "path row")
                    for entry in paths
                )
                if count
            ]

        scale = self._rebase(int(epoch))
        for key, weight in validated:
            self._edges[key] = self._edges.get(key, 0.0) + weight * scale
        for key, count in validated_receivers:
            self._receivers[key] = self._receivers.get(key, 0.0) + count * scale
        for key, count in validated_paths:
            self._paths[key] = self._paths.get(key, 0.0) + count * scale
        self.publishes += 1
        if run_id is not None:
            self._run_ids.add(str(run_id))

    def merge_coalesced(
        self, groups, run_ids=(), publishes: int = 0
    ) -> None:
        """Fold pre-coalesced per-epoch lumps into the aggregate.

        ``groups`` is what :func:`coalesce_validated` returns: for each
        epoch, row weights already summed per key.  Because the scale
        factor a delta receives depends only on its own epoch stamp and
        the final maximum epoch — never on arrival order — summing
        same-epoch weights before scaling distributes over the merge,
        so a coalesced lump yields the same aggregate as merging its
        deltas one at a time (``tests/fleet/test_coalesce.py`` holds
        this bit-exactly for integral weights under power-of-two
        decay).  ``publishes`` and ``run_ids`` carry the per-delta
        accounting the lump absorbed.
        """
        for epoch, edges, receivers, paths in groups:
            scale = self._rebase(int(epoch))
            for key, weight in edges.items():
                self._edges[key] = self._edges.get(key, 0.0) + weight * scale
            for key, count in receivers.items():
                self._receivers[key] = self._receivers.get(key, 0.0) + count * scale
            for key, count in paths.items():
                self._paths[key] = self._paths.get(key, 0.0) + count * scale
        self.publishes += publishes
        for run_id in run_ids:
            self._run_ids.add(str(run_id))

    def clone_for_snapshot(self) -> "AggregateProfile":
        """A detached copy safe to serialize off the event loop.

        Shallow dict copies (keys are tuples, values are floats) taken
        while the loop owns the aggregate; the clone never changes, so
        a writer thread can sort and serialize it while merging
        continues on the original.
        """
        clone = AggregateProfile(self.fingerprint, self.policy)
        clone.epoch = self.epoch
        clone.publishes = self.publishes
        clone._edges = dict(self._edges)
        clone._receivers = dict(self._receivers)
        clone._paths = dict(self._paths)
        clone._run_ids = set(self._run_ids)
        clone._base_runs = self._base_runs
        return clone

    @staticmethod
    def _validate_row(entry, what: str) -> tuple[tuple, float]:
        """Validate one ``[name, pc, name, weight]`` wire row."""
        try:
            first, pc, second, weight = entry
            key = (str(first), int(pc), str(second))
            weight = float(weight)
        except (TypeError, ValueError) as error:
            raise MergeError(f"malformed {what} {entry!r}") from error
        if not math.isfinite(weight) or weight < 0:
            raise MergeError(f"bad weight in {what} {entry!r}")
        return key, weight

    @staticmethod
    def _validate_path_row(entry, what: str) -> tuple[NamedPath, float]:
        """Validate one ``[function, path_id, count]`` wire row."""
        try:
            name, pid, count = entry
            key = (str(name), int(pid))
            count = float(count)
        except (TypeError, ValueError) as error:
            raise MergeError(f"malformed {what} {entry!r}") from error
        if key[1] < 0:
            raise MergeError(f"negative path id in {what} {entry!r}")
        if not math.isfinite(count) or count < 0:
            raise MergeError(f"bad count in {what} {entry!r}")
        return key, count

    def _rebase(self, epoch: int) -> float:
        """Advance the aggregate to ``max(self.epoch, epoch)`` and return
        the scale factor for a delta stamped ``epoch``."""
        decay = self.policy.decay
        if decay == 1.0:
            self.epoch = max(self.epoch, epoch)
            return 1.0
        if epoch > self.epoch:
            aging = decay ** (epoch - self.epoch)
            for key in self._edges:
                self._edges[key] *= aging
            for key in self._receivers:
                self._receivers[key] *= aging
            for key in self._paths:
                self._paths[key] *= aging
            self.epoch = epoch
            return 1.0
        return decay ** (self.epoch - epoch)

    # -- queries ------------------------------------------------------------------

    @property
    def runs(self) -> int:
        """Distinct runs merged (including those baked into a loaded snapshot)."""
        return self._base_runs + len(self._run_ids)

    @property
    def total_weight(self) -> float:
        return sum(self._edges.values())

    def __len__(self) -> int:
        return len(self._edges)

    def edges(self) -> dict[NamedEdge, float]:
        """The raw symbolic edge→weight mapping (do not mutate)."""
        return self._edges

    def receivers(self) -> dict[NamedReceiver, float]:
        """The raw symbolic receiver→count mapping (do not mutate)."""
        return self._receivers

    def paths(self) -> dict[NamedPath, float]:
        """The raw symbolic (function, path id)→count mapping (do not mutate)."""
        return self._paths

    def receiver_distribution(self, caller: str, pc: int) -> dict[str, float]:
        """{class name: aggregated count} at one symbolic call site."""
        return {
            rclass: count
            for (c, p, rclass), count in self._receivers.items()
            if c == caller and p == pc
        }

    # -- snapshots ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A version-2 profile dict plus fleet metadata.

        Deterministic: edges sort by key; pruning (``max_edges``) keeps
        the heaviest edges with key order breaking ties.
        """
        items = list(self._edges.items())
        limit = self.policy.max_edges
        if limit is not None and len(items) > limit:
            items.sort(key=lambda item: (-item[1], item[0]))
            items = items[:limit]
        items.sort(key=lambda item: item[0])
        snapshot = {
            "version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "edges": [
                {"caller": caller, "pc": pc, "callee": callee, "weight": weight}
                for (caller, pc, callee), weight in items
            ],
            "fleet": {
                "runs": self.runs,
                "publishes": self.publishes,
                "epoch": self.epoch,
                "total_weight": self.total_weight,
            },
        }
        if self._receivers:
            snapshot["receivers"] = [
                [caller, pc, rclass, count]
                for (caller, pc, rclass), count in sorted(
                    self._receivers.items()
                )
            ]
        if self._paths:
            snapshot["paths"] = [
                [name, pid, count]
                for (name, pid), count in sorted(self._paths.items())
            ]
        return snapshot

    @classmethod
    def from_dict(cls, data: dict, policy: MergePolicy | None = None) -> "AggregateProfile":
        """Rebuild an aggregate from a persisted snapshot."""
        if not isinstance(data, dict) or not isinstance(data.get("edges"), list):
            raise MergeError("snapshot is not a profile dict")
        fingerprint = data.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise MergeError("snapshot has no fingerprint")
        aggregate = cls(fingerprint, policy)
        fleet = data.get("fleet", {})
        if not isinstance(fleet, dict):
            raise MergeError("malformed fleet metadata")
        aggregate.epoch = int(fleet.get("epoch", 0))
        aggregate.publishes = int(fleet.get("publishes", 0))
        aggregate._base_runs = int(fleet.get("runs", 0))
        for entry in data["edges"]:
            try:
                key = (str(entry["caller"]), int(entry["pc"]), str(entry["callee"]))
                weight = float(entry["weight"])
            except (KeyError, TypeError, ValueError) as error:
                raise MergeError(f"malformed snapshot edge {entry!r}") from error
            if not math.isfinite(weight) or weight < 0:
                raise MergeError(f"bad weight in snapshot edge {entry!r}")
            aggregate._edges[key] = aggregate._edges.get(key, 0.0) + weight
        receivers = data.get("receivers", [])
        if not isinstance(receivers, list):
            raise MergeError("malformed snapshot receivers")
        for entry in receivers:
            key, count = cls._validate_row(entry, "snapshot receiver row")
            aggregate._receivers[key] = (
                aggregate._receivers.get(key, 0.0) + count
            )
        paths = data.get("paths", [])
        if not isinstance(paths, list):
            raise MergeError("malformed snapshot paths")
        for entry in paths:
            key, count = cls._validate_path_row(entry, "snapshot path row")
            aggregate._paths[key] = aggregate._paths.get(key, 0.0) + count
        return aggregate
