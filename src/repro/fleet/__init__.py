"""Fleet profiling: aggregate DCG profiles across VM runs.

The paper makes high-accuracy DCG collection cheap enough to run
*everywhere*; this package closes the production-PGO loop that cheapness
enables.  Many concurrent VM runs publish DCG deltas (non-blocking, via
:class:`~repro.fleet.client.FleetPublisher`) to one aggregation service
(:class:`~repro.fleet.service.FleetService`, ``repro-mini serve``) that
merges them per program fingerprint with order-independent weighted
decay and persists crash-safe snapshots.  A later run warm-starts its
adaptive optimizer from the aggregate (``repro-mini run --publish ADDR
--warm-start``), so short-running programs — the paper's motivating
failure mode for sampled profiles — reach full optimization without
waiting to re-learn what the fleet already knows.

See docs/FLEET.md for the protocol, repository layout, warm-start
semantics, and failure modes.
"""

from repro.fleet.client import FleetPublisher, fetch_snapshot, parse_address
from repro.fleet.merge import AggregateProfile, MergeError, MergePolicy
from repro.fleet.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    decode_payload,
)
from repro.fleet.repository import ProfileRepository, RepositoryError
from repro.fleet.service import FleetService, run_service

__all__ = [
    "AggregateProfile",
    "FleetPublisher",
    "FleetService",
    "MAX_MESSAGE_BYTES",
    "MergeError",
    "MergePolicy",
    "PROTOCOL_VERSION",
    "ProfileRepository",
    "ProtocolError",
    "RepositoryError",
    "decode_payload",
    "encode_message",
    "fetch_snapshot",
    "parse_address",
    "run_service",
]
