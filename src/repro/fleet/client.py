"""VM-side fleet client: a non-perturbing background publisher.

The publisher's contract is strict: **a dead, slow, or flaky server
must never change a run's result or its virtual time.**  Everything the
VM's thread does is cheap, bounded dictionary work — every ``K`` ticks
it diffs the profiler's DCG against what was last handed off and pushes
the delta onto a bounded in-memory queue (dropping, and counting the
drop, if the queue is full).  All socket work — connect, retry with
exponential backoff, framing, acks — happens on a daemon worker thread.
No exception from the worker can reach the VM, and nothing the worker
does charges virtual time, so a published run is bit-identical to an
unpublished one.

After ``max_failures`` consecutive connection failures the publisher
declares the server dead and drops batches without further connection
attempts, bounding wasted wall time for fire-and-forget runs against a
down aggregator.  Dead is not forever: every ``revive_every`` dropped
batches the worker spends one bounded connection probe, so a restarted
shard regains its publishers within a few batches instead of losing
them for the life of the run.

Backpressure is distinct from failure: a ``busy`` reply means the
server is healthy but loaded, so the worker honors its ``retry_after``
with a bounded sleep and resends — busy replies never count toward
dead-server detection and never tear down the connection.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time

from repro.fleet.protocol import (
    ProtocolError,
    fetch_message,
    publish_message,
    recv_message,
    send_message,
)

_CLOSE = object()  # queue sentinel


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (the ``--publish`` argument)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {text!r}")
    return host, int(port)


def fetch_snapshot(
    address: tuple[str, int], fingerprint: str, timeout: float = 2.0
) -> dict | None:
    """Synchronously fetch the aggregated snapshot for ``fingerprint``.

    Returns ``None`` when the server is unreachable, times out, replies
    with an error, or has no snapshot — warm-start is best-effort by
    design, so all failures collapse to "no warm profile".
    """
    try:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_message(sock, fetch_message(fingerprint))
            reply = recv_message(sock)
    except (OSError, ProtocolError, ValueError):
        return None
    if reply.get("type") != "snapshot" or not reply.get("found"):
        return None
    snapshot = reply.get("snapshot")
    return snapshot if isinstance(snapshot, dict) else None


class FleetPublisher:
    """Publishes DCG deltas from one VM run to a fleet service."""

    def __init__(
        self,
        address: tuple[str, int],
        program,
        every_ticks: int = 50,
        epoch: int = 0,
        run_id: str | None = None,
        queue_size: int = 64,
        connect_timeout: float = 0.5,
        io_timeout: float = 2.0,
        max_failures: int = 3,
        backoff_base: float = 0.05,
        telemetry=None,
        revive_every: int = 8,
        max_busy_retries: int = 8,
        busy_wait_cap: float = 1.0,
    ):
        if every_ticks < 1:
            raise ValueError("every_ticks must be >= 1")
        if revive_every < 1:
            raise ValueError("revive_every must be >= 1")
        self.address = address
        self.every_ticks = every_ticks
        self.epoch = epoch
        self.run_id = run_id if run_id is not None else os.urandom(8).hex()
        self.telemetry = telemetry
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.max_failures = max_failures
        self.backoff_base = backoff_base
        self.revive_every = revive_every
        self.max_busy_retries = max_busy_retries
        self.busy_wait_cap = busy_wait_cap

        self._names = [f.qualified_name for f in program.functions]
        self._class_names = [c.name for c in program.classes]
        self._fingerprint = program.fingerprint()
        self._sent: dict[tuple[int, int, int], float] = {}
        self._sent_receivers: dict[tuple[int, int, int], int] = {}
        self._sent_paths: dict[tuple[int, int], float] = {}
        self._ticks = 0
        self._seq = 0
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._worker: threading.Thread | None = None

        # Outcome counters (worker-owned except dropped, VM-owned).
        self.batches_enqueued = 0
        self.batches_sent = 0
        self.batches_dropped = 0
        self.edges_sent = 0
        self.busy_backoffs = 0
        self.revivals = 0
        self.server_dead = False

    # -- VM side ------------------------------------------------------------------

    def install(self, vm) -> None:
        """Chain onto the VM's tick hook (after any adaptive system) and
        start the worker thread."""
        previous = vm.tick_hook

        if previous is None:
            vm.tick_hook = self.on_tick
        else:

            def chained(vm, _previous=previous, _publish=self.on_tick):
                _previous(vm)
                _publish(vm)

            vm.tick_hook = chained
        self._worker = threading.Thread(
            target=self._run_worker, name="fleet-publisher", daemon=True
        )
        self._worker.start()

    def on_tick(self, vm) -> None:
        self._ticks += 1
        if self._ticks % self.every_ticks == 0:
            self._publish_delta(vm)

    def flush(self, vm) -> None:
        """Enqueue whatever accumulated since the last batch (end of run)."""
        self._publish_delta(vm)

    def _publish_delta(self, vm) -> None:
        profiler = vm.profiler
        dcg = getattr(profiler, "dcg", None) if profiler is not None else None
        if dcg is None:
            return
        sent = self._sent
        delta = []
        grown_weights = {}
        names = self._names
        for edge, weight in dcg.edges().items():
            grown = weight - sent.get(edge, 0.0)
            if grown > 0:
                caller, pc, callee = edge
                delta.append([names[caller], pc, names[callee], grown])
                grown_weights[edge] = weight
        receivers, grown_counts = self._receiver_delta(vm)
        paths, grown_paths = self._paths_delta(vm)
        if not delta and not receivers and not paths:
            return
        seq = self._seq
        self._seq += 1
        try:
            self._queue.put_nowait(("delta", seq, delta, receivers, paths))
            self.batches_enqueued += 1
            # Only mark weights as handed off once the batch is queued,
            # so a dropped batch's growth rides along with the next one.
            sent.update(grown_weights)
            self._sent_receivers.update(grown_counts)
            self._sent_paths.update(grown_paths)
        except queue.Full:
            self.batches_dropped += 1
        if self.telemetry is not None:
            # Span ids are derived (run_id:seq), never random, so traced
            # event streams stay bit-identical across repeated runs.
            self.telemetry.on_fleet_publish(
                vm.time,
                seq,
                len(delta),
                sum(entry[3] for entry in delta),
                trace_id=self.run_id,
                span_id=f"{self.run_id}:{seq}",
            )

    def _receiver_delta(self, vm) -> tuple[list, dict]:
        """Growth of the inline caches' receiver cells since last handoff.

        Returns ``(wire rows, grown counts)``; rows are symbolic
        ``[caller name, pc, class name, grown]`` so the aggregate
        outlives any single build, exactly like DCG edges.  VMs running
        with inline caches off simply publish no receiver rows.
        """
        cells = getattr(getattr(vm, "code_cache", None), "receiver_cells", None)
        if not cells:
            return [], {}
        sent = self._sent_receivers
        names = self._names
        class_names = self._class_names
        rows = []
        grown_counts = {}
        for (caller, pc), classes in cells.items():
            for rclass, cell in classes.items():
                count = cell[0]
                key = (caller, pc, rclass)
                grown = count - sent.get(key, 0)
                if grown > 0:
                    rows.append([names[caller], pc, class_names[rclass], grown])
                    grown_counts[key] = count
        return rows, grown_counts

    def _paths_delta(self, vm) -> tuple[list, dict]:
        """Growth of the path tracker's profile since last handoff.

        Wire rows are symbolic ``[function name, path_id, grown]`` (see
        :mod:`repro.profiling.paths`); VMs running without a path
        tracker publish no path rows.
        """
        tracker = getattr(vm, "path_tracker", None)
        if tracker is None:
            return [], {}
        sent = self._sent_paths
        names = self._names
        rows = []
        grown_counts = {}
        for (function, pid), count in tracker.profile.counts.items():
            key = (function, pid)
            grown = count - sent.get(key, 0.0)
            if grown > 0:
                rows.append([names[function], pid, grown])
                grown_counts[key] = count
        return rows, grown_counts

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker, waiting up to ``timeout`` for the queue to
        drain.  Never raises; the worker is a daemon either way."""
        if self._worker is None:
            return
        try:
            self._queue.put_nowait(_CLOSE)
        except queue.Full:
            pass  # worker is far behind; daemon thread dies with the process
        self._worker.join(timeout)
        self._worker = None
        if self.telemetry is not None:
            # Metrics only, no event: outcome counters are wall-clock
            # facts about the worker thread, not virtual-time events.
            self.telemetry.on_fleet_outcome(
                self.batches_sent,
                self.batches_dropped,
                self.edges_sent,
                self.server_dead,
            )

    # -- worker side --------------------------------------------------------------

    def _run_worker(self) -> None:
        sock = None
        failures = 0
        dead_drops = 0
        try:
            while True:
                item = self._queue.get()
                if item is _CLOSE:
                    break
                _, seq, delta, receivers, paths = item
                if self.server_dead:
                    # Bounded revival: drop most batches cheaply, but
                    # every revive_every-th one spends a single probe
                    # so a restarted server regains this publisher.
                    dead_drops += 1
                    if dead_drops % self.revive_every != 0:
                        self.batches_dropped += 1
                        continue
                    sock = self._probe()
                    if sock is None:
                        self.batches_dropped += 1
                        continue
                    self.server_dead = False
                    self.revivals += 1
                    failures = 0
                    dead_drops = 0
                sock, status = self._send_with_retry(
                    sock, seq, delta, receivers, paths
                )
                if status == "ack":
                    failures = 0
                    self.batches_sent += 1
                    self.edges_sent += len(delta)
                elif status == "busy":
                    # The server answered: alive, just loaded.  The
                    # batch is lost (retries exhausted) but this is
                    # backpressure, not failure.
                    failures = 0
                    self.batches_dropped += 1
                else:
                    failures += 1
                    self.batches_dropped += 1
                    if failures >= self.max_failures:
                        self.server_dead = True
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def _send_with_retry(
        self, sock, seq: int, delta: list, receivers: list, paths: list
    ):
        """Try to deliver one batch; returns ``(socket, status)``.

        ``status`` is ``"ack"`` (delivered), ``"busy"`` (the server
        applied backpressure through ``max_busy_retries`` resends —
        alive but loaded), or ``"fail"`` (connection-level failure,
        counts toward dead-server detection).
        """
        message = publish_message(
            self._fingerprint,
            delta,
            run_id=self.run_id,
            seq=seq,
            epoch=self.epoch,
            receivers=receivers,
            paths=paths,
            trace_id=self.run_id,
            span_id=f"{self.run_id}:{seq}",
        )
        busy_retries = 0
        for attempt in range(2):  # current connection, then one reconnect
            if sock is None:
                sock = self._connect()
                if sock is None:
                    return None, "fail"
            try:
                send_message(sock, message)
                reply = recv_message(sock)
                while reply.get("type") == "busy":
                    if busy_retries >= self.max_busy_retries:
                        return sock, "busy"
                    busy_retries += 1
                    self.busy_backoffs += 1
                    time.sleep(self._retry_after(reply))
                    send_message(sock, message)
                    reply = recv_message(sock)
                if reply.get("type") == "ack":
                    return sock, "ack"
                return sock, "fail"
            except (OSError, ProtocolError):
                try:
                    sock.close()
                except OSError:
                    pass
                sock = None
        return None, "fail"

    def _retry_after(self, reply: dict) -> float:
        """The server's requested backoff, clamped to sane bounds."""
        try:
            retry_after = float(reply.get("retry_after", self.backoff_base))
        except (TypeError, ValueError):
            retry_after = self.backoff_base
        return min(max(retry_after, 0.001), self.busy_wait_cap)

    def _connect(self):
        delay = self.backoff_base
        for attempt in range(self.max_failures):
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.connect_timeout
                )
                sock.settimeout(self.io_timeout)
                return sock
            except OSError:
                if attempt + 1 < self.max_failures:
                    time.sleep(delay)
                    delay *= 2
        self.server_dead = True
        return None

    def _probe(self):
        """One revival attempt: a single connect, no backoff loop."""
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout
            )
            sock.settimeout(self.io_timeout)
            return sock
        except OSError:
            return None

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> str:
        state = "dead" if self.server_dead else "ok"
        return (
            f"fleet publisher: {self.batches_sent} batches "
            f"({self.edges_sent} edges) sent, {self.batches_dropped} dropped, "
            f"server {state}"
        )
