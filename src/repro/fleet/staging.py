"""Delta staging and per-client rate accounting for the fleet service.

The coalescing service's hot accept path does only three things with a
publish frame: validate its rows, append them to this staging buffer,
and ack.  A background drain task later takes whole fingerprints out of
the buffer, coalesces their deltas into per-epoch lumps
(:func:`repro.fleet.merge.coalesce_validated`) and merges each lump in
one pass — merge commutativity makes the coalesced result identical to
one-at-a-time merging, so early acks never change what the fleet
eventually sees.

Backpressure has two sources, both answered with a ``busy`` reply
carrying ``retry_after`` (never a dropped connection):

* the buffer's global high-water mark (``max_staged_rows``), which
  bounds worst-case memory and the latency of a drain pass;
* per-client :class:`TokenBucket` rate limits (``rate``/``burst``),
  keyed by ``run_id``, which stop one runaway publisher from starving
  the rest of the fleet.
"""

from __future__ import annotations

import time


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now

    def take(self, now: float | None = None) -> float:
        """Take one token; returns 0.0 on success, else seconds until
        the next token accrues (the ``retry_after`` to send)."""
        if now is None:
            now = time.monotonic()
        elapsed = now - self.updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets, lazily created and bounded in number.

    Keyed by ``run_id``; a publisher with no ``run_id`` shares the
    anonymous bucket.  The table is capped so a fleet of short-lived
    run ids cannot grow it without bound — when full, the stalest
    bucket (oldest ``updated``) is evicted.
    """

    MAX_CLIENTS = 4096

    def __init__(self, rate: float, burst: float | None = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(2.0 * rate, 8.0)
        self._buckets: dict[str, TokenBucket] = {}

    def check(self, run_id, now: float | None = None) -> float:
        """0.0 = admit; positive = busy, retry after that many seconds."""
        key = run_id if isinstance(run_id, str) else ""
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= self.MAX_CLIENTS:
                stalest = min(self._buckets, key=lambda k: self._buckets[k].updated)
                del self._buckets[stalest]
            bucket = self._buckets[key] = TokenBucket(self.rate, self.burst, now=now)
        return bucket.take(now)


class StagingBuffer:
    """Validated publish deltas awaiting their coalesced merge.

    Rows are stored pre-validated — ``(key, weight)`` tuples, the exact
    shape :func:`repro.fleet.merge.coalesce_validated` consumes — so a
    malformed delta is rejected synchronously on the accept path and
    the drain task can never fail validation halfway through a lump.
    """

    def __init__(self, max_staged_rows: int = 200_000):
        if max_staged_rows < 1:
            raise ValueError("max_staged_rows must be >= 1")
        self.max_staged_rows = max_staged_rows
        #: fingerprint -> [(epoch, edge_pairs, receiver_pairs, path_pairs)]
        self._deltas: dict[str, list] = {}
        #: fingerprint -> {run_id} staged since the last drain
        self._run_ids: dict[str, set] = {}
        self.staged_rows = 0
        self.staged_deltas = 0
        #: Lifetime counters (survive drains) for the coalesce ratio.
        self.total_staged = 0
        self.total_lumps = 0

    def __len__(self) -> int:
        return self.staged_deltas

    @property
    def full(self) -> bool:
        return self.staged_rows >= self.max_staged_rows

    def stage(self, fingerprint: str, epoch: int, edges, receivers, paths, run_id) -> int:
        """Append one validated delta; returns the new queue depth."""
        self._deltas.setdefault(fingerprint, []).append(
            (epoch, edges, receivers, paths)
        )
        if run_id is not None:
            self._run_ids.setdefault(fingerprint, set()).add(str(run_id))
        self.staged_rows += len(edges) + len(receivers) + len(paths)
        self.staged_deltas += 1
        self.total_staged += 1
        return self.staged_deltas

    def take_all(self) -> list[tuple[str, list, set, int]]:
        """Drain the buffer: ``[(fingerprint, deltas, run_ids, count)]``.

        One entry per staged fingerprint — each is one coalesced merge
        lump.  The buffer is empty afterwards.
        """
        taken = []
        for fingerprint, deltas in self._deltas.items():
            taken.append(
                (
                    fingerprint,
                    deltas,
                    self._run_ids.get(fingerprint, set()),
                    len(deltas),
                )
            )
            self.total_lumps += 1
        self._deltas = {}
        self._run_ids = {}
        self.staged_rows = 0
        self.staged_deltas = 0
        return taken

    def take_one(self, fingerprint: str) -> tuple[list, set, int] | None:
        """Drain one fingerprint (the fetch-after-publish barrier)."""
        deltas = self._deltas.pop(fingerprint, None)
        if not deltas:
            return None
        run_ids = self._run_ids.pop(fingerprint, set())
        for epoch, edges, receivers, paths in deltas:
            self.staged_rows -= len(edges) + len(receivers) + len(paths)
        self.staged_deltas -= len(deltas)
        self.total_lumps += 1
        return deltas, run_ids, len(deltas)

    def coalesce_ratio(self) -> float:
        """Mean deltas absorbed per coalesced merge lump (>= 1.0)."""
        if not self.total_lumps:
            return 0.0
        return round(self.total_staged / self.total_lumps, 3)
