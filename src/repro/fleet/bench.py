"""The fleet load harness (``repro-mini fleet-bench``).

Replays thousands of synthetic publishers against a live fleet service
and measures what the scaling tentpole promises: publish throughput,
p50/p95/p99 publish latency, and — because the whole design rests on
merge commutativity — **zero edge loss** (the sum of merged weights
across all shards must equal the sum of published delta weights,
exactly; the harness publishes integral weights so the comparison has
no float slack).

Two service topologies run back to back, each in its own process with
its own fresh repository root:

* ``single`` — today's default ``serve``: one asyncio process, eager
  inline merge, synchronous snapshot write per publish
  (``persist_every=1``).  This is the baseline the ISSUE names.
* ``sharded`` — ``serve --workers N``: the routing frontend over N
  coalescing worker processes with staged acks and off-loop persists.

The summary's headline figure is ``scaling_ratio`` (sharded throughput
over single throughput) and ``p99_ratio`` (single p99 over sharded
p99).  Both are *ratios measured on the same host in the same run*, so
— like ``BENCH_vm.json`` — the committed ``BENCH_fleet.json`` baseline
gates CI runners and laptops alike; absolute rates are recorded for
the trajectory but never compared across machines.

Throughput is end-to-end honest: the clock for a mode stops only after
a ``flush`` barrier confirms every staged delta is merged and every
dirty aggregate persisted, so coalescing cannot win by deferring work
past the finish line.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import socket
import sys
import threading
import time

from repro.fleet.protocol import (
    ProtocolError,
    encode_message,
    fetch_message,
    flush_message,
    publish_message,
    recv_message,
    send_message,
)

#: Hard floors on the sharded/single throughput ratio, by worker count.
#: The 4-worker floor is the tentpole acceptance criterion.
SCALING_FLOORS = {2: 1.5, 4: 3.0}

#: Hard floor on single-p99 / sharded-p99: staged acks must not be
#: slower than eager merge-and-persist acks at the tail.
P99_RATIO_FLOOR = 1.0

SERVER_START_TIMEOUT = 60.0
SERVER_STOP_TIMEOUT = 30.0


# -- synthetic fleet ------------------------------------------------------------------


def _fingerprint(index: int) -> str:
    return hashlib.sha256(f"fleet-bench-program-{index}".encode()).hexdigest()


def build_workload(
    publishers: int, batches: int, edges: int, programs: int, seed: int = 1
) -> tuple[list[list[bytes]], dict[str, int], list[str]]:
    """Pre-encode every publisher's frames before the timed phase.

    Returns ``(frames per publisher, expected weight per fingerprint,
    fingerprints)``.  Weights are small deterministic integers (a
    seeded affine walk, no RNG state to carry) so the zero-loss check
    is exact; edge keys cycle through a bounded pool per program so
    aggregates stay realistically sized instead of growing one key per
    published row.
    """
    fingerprints = [_fingerprint(i) for i in range(programs)]
    expected: dict[str, int] = {fp: 0 for fp in fingerprints}
    per_publisher: list[list[bytes]] = []
    state = seed & 0x7FFFFFFF
    for p in range(publishers):
        fingerprint = fingerprints[p % programs]
        run_id = f"bench-{p}"
        frames = []
        for b in range(batches):
            rows = []
            for e in range(edges):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                weight = 1 + state % 9
                key = (p * batches + b + e) % 211
                rows.append([f"M{key}.run", key % 17, f"M{(key * 7) % 211}.callee", weight])
                expected[fingerprint] += weight
            frames.append(
                encode_message(
                    publish_message(
                        fingerprint, rows, run_id=run_id, seq=b, epoch=0
                    )
                )
            )
        per_publisher.append(frames)
    return per_publisher, expected, fingerprints


# -- server processes -----------------------------------------------------------------


def _server_main(conn, root: str, workers: int, coalesce: bool, persist_every: int):
    """Entry point of the benched service process (spawn-safe)."""
    asyncio.run(_server_async(conn, root, workers, coalesce, persist_every))


async def _server_async(conn, root, workers, coalesce, persist_every) -> None:
    def ready(address):
        conn.send(address)

    if workers > 1:
        from repro.fleet.shard import run_sharded_service

        serve = run_sharded_service(
            root, workers, persist_every=persist_every, ready=ready
        )
    else:
        from repro.fleet.service import run_service

        serve = run_service(
            root, persist_every=persist_every, coalesce=coalesce, ready=ready
        )
    task = asyncio.ensure_future(serve)
    # Block a worker thread on the pipe; the parent's "stop" unblocks it.
    await asyncio.to_thread(conn.recv)
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        pass
    conn.send("stopped")


class _ServerProcess:
    """A benched fleet service in its own process, stopped in-band."""

    def __init__(self, root: str, workers: int, coalesce: bool, persist_every: int):
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe()
        # NOT daemonic: the sharded frontend spawns its own worker
        # children, which daemonic processes are forbidden to do.
        # stop() joins with a terminate() backstop instead.
        self.process = ctx.Process(
            target=_server_main,
            args=(child_conn, root, workers, coalesce, persist_every),
            name="fleet-bench-server",
        )
        self.process.start()
        child_conn.close()
        if not self._conn.poll(SERVER_START_TIMEOUT):
            self.process.terminate()
            raise RuntimeError("bench service did not start")
        self.address = self._conn.recv()

    def stop(self) -> None:
        try:
            self._conn.send("stop")
            if self._conn.poll(SERVER_STOP_TIMEOUT):
                self._conn.recv()
        except (OSError, EOFError):
            pass
        self.process.join(SERVER_STOP_TIMEOUT)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(SERVER_STOP_TIMEOUT)
        self._conn.close()


# -- load generation ------------------------------------------------------------------


class _LoadJob(threading.Thread):
    """One connection replaying a slice of the publishers, in order.

    Sends are synchronous (send, await reply, record the round trip);
    concurrency comes from running ``jobs`` of these threads at once.
    ``busy`` replies are honored with the server's ``retry_after`` and
    the frame is resent — a busy publish only counts once acked.
    """

    def __init__(self, address, publishers: list[list[bytes]]):
        super().__init__(daemon=True)
        self.address = address
        self.publishers = publishers
        self.latencies: list[float] = []
        self.busy_retries = 0
        self.failures = 0

    def run(self) -> None:
        try:
            sock = socket.create_connection(self.address, timeout=30.0)
            sock.settimeout(30.0)
        except OSError:
            self.failures = sum(len(frames) for frames in self.publishers)
            return
        try:
            for frames in self.publishers:
                for frame in frames:
                    self._publish(sock, frame)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _publish(self, sock, frame: bytes) -> None:
        while True:
            started = time.perf_counter()
            try:
                sock.sendall(frame)
                reply = recv_message(sock)
            except (OSError, ProtocolError):
                self.failures += 1
                return
            if reply.get("type") == "busy":
                self.busy_retries += 1
                try:
                    retry_after = float(reply.get("retry_after", 0.01))
                except (TypeError, ValueError):
                    retry_after = 0.01
                time.sleep(min(max(retry_after, 0.001), 0.5))
                continue
            if reply.get("type") == "ack":
                self.latencies.append(time.perf_counter() - started)
            else:
                self.failures += 1
            return


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_mode(
    address,
    per_publisher: list[list[bytes]],
    expected: dict[str, int],
    fingerprints: list[str],
    jobs: int,
) -> dict:
    """Replay the workload against one live service and measure it."""
    shares: list[list[list[bytes]]] = [[] for _ in range(jobs)]
    for index, frames in enumerate(per_publisher):
        shares[index % jobs].append(frames)
    workers = [_LoadJob(address, share) for share in shares if share]

    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    publish_seconds = time.perf_counter() - started

    # The end-to-end barrier: everything staged must merge and persist
    # before the clock stops.
    with socket.create_connection(address, timeout=60.0) as sock:
        sock.settimeout(60.0)
        send_message(sock, flush_message())
        stats = recv_message(sock)
        e2e_seconds = time.perf_counter() - started
        merged_weight = 0
        for fingerprint in fingerprints:
            send_message(sock, fetch_message(fingerprint))
            reply = recv_message(sock)
            snapshot = reply.get("snapshot")
            if isinstance(snapshot, dict):
                merged_weight += round(
                    sum(edge["weight"] for edge in snapshot.get("edges", ()))
                )

    latencies = sorted(
        latency for worker in workers for latency in worker.latencies
    )
    publishes = len(latencies)
    published_weight = sum(expected.values())
    return {
        "publishes": publishes,
        "failures": sum(worker.failures for worker in workers),
        "busy_retries": sum(worker.busy_retries for worker in workers),
        "publish_seconds": round(publish_seconds, 4),
        "e2e_seconds": round(e2e_seconds, 4),
        "throughput": round(publishes / e2e_seconds, 1) if e2e_seconds else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "published_weight": published_weight,
        "merged_weight": merged_weight,
        "lost_edges": published_weight - merged_weight,
        "coalesce_ratio": stats.get("coalesce_ratio", 0.0),
        "merges": stats.get("merges", 0),
    }


# -- entry points ---------------------------------------------------------------------


def collect_summary(
    publishers: int = 1000,
    batches: int = 4,
    edges: int = 20,
    programs: int = 32,
    workers: int = 4,
    jobs: int = 8,
    quick: bool = False,
    root_dir: str | None = None,
) -> dict:
    """Run both topologies and return the ``BENCH_fleet.json`` summary."""
    import tempfile

    if quick:
        publishers = min(publishers, 200)
        batches = min(batches, 3)
        edges = min(edges, 10)
        programs = min(programs, 8)
        workers = min(workers, 2)
        jobs = min(jobs, 4)
    per_publisher, expected, fingerprints = build_workload(
        publishers, batches, edges, programs
    )
    modes = {}
    with tempfile.TemporaryDirectory(dir=root_dir) as tmp:
        for name, mode_workers, coalesce in (
            ("single", 1, False),
            ("sharded", workers, True),
        ):
            root = f"{tmp}/{name}"
            server = _ServerProcess(
                root, mode_workers, coalesce, persist_every=1
            )
            try:
                result = _run_mode(
                    server.address, per_publisher, expected, fingerprints, jobs
                )
            finally:
                server.stop()
            result["workers"] = mode_workers
            modes[name] = result
            print(
                f"-- {name} (workers={mode_workers}): "
                f"{result['throughput']:,.0f} publishes/sec, "
                f"p99 {result['p99_ms']}ms, lost {result['lost_edges']}",
                file=sys.stderr,
            )
    single, sharded = modes["single"], modes["sharded"]
    return {
        "version": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "publishers": publishers,
        "batches": batches,
        "edges": edges,
        "programs": programs,
        "jobs": jobs,
        "modes": modes,
        "scaling_ratio": round(
            sharded["throughput"] / single["throughput"], 3
        )
        if single["throughput"]
        else 0.0,
        "p99_ratio": round(single["p99_ms"] / sharded["p99_ms"], 3)
        if sharded["p99_ms"]
        else 0.0,
    }


def check_against_baseline(
    summary: dict, baseline: dict | None, max_regress: float
) -> list[str]:
    """Return failure messages (empty = pass).

    Always enforced, baseline or not:

    * zero publish failures and **zero lost edges** in both modes —
      every published weight is found in the merged aggregates;
    * the absolute :data:`SCALING_FLOORS` for the sharded worker count
      (4 workers must reach 3x the single-process baseline);
    * :data:`P99_RATIO_FLOOR` — sharded p99 publish latency no worse
      than single-process p99.

    With a baseline file, additionally gate ``scaling_ratio`` and
    ``p99_ratio`` within ``max_regress`` of the committed values —
    ratios, not absolute rates, so one file gates every host.  The
    baseline comparison only applies when the run used the same sharded
    worker count as the baseline (a ``--quick`` 2-worker smoke against
    a 4-worker baseline is gated by the hard floors alone — comparing
    their scaling ratios would be apples to oranges).
    """
    failures = []
    for name, mode in summary["modes"].items():
        if mode.get("failures"):
            failures.append(f"{name}: {mode['failures']} publishes failed")
        if mode.get("lost_edges"):
            failures.append(
                f"{name}: lost {mode['lost_edges']} of "
                f"{mode['published_weight']} published edge weight"
            )
    workers = summary["modes"]["sharded"]["workers"]
    floor = SCALING_FLOORS.get(workers)
    if floor is not None and summary["scaling_ratio"] < floor:
        failures.append(
            f"scaling ratio {summary['scaling_ratio']:.2f}x with "
            f"{workers} workers is below the hard floor {floor:.2f}x"
        )
    if summary["p99_ratio"] and summary["p99_ratio"] < P99_RATIO_FLOOR:
        failures.append(
            f"p99 ratio {summary['p99_ratio']:.2f}x is below "
            f"{P99_RATIO_FLOOR:.2f}x (sharded tail latency regressed past "
            f"the single-process baseline)"
        )
    baseline_workers = (
        baseline.get("modes", {}).get("sharded", {}).get("workers")
        if baseline is not None
        else None
    )
    if baseline is not None and baseline_workers == workers:
        base_scaling = baseline.get("scaling_ratio", 0.0)
        if base_scaling:
            scaled_floor = base_scaling * (1.0 - max_regress)
            if summary["scaling_ratio"] < scaled_floor:
                failures.append(
                    f"scaling ratio {summary['scaling_ratio']:.2f}x fell below "
                    f"{scaled_floor:.2f}x (baseline {base_scaling:.2f}x "
                    f"- {max_regress:.0%})"
                )
        base_p99 = baseline.get("p99_ratio", 0.0)
        if base_p99:
            p99_floor = base_p99 * (1.0 - max_regress)
            if summary["p99_ratio"] < p99_floor:
                failures.append(
                    f"p99 ratio {summary['p99_ratio']:.2f}x fell below "
                    f"{p99_floor:.2f}x (baseline {base_p99:.2f}x "
                    f"- {max_regress:.0%})"
                )
    return failures


def run_fleet_bench(args) -> int:
    """The ``repro-mini fleet-bench`` backend (argparse namespace in)."""
    summary = collect_summary(
        publishers=args.publishers,
        batches=args.batches,
        edges=args.edges,
        programs=args.programs,
        workers=args.workers,
        jobs=args.jobs,
        quick=args.quick,
    )
    text = json.dumps(summary, indent=2) + "\n"
    if args.write:
        with open(args.write, "w") as handle:
            handle.write(text)
        print(f"wrote {args.write}", file=sys.stderr)
    elif args.json:
        print(text, end="")
    else:
        single, sharded = summary["modes"]["single"], summary["modes"]["sharded"]
        print(
            f"fleet-bench: {summary['publishers']} publishers x "
            f"{summary['batches']} batches x {summary['edges']} edges\n"
            f"  single  (1 worker):  {single['throughput']:>10,.0f}/s  "
            f"p50 {single['p50_ms']}ms p95 {single['p95_ms']}ms "
            f"p99 {single['p99_ms']}ms\n"
            f"  sharded ({sharded['workers']} workers): "
            f"{sharded['throughput']:>10,.0f}/s  "
            f"p50 {sharded['p50_ms']}ms p95 {sharded['p95_ms']}ms "
            f"p99 {sharded['p99_ms']}ms\n"
            f"  scaling {summary['scaling_ratio']:.2f}x, "
            f"p99 ratio {summary['p99_ratio']:.2f}x, "
            f"lost edges {single['lost_edges']}+{sharded['lost_edges']}"
        )
    baseline = None
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
    failures = check_against_baseline(
        summary, baseline, getattr(args, "max_regress", 0.15)
    )
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if failures:
        return 1
    if args.check:
        print(
            f"OK scaling {summary['scaling_ratio']:.2f}x and p99 ratio "
            f"{summary['p99_ratio']:.2f}x within bounds, zero edge loss",
            file=sys.stderr,
        )
    return 0
