"""Sharded fleet service: a routing frontend over N worker processes.

``serve --workers N`` splits the aggregation work by program
fingerprint.  Each worker is a full coalescing
:class:`~repro.fleet.service.FleetService` in its own process (its own
event loop, its own GIL); the frontend is a thin asyncio acceptor that
routes every client frame to the worker owning its fingerprint
(:func:`~repro.fleet.protocol.shard_for`) and relays the reply.  The
routing rule is the whole correctness argument: the epoch merge is
order-independent, so *any* assignment that keeps one fingerprint on
one shard yields the same aggregates as a single process — sharding
changes throughput, never results.

The frontend's hot path never JSON-decodes a frame: it scans the raw
payload for the fingerprint
(:func:`~repro.fleet.protocol.extract_fingerprint`) and forwards the
bytes verbatim over a pipelined per-worker connection
(:class:`ShardLink` — one TCP connection per worker, replies matched to
requests FIFO because workers answer frames in order).  Fingerprint-less
messages (``stats``, ``flush``, ``status``) are the slow path: the
frontend decodes them, fans them out to every worker, and combines the
replies; the combined ``status`` document grows a ``"shards"`` list
with per-worker queue depth, coalesce ratio, and busy rejections —
the rows ``repro-mini top`` and ``report --json`` render.

All workers share one repository root.  That is safe for the same
reason routing is: a fingerprint's snapshot file is only ever written
by the one shard that owns it.

Workers are spawned (not forked — the parent runs an event loop) and
hand their ephemeral port back over a pipe; they honor the protocol's
``shutdown`` message (started with ``allow_shutdown=True``) so teardown
is an in-band request, with ``terminate`` as the backstop.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from collections import deque

from repro.fleet.merge import MergePolicy
from repro.fleet.protocol import (
    ProtocolError,
    decode_payload,
    encode_message,
    error_message,
    extract_fingerprint,
    flush_message,
    frame_payload,
    read_frame_payload,
    shard_for,
    shutdown_message,
    status_message,
)
from repro.fleet.repository import ProfileRepository
from repro.fleet.service import FleetService
from repro.telemetry.metrics import MetricsRegistry

#: How long to wait for a spawned worker to report its port.
WORKER_START_TIMEOUT = 30.0

#: How long to wait for a worker to honor an in-band shutdown.
WORKER_STOP_TIMEOUT = 10.0


def _worker_main(
    index: int,
    root: str,
    conn,
    decay: float,
    max_edges: int | None,
    persist_every: int,
    rate: float | None,
    burst: float | None,
) -> None:
    """Entry point of one shard worker process (spawn-safe, module level)."""
    asyncio.run(
        _worker_async(index, root, conn, decay, max_edges, persist_every, rate, burst)
    )


async def _worker_async(
    index, root, conn, decay, max_edges, persist_every, rate, burst
) -> None:
    repository = ProfileRepository(root, MergePolicy(decay=decay, max_edges=max_edges))
    service = FleetService(
        repository,
        persist_every=persist_every,
        coalesce=True,
        rate=rate,
        burst=burst,
        allow_shutdown=True,
        shard_id=index,
    )
    address = await service.start("127.0.0.1", 0)
    conn.send(address)
    conn.close()
    try:
        await service.shutdown_requested.wait()
    finally:
        await service.stop()


class ShardLink:
    """One pipelined connection from the frontend to one worker.

    Requests from many client connections multiplex onto the single
    link; because the worker's service answers its frames strictly in
    order, replies are matched to requests FIFO.  The write lock keeps
    the (future enqueue, frame write) pair atomic so the FIFO can never
    skew.
    """

    def __init__(self, index: int, address: tuple[str, int]):
        self.index = index
        self.address = address
        self._reader = None
        self._writer = None
        self._read_task: asyncio.Task | None = None
        self._pending: deque[asyncio.Future] = deque()
        self._write_lock = asyncio.Lock()
        self.requests = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(*self.address)
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        error: Exception | None = None
        try:
            while True:
                payload = await read_frame_payload(self._reader)
                if payload is None:
                    break
                if self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(payload)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    ConnectionError(f"shard {self.index} link lost: {error}")
                )

    async def request(self, payload: bytes) -> bytes:
        """Forward one raw frame payload; returns the raw reply payload."""
        future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            if self._writer is None:
                raise ConnectionError(f"shard {self.index} link closed")
            self._pending.append(future)
            self._writer.write(frame_payload(payload))
            await self._writer.drain()
        self.requests += 1
        return await future

    async def request_message(self, message: dict) -> dict:
        """Round-trip a decoded message (the fan-out slow path)."""
        payload = json.dumps(message, separators=(",", ":")).encode()
        return decode_payload(await self.request(payload))

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None


class FleetFrontend:
    """The public acceptor: routes frames to shards, combines fan-outs."""

    def __init__(
        self,
        links: list[ShardLink],
        processes=(),
        registry: MetricsRegistry | None = None,
        telemetry=None,
    ):
        self.links = links
        self.processes = list(processes)
        self.telemetry = telemetry
        self.registry = registry if registry is not None else MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None
        self.connections = 0
        self._m_connections = self.registry.counter(
            "fleet.frontend_connections", "client connections accepted"
        )
        self._m_routed = self.registry.counter(
            "fleet.routed_frames", "frames routed to shard workers"
        )
        self._m_fanouts = self.registry.counter(
            "fleet.fanout_requests", "fan-out requests combined across shards"
        )
        self._m_shard_errors = self.registry.counter(
            "fleet.shard_errors", "requests failed by a lost shard link"
        )
        self._m_shard_routed = [
            self.registry.counter(
                f"fleet.shard{link.index}.routed", "frames routed to this shard"
            )
            for link in links
        ]
        self._m_shard_depth = [
            self.registry.gauge(
                f"fleet.shard{link.index}.queue_depth",
                "publish deltas staged on this shard",
            )
            for link in links
        ]
        self._m_shard_busy = [
            self.registry.gauge(
                f"fleet.shard{link.index}.busy_rejections",
                "busy backpressure replies sent by this shard",
            )
            for link in links
        ]

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, flush every shard, shut the workers down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in self.links:
            try:
                await asyncio.wait_for(
                    link.request_message(flush_message()), WORKER_STOP_TIMEOUT
                )
                await asyncio.wait_for(
                    link.request_message(shutdown_message()), WORKER_STOP_TIMEOUT
                )
            except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
                pass
            await link.close()
        for process in self.processes:
            await asyncio.to_thread(process.join, WORKER_STOP_TIMEOUT)
            if process.is_alive():
                process.terminate()
                await asyncio.to_thread(process.join, WORKER_STOP_TIMEOUT)

    # -- routing ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        self._m_connections.inc()
        try:
            while True:
                try:
                    payload = await read_frame_payload(reader)
                except ProtocolError:
                    break
                if payload is None:
                    break
                try:
                    reply = await self._route(payload)
                except ProtocolError:
                    # Undecodable frame: mirror the single-process
                    # service and drop the connection.
                    break
                try:
                    writer.write(frame_payload(reply))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, payload: bytes) -> bytes:
        """One frame in, one reply payload out."""
        fingerprint = extract_fingerprint(payload)
        if fingerprint is not None:
            index = shard_for(fingerprint, len(self.links))
            self._m_routed.inc()
            self._m_shard_routed[index].inc()
            try:
                return await self.links[index].request(payload)
            except (ConnectionError, OSError):
                self._m_shard_errors.inc()
                return encode_message(
                    error_message(f"shard {index} unavailable")
                )[4:]
        # No fingerprint: a fan-out message, or a malformed frame the
        # decode below turns into the right error/disconnect.
        message = decode_payload(payload)  # ProtocolError → drop connection
        kind = message.get("type")
        if kind in ("stats", "flush"):
            self._m_fanouts.inc()
            replies = await self._fan_out(message)
            return self._encode_reply(self._combine_stats(replies))
        if kind == "status":
            self._m_fanouts.inc()
            return self._encode_reply(
                {"v": 1, "type": "status", "status": await self.status()}
            )
        if kind == "shutdown":
            return self._encode_reply(
                error_message("shutdown not permitted on this service")
            )
        # Anything else (including publish/fetch missing a fingerprint)
        # gets shard 0's verdict, same reply a single process gives.
        try:
            return await self.links[0].request(payload)
        except (ConnectionError, OSError):
            self._m_shard_errors.inc()
            return self._encode_reply(error_message("shard 0 unavailable"))

    @staticmethod
    def _encode_reply(message: dict) -> bytes:
        return encode_message(message)[4:]  # strip the frame header

    async def _fan_out(self, message: dict) -> list[dict]:
        """Send one message to every shard; lost shards yield errors."""
        results = await asyncio.gather(
            *(link.request_message(message) for link in self.links),
            return_exceptions=True,
        )
        replies = []
        for link, result in zip(self.links, results):
            if isinstance(result, BaseException):
                self._m_shard_errors.inc()
                replies.append(error_message(f"shard {link.index} unavailable"))
            else:
                replies.append(result)
        return replies

    def _combine_stats(self, replies: list[dict]) -> dict:
        combined = {
            "v": 1,
            "type": "stats",
            "programs": [],
            "merges": 0,
            "rejected": 0,
            "busy": 0,
            "staged": 0,
            "connections": self.connections,
            "quarantined": 0,
            "clients": 0,
            "client_drops": 0,
            "shards": len(self.links),
        }
        programs: set[str] = set()
        ratios = []
        for reply in replies:
            if reply.get("type") != "stats":
                continue
            programs.update(reply.get("programs", ()))
            for key in (
                "merges",
                "rejected",
                "busy",
                "staged",
                "quarantined",
                "clients",
                "client_drops",
            ):
                combined[key] += reply.get(key, 0)
            ratio = reply.get("coalesce_ratio", 0.0)
            if ratio:
                ratios.append(ratio)
        combined["programs"] = sorted(programs)
        combined["coalesce_ratio"] = (
            round(sum(ratios) / len(ratios), 3) if ratios else 0.0
        )
        return combined

    # -- observability ------------------------------------------------------------

    async def status(self) -> dict:
        """The combined ``/status`` document with per-shard rows."""
        replies = await self._fan_out(status_message())
        programs: dict[str, dict] = {}
        clients: dict[str, dict] = {}
        totals = {
            "merges": 0,
            "rejected": 0,
            "busy": 0,
            "connections": self.connections,
            "quarantined": 0,
            "client_drops": 0,
        }
        shards = []
        for link, reply in zip(self.links, replies):
            if reply.get("type") != "status" or not isinstance(
                reply.get("status"), dict
            ):
                shards.append({"shard": link.index, "alive": False})
                self._m_shard_depth[link.index].set(0)
                continue
            status = reply["status"]
            # Workers share one repository root, so each lists every
            # on-disk fingerprint (unloaded ones as ``loaded: False``
            # stubs).  Keep the owning shard's loaded entry when both
            # a stub and a live row exist for the same fingerprint.
            for fingerprint, entry in status.get("programs", {}).items():
                current = programs.get(fingerprint)
                if current is None or (
                    entry.get("loaded") and not current.get("loaded")
                ):
                    programs[fingerprint] = entry
            clients.update(status.get("clients", {}))
            shard_totals = status.get("totals", {})
            for key in ("merges", "rejected", "busy", "quarantined", "client_drops"):
                totals[key] += shard_totals.get(key, 0)
            staging = status.get("staging", {})
            row = {
                "shard": link.index,
                "alive": True,
                "queue_depth": staging.get("queue_depth", 0),
                "staged_rows": staging.get("staged_rows", 0),
                "coalesce_ratio": staging.get("coalesce_ratio", 0.0),
                "busy_rejections": staging.get("busy_rejections", 0),
                "persist_pending": staging.get("persist_pending", 0),
                "merges": shard_totals.get("merges", 0),
                # Only programs this shard actually owns in memory —
                # unloaded stubs are the other shards' work seen
                # through the shared repository.
                "programs": sum(
                    1
                    for entry in status.get("programs", {}).values()
                    if entry.get("loaded")
                ),
                "routed": self._m_shard_routed[link.index].value,
            }
            shards.append(row)
            self._m_shard_depth[link.index].set(row["queue_depth"])
            self._m_shard_busy[link.index].set(row["busy_rejections"])
        return {
            "service": "repro-fleet",
            "workers": len(self.links),
            "programs": programs,
            "clients": clients,
            "totals": totals,
            "shards": shards,
        }


async def start_sharded_fleet(
    root: str,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    decay: float = 1.0,
    max_edges: int | None = None,
    persist_every: int = 1,
    rate: float | None = None,
    burst: float | None = None,
    telemetry=None,
) -> FleetFrontend:
    """Spawn the workers, connect the links, bind the frontend."""
    if workers < 2:
        raise ValueError("a sharded fleet needs at least 2 workers")
    ctx = multiprocessing.get_context("spawn")
    processes = []
    links = []
    try:
        pipes = []
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    root,
                    child_conn,
                    decay,
                    max_edges,
                    persist_every,
                    rate,
                    burst,
                ),
                daemon=True,
                name=f"fleet-shard-{index}",
            )
            process.start()
            child_conn.close()
            processes.append(process)
            pipes.append(parent_conn)
        for index, parent_conn in enumerate(pipes):
            ready = await asyncio.to_thread(parent_conn.poll, WORKER_START_TIMEOUT)
            if not ready:
                raise RuntimeError(f"shard worker {index} did not start")
            address = parent_conn.recv()
            parent_conn.close()
            link = ShardLink(index, address)
            await link.connect()
            links.append(link)
    except BaseException:
        for link in links:
            await link.close()
        for process in processes:
            process.terminate()
        raise
    frontend = FleetFrontend(links, processes, telemetry=telemetry)
    await frontend.start(host, port)
    return frontend


async def run_sharded_service(
    root: str,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    decay: float = 1.0,
    max_edges: int | None = None,
    persist_every: int = 1,
    rate: float | None = None,
    burst: float | None = None,
    ready=None,
    http_port: int | None = None,
    http_ready=None,
    telemetry=None,
) -> None:
    """Run a sharded fleet until cancelled (``serve --workers N``)."""
    from repro.telemetry.httpapi import ObservabilityHTTP

    frontend = await start_sharded_fleet(
        root,
        workers,
        host=host,
        port=port,
        decay=decay,
        max_edges=max_edges,
        persist_every=persist_every,
        rate=rate,
        burst=burst,
        telemetry=telemetry,
    )
    if ready is not None:
        ready(frontend.address)
    http = None
    try:
        if http_port is not None:
            http = ObservabilityHTTP(
                registry=frontend.registry,
                status_fn=frontend.status,
                health_fn=lambda: {
                    "status": "ok",
                    "service": "repro-fleet",
                    "workers": workers,
                },
            )
            await http.start(host, http_port)
            if http_ready is not None:
                http_ready(http.address)
        await frontend.serve_forever()
    finally:
        if http is not None:
            await http.stop()
        if telemetry is not None:
            # Record the final per-shard rows (pre-flush) so an offline
            # ``report --json`` of the serve trace shows the topology.
            try:
                final_status = await frontend.status()
            except (ConnectionError, OSError, ProtocolError):
                final_status = None
            if final_status is not None:
                for row in final_status.get("shards", []):
                    telemetry.on_fleet_shard(row)
        await frontend.stop()
