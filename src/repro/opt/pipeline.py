"""The optimizing "JIT" tier: inline per a plan, then clean up.

``optimize_function`` is what the adaptive system invokes when it
promotes a method: it applies an inline plan (from one of the policies
in :mod:`repro.inlining`) and then iterates the cleanup passes (dead
code elimination, constant folding, peephole) to a fixpoint.  Every
rewritten function is re-verified before being returned; a verifier
failure here is a bug in the optimizer, never in the guest program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bytecode.function import FunctionInfo
from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_function
from repro.opt.constfold import fold_constants
from repro.opt.dce import eliminate_dead_code
from repro.opt.inline import InlinePlan, InlineTransform
from repro.opt.peephole import peephole

#: Upper bound on cleanup iterations (each pass is monotonic so this is
#: a safety valve, not a tuning knob).
_MAX_CLEANUP_ROUNDS = 25


@dataclass
class OptimizationResult:
    """What came out of optimizing one function."""

    function: FunctionInfo
    inlines_applied: int
    size_before: int
    size_after: int


def cleanup(function: FunctionInfo) -> FunctionInfo:
    """Run DCE + constant folding + peephole to a fixpoint, in place."""
    code = function.code
    for _ in range(_MAX_CLEANUP_ROUNDS):
        code, changed_dce = eliminate_dead_code(code)
        code, changed_fold = fold_constants(code)
        code, changed_peep = peephole(code)
        if not (changed_dce or changed_fold or changed_peep):
            break
    function.code = code
    return function


def optimize_function(
    program: Program,
    plan: InlinePlan,
    run_cleanup: bool = True,
    verify: bool = True,
) -> OptimizationResult:
    """Apply ``plan`` and cleanup to its function; returns a new body."""
    original = program.functions[plan.function_index]
    size_before = original.bytecode_size()
    transform = InlineTransform(program)
    rewritten = transform.apply(plan)
    if run_cleanup:
        rewritten = cleanup(rewritten)
    if verify:
        verify_function(rewritten, program)
    return OptimizationResult(
        function=rewritten,
        inlines_applied=plan.count(),
        size_before=size_before,
        size_after=rewritten.bytecode_size(),
    )
