"""Shared rewriting utilities for the bytecode optimizer passes."""

from __future__ import annotations

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, jump_targets

__all__ = ["jump_targets", "compact", "slot_reference_counts"]


def compact(code: list[Instr], keep: list[bool]) -> list[Instr]:
    """Drop instructions where ``keep`` is False, remapping jump targets.

    A target pointing at a dropped instruction is remapped to the next
    kept instruction at or after it — callers must guarantee that this
    preserves semantics (true for unreachable code and for dropped
    no-effect instructions).
    """
    if all(keep):
        return code
    # new_index[pc] = index of the next kept instruction at or after pc.
    new_index = [0] * (len(code) + 1)
    count = 0
    for pc in range(len(code)):
        new_index[pc] = count
        if keep[pc]:
            count += 1
    new_index[len(code)] = count

    out: list[Instr] = []
    for pc, instr in enumerate(code):
        if not keep[pc]:
            continue
        if instr.op in JUMP_OPS:
            out.append(Instr(instr.op, new_index[instr.a], instr.b))
        else:
            out.append(instr)
    return out


def slot_reference_counts(code: list[Instr]) -> dict[int, int]:
    """How many LOAD/STORE instructions reference each local slot."""
    from repro.bytecode.opcodes import Op

    counts: dict[int, int] = {}
    for instr in code:
        if instr.op in (Op.LOAD, Op.STORE):
            counts[instr.a] = counts.get(instr.a, 0) + 1
    return counts
