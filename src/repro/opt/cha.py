"""Class hierarchy analysis (CHA) over a compiled program.

Computes, for every dispatch selector, the set of concrete target
methods any receiver could resolve to.  A selector with exactly one
possible target can be devirtualized without a guard; that is the basis
of the static ("trivial") inlining performed at low optimization levels,
before any profile exists.
"""

from __future__ import annotations

from repro.bytecode.program import Program


class ClassHierarchyAnalysis:
    """Selector → possible target functions, derived from vtables."""

    def __init__(self, program: Program):
        self._program = program
        self._targets: dict[int, set[int]] = {}
        for cls in program.classes:
            for selector_id, function_index in cls.vtable.items():
                self._targets.setdefault(selector_id, set()).add(function_index)

    def possible_targets(self, selector_id: int) -> frozenset[int]:
        """All functions a CALL_VIRTUAL on ``selector_id`` could reach."""
        return frozenset(self._targets.get(selector_id, frozenset()))

    def monomorphic_target(self, selector_id: int) -> int | None:
        """The single possible target, or ``None`` if 0 or >1 exist."""
        targets = self._targets.get(selector_id)
        if targets is not None and len(targets) == 1:
            return next(iter(targets))
        return None

    def is_monomorphic(self, selector_id: int) -> bool:
        return self.monomorphic_target(selector_id) is not None

    def polymorphy(self, selector_id: int) -> int:
        """Number of distinct implementations reachable by the selector."""
        return len(self._targets.get(selector_id, ()))
