"""Peephole cleanup.

Patterns handled (all gated on no jump landing inside the window, so
every rewrite is join-point safe):

* ``JUMP``/conditional jump to the next instruction — dropped/simplified,
* jump-to-``JUMP`` chains — retargeted (cycle-safe),
* ``NOP`` — dropped,
* ``PUSH x; POP`` and ``DUP; POP`` — dropped,
* ``NOT; JUMP_IF_FALSE`` / ``NOT; JUMP_IF_TRUE`` — fused,
* ``STORE k; LOAD k`` where slot ``k`` has no other reference in the
  function — dropped (this is what turns an inlined getter into a bare
  ``GETFIELD``),
* ``STORE k`` where slot ``k`` is never loaded — rewritten to ``POP``
  (dead parameter stores left behind by inlining).
"""

from __future__ import annotations

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, Op
from repro.opt.rewrite import compact, jump_targets, slot_reference_counts


def _resolve_chain(code: list[Instr], target: int) -> int:
    """Follow JUMP→JUMP chains, stopping on cycles."""
    seen = {target}
    while target < len(code) and code[target].op is Op.JUMP:
        nxt = code[target].a
        if nxt in seen:
            break
        seen.add(nxt)
        target = nxt
    return target


def peephole(code: list[Instr]) -> tuple[list[Instr], bool]:
    """Return (new code, changed?).  One sweep; callers iterate."""
    changed = False

    # 1. Retarget jump chains (pure operand rewrite, always safe).
    for instr in code:
        if instr.op in JUMP_OPS:
            resolved = _resolve_chain(code, instr.a)
            if resolved != instr.a:
                instr.a = resolved
                changed = True

    targets = jump_targets(code)
    keep = [True] * len(code)
    slot_refs = slot_reference_counts(code)
    loaded_slots = {instr.a for instr in code if instr.op is Op.LOAD}

    for pc, instr in enumerate(code):
        if not keep[pc]:
            continue
        op = instr.op

        # Dead store: the slot is never read anywhere in the function.
        # Parameter slots are exempt: callers still write them.
        if op is Op.STORE and instr.a not in loaded_slots:
            code[pc] = Instr(Op.POP)
            changed = True
            continue

        if op is Op.NOP and pc not in targets:
            keep[pc] = False
            changed = True
            continue

        if op is Op.JUMP and instr.a == pc + 1:
            keep[pc] = False
            changed = True
            continue

        if pc + 1 >= len(code) or (pc + 1) in targets or not keep[pc + 1]:
            continue
        nxt = code[pc + 1]

        # Conditional jump to next instruction: condition value is dead.
        if op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE) and instr.a == pc + 1:
            code[pc] = Instr(Op.POP)
            changed = True
            continue

        if op in (Op.PUSH, Op.PUSH_NULL, Op.DUP) and nxt.op is Op.POP:
            keep[pc] = False
            keep[pc + 1] = False
            changed = True
            continue

        if op is Op.NOT and nxt.op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
            flipped = (
                Op.JUMP_IF_TRUE if nxt.op is Op.JUMP_IF_FALSE else Op.JUMP_IF_FALSE
            )
            keep[pc] = False
            code[pc + 1] = Instr(flipped, nxt.a)
            changed = True
            continue

        if (
            op is Op.STORE
            and nxt.op is Op.LOAD
            and instr.a == nxt.a
            and slot_refs.get(instr.a, 0) == 2
        ):
            # The slot exists only for this hand-off; keep the value on
            # the stack instead.
            keep[pc] = False
            keep[pc + 1] = False
            changed = True
            continue

    if not changed:
        return code, False
    return compact(code, keep), True
