"""Constant folding over straight-line push sequences.

Folds ``PUSH a; PUSH b; <op>`` and ``PUSH a; <unary op>`` windows, and
turns constant-condition branches into unconditional control flow.
Windows are only folded when no jump lands in their interior, so the
rewrite cannot change the meaning of any join point.
"""

from __future__ import annotations

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.opt.rewrite import compact, jump_targets

_BINARY_FOLDS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.LT: lambda a, b: 1 if a < b else 0,
    Op.LE: lambda a, b: 1 if a <= b else 0,
    Op.GT: lambda a, b: 1 if a > b else 0,
    Op.GE: lambda a, b: 1 if a >= b else 0,
    Op.EQ: lambda a, b: 1 if a == b else 0,
    Op.NE: lambda a, b: 1 if a != b else 0,
}


def _fold_div(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def fold_constants(code: list[Instr]) -> tuple[list[Instr], bool]:
    """Return (new code, changed?).  One sweep; callers iterate."""
    targets = jump_targets(code)
    keep = [True] * len(code)
    changed = False

    for pc in range(len(code) - 1):
        if not keep[pc]:
            continue
        instr = code[pc]
        if instr.op is not Op.PUSH:
            continue

        nxt = code[pc + 1]
        if (pc + 1) in targets or not keep[pc + 1]:
            continue

        # PUSH a; NEG / NOT
        if nxt.op is Op.NEG:
            code[pc] = Instr(Op.PUSH, -instr.a)
            keep[pc + 1] = False
            changed = True
            continue
        if nxt.op is Op.NOT:
            code[pc] = Instr(Op.PUSH, 0 if instr.a != 0 else 1)
            keep[pc + 1] = False
            changed = True
            continue

        # PUSH c; JUMP_IF_FALSE/TRUE t
        if nxt.op is Op.JUMP_IF_FALSE or nxt.op is Op.JUMP_IF_TRUE:
            taken = (instr.a == 0) == (nxt.op is Op.JUMP_IF_FALSE)
            keep[pc] = False
            if taken:
                code[pc + 1] = Instr(Op.JUMP, nxt.a)
            else:
                keep[pc + 1] = False
            changed = True
            continue

        # PUSH a; PUSH b; <binop>
        if nxt.op is Op.PUSH and pc + 2 < len(code):
            third = code[pc + 2]
            if (pc + 2) in targets or not keep[pc + 2]:
                continue
            fold = _BINARY_FOLDS.get(third.op)
            if fold is not None:
                code[pc] = Instr(Op.PUSH, fold(instr.a, nxt.a))
                keep[pc + 1] = False
                keep[pc + 2] = False
                changed = True
            elif third.op in (Op.DIV, Op.MOD) and nxt.a != 0:
                a, b = instr.a, nxt.a
                quotient = _fold_div(a, b)
                value = quotient if third.op is Op.DIV else a - quotient * b
                code[pc] = Instr(Op.PUSH, value)
                keep[pc + 1] = False
                keep[pc + 2] = False
                changed = True

    if not changed:
        return code, False
    return compact(code, keep), True
