"""The inlining transform: splices callee bodies into callers.

This module is policy-free: it applies an :class:`InlinePlan` produced
by one of the policies in :mod:`repro.inlining`.  Three decision kinds:

* ``direct`` — the call is statically bound (``CALL_STATIC``, or a
  ``CALL_VIRTUAL`` whose selector CHA proves monomorphic): the body is
  spliced in place of the call, no guard.
* ``guarded`` — a virtual call with a profile-dominant target: a
  method-test guard (``GUARD_METHOD``) selects between the inlined body
  and a fallback virtual call (paper §5.1's guarded inlining).
* ``devirtualize`` — replace ``CALL_VIRTUAL`` with ``CALL_STATIC`` to
  the unique CHA target without inlining the body (used when the callee
  is too big to splice but the dispatch can still be cheapened).

Plans may nest: a decision carries sub-decisions for call sites *inside*
the inlined callee, identified by the callee's own baseline pcs, so the
whole plan is expressed against stable pre-transform coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import CALL_OPS, JUMP_OPS, Op
from repro.bytecode.program import Program

DIRECT = "direct"
GUARDED = "guarded"
DEVIRTUALIZE = "devirtualize"


class InlineError(Exception):
    """Raised when a plan cannot be applied to the code it names."""


@dataclass
class InlineDecision:
    """One action at one call site (pc in the baseline caller code).

    A ``GUARDED`` decision may carry ``extra_targets``: additional
    guarded targets tried in order after this one (a polymorphic inline
    cache in code form) before falling back to the virtual dispatch.
    Each extra target is itself a ``GUARDED`` decision at the same pc
    with its own nested plan.
    """

    callsite_pc: int
    callee_index: int
    kind: str = DIRECT
    nested: list["InlineDecision"] = field(default_factory=list)
    extra_targets: list["InlineDecision"] = field(default_factory=list)

    def count(self) -> int:
        """Total decisions in this subtree (for statistics)."""
        return (
            1
            + sum(decision.count() for decision in self.nested)
            + sum(decision.count() for decision in self.extra_targets)
        )


@dataclass
class InlinePlan:
    """All inlining actions for one function."""

    function_index: int
    decisions: list[InlineDecision] = field(default_factory=list)

    def count(self) -> int:
        return sum(decision.count() for decision in self.decisions)

    def is_empty(self) -> bool:
        return not self.decisions


def merge_decisions(
    old: list[InlineDecision],
    new: list[InlineDecision],
    caller_index: int | None = None,
    dcg=None,
    extend_chains: bool = True,
) -> list[InlineDecision]:
    """Union two decision lists, keyed by call site.

    Used by the adaptive system to make inlining *sticky* across
    recompilations: once a site is inlined it stays inlined, because the
    inlined calls stop executing and therefore stop accruing samples —
    re-planning from the diluted profile alone would demote them (real
    adaptive systems ratchet for the same reason).  Where both plans act
    on a site, the stronger action wins: a body splice supersedes a bare
    devirtualization; otherwise the earlier decision is kept and only
    the nested plans are merged.

    When both plans want a *guard* at the same site but disagree on the
    target, the site is genuinely polymorphic as observed (post-inline
    samples flow through the fallback dispatch, so a newly dominant
    target is real evidence): the incoming target is *appended* to the
    guard chain, exactly as a polymorphic inline cache extends itself,
    up to three targets.
    """
    merged: list[InlineDecision] = []
    new_by_pc = {decision.callsite_pc: decision for decision in new}
    for old_decision in old:
        incoming = new_by_pc.pop(old_decision.callsite_pc, None)
        if incoming is None:
            merged.append(old_decision)
            continue
        if (
            old_decision.kind == DEVIRTUALIZE
            and incoming.kind in (DIRECT, GUARDED)
        ):
            merged.append(incoming)
        elif old_decision.callee_index == incoming.callee_index:
            merged.append(
                InlineDecision(
                    old_decision.callsite_pc,
                    old_decision.callee_index,
                    old_decision.kind,
                    merge_decisions(
                        old_decision.nested,
                        incoming.nested,
                        old_decision.callee_index,
                        dcg,
                        extend_chains,
                    ),
                    old_decision.extra_targets or incoming.extra_targets,
                )
            )
        elif (
            extend_chains
            and old_decision.kind == GUARDED
            and incoming.kind == GUARDED
        ):
            chain = {old_decision.callee_index} | {
                extra.callee_index for extra in old_decision.extra_targets
            }
            if incoming.callee_index not in chain and len(chain) < 3:
                addition = InlineDecision(
                    incoming.callsite_pc,
                    incoming.callee_index,
                    GUARDED,
                    incoming.nested,
                )
                merged.append(
                    InlineDecision(
                        old_decision.callsite_pc,
                        old_decision.callee_index,
                        GUARDED,
                        old_decision.nested,
                        old_decision.extra_targets + [addition],
                    )
                )
            else:
                merged.append(old_decision)
        else:
            merged.append(old_decision)
    merged.extend(new_by_pc.values())
    return merged


def merge_plans(
    old: InlinePlan, new: InlinePlan, dcg=None, extend_chains: bool = True
) -> InlinePlan:
    """Sticky union of two plans for the same function."""
    if old.function_index != new.function_index:
        raise InlineError("cannot merge plans for different functions")
    return InlinePlan(
        old.function_index,
        merge_decisions(
            old.decisions, new.decisions, old.function_index, dcg, extend_chains
        ),
    )


class InlineTransform:
    """Applies inline plans to function bodies."""

    def __init__(self, program: Program):
        self._program = program

    # -- public API --------------------------------------------------------------

    def apply(self, plan: InlinePlan) -> FunctionInfo:
        """Produce a new (rewritten) body for the planned function.

        The returned :class:`FunctionInfo` reuses the original identity
        (name/kind/owner/index) so it can be installed in a code cache.
        """
        original = self._program.functions[plan.function_index]
        state = _CalleeState(
            original.copy_code(), original.num_locals, original.index
        )
        self._apply_decisions(state, plan.decisions)
        rewritten = FunctionInfo(
            name=original.name,
            code=state.code,
            num_params=original.num_params,
            num_locals=state.num_locals,
            kind=original.kind,
            owner=original.owner,
            returns_value=original.returns_value,
            local_names=list(original.local_names),
        )
        rewritten.index = original.index
        return rewritten

    # -- internals ----------------------------------------------------------------

    def _apply_decisions(
        self, state: "_CalleeState", decisions: list[InlineDecision]
    ) -> None:
        # Descending pc order keeps earlier baseline pcs valid as later
        # sites are spliced.
        for decision in sorted(decisions, key=lambda d: -d.callsite_pc):
            self._apply_one(state, decision)

    def _apply_one(self, state: "_CalleeState", decision: InlineDecision) -> None:
        pc = decision.callsite_pc
        if not (0 <= pc < len(state.code)):
            raise InlineError(f"callsite pc {pc} out of range")
        call = state.code[pc]
        callee = self._program.functions[decision.callee_index]

        if decision.kind == DEVIRTUALIZE:
            if call.op is not Op.CALL_VIRTUAL:
                raise InlineError(f"cannot devirtualize {call.op.name} at pc {pc}")
            state.code[pc] = Instr(
                Op.CALL_STATIC, callee.index, call.b + 1, origin=call.origin
            )
            return

        callee_state = self._transformed_callee(callee, decision.nested)

        if decision.kind == DIRECT:
            if call.op is Op.CALL_STATIC:
                if call.a != callee.index:
                    raise InlineError(
                        f"plan names callee {callee.qualified_name} but site "
                        f"calls function {call.a}"
                    )
            elif call.op is not Op.CALL_VIRTUAL:
                raise InlineError(f"cannot inline {call.op.name} at pc {pc}")
            replacement = self._direct_sequence(state, callee, callee_state, pc)
        elif decision.kind == GUARDED:
            if call.op is not Op.CALL_VIRTUAL:
                raise InlineError(
                    f"guarded inlining requires CALL_VIRTUAL at pc {pc}"
                )
            targets = [(callee, callee_state)]
            for extra in decision.extra_targets:
                if extra.kind != GUARDED:
                    raise InlineError("extra targets must be GUARDED decisions")
                extra_callee = self._program.functions[extra.callee_index]
                targets.append(
                    (extra_callee, self._transformed_callee(extra_callee, extra.nested))
                )
            replacement = self._guarded_sequence(state, targets, call, pc)
        else:
            raise InlineError(f"unknown decision kind {decision.kind!r}")

        _splice(state.code, pc, replacement)

    def _transformed_callee(
        self, callee: FunctionInfo, nested: list[InlineDecision]
    ) -> "_CalleeState":
        callee_state = _CalleeState(callee.copy_code(), callee.num_locals, callee.index)
        if nested:
            self._apply_decisions(callee_state, nested)
        return callee_state

    def _direct_sequence(
        self,
        state: "_CalleeState",
        callee: FunctionInfo,
        callee_state: "_CalleeState",
        pc: int,
    ) -> list[Instr]:
        """Replacement for an unguarded inline at ``pc``.

        Stack on entry: ``..., arg0, ..., argN-1`` (receiver is arg0 for
        methods).  Args are stored into the callee's (relocated) param
        slots, then the body runs in place.
        """
        base = state.num_locals
        state.num_locals += callee_state.num_locals
        nargs = callee.num_params

        stores = [Instr(Op.STORE, base + i) for i in reversed(range(nargs))]
        body_offset = pc + len(stores)
        end_pc = body_offset + len(callee_state.code)
        body = _relocate(callee_state.code, base, body_offset, end_pc)
        return stores + body

    def _guarded_sequence(
        self,
        state: "_CalleeState",
        targets: list[tuple[FunctionInfo, "_CalleeState"]],
        call: Instr,
        pc: int,
    ) -> list[Instr]:
        """Replacement implementing a guard chain (PIC in code form)::

            store args;
            DUP; GUARD_METHOD t1; JUMP_IF_FALSE L2;
            STORE this; <body1>; JUMP end;
          L2:
            DUP; GUARD_METHOD t2; JUMP_IF_FALSE fb;
            STORE this; <body2>; JUMP end;
          fb:
            reload args; CALL_VIRTUAL;
          end:

        All bodies share one relocated slot block: the paths are
        mutually exclusive, and every body initializes its parameters
        before reading them.
        """
        base = state.num_locals
        state.num_locals += max(cs.num_locals for _, cs in targets)
        selector_id = call.a
        argc = call.b
        nargs = argc + 1  # + receiver

        # Segment layout (relative to pc):
        #   park: argc stores
        #   per target: DUP, GUARD, JIF, STORE this, body, JUMP end
        #   fallback: argc loads + CALL_VIRTUAL
        park_len = argc
        segment_starts: list[int] = []
        offset = park_len
        for _, callee_state in targets:
            segment_starts.append(offset)
            offset += 4 + len(callee_state.code) + 1
        fallback_start = offset
        end_index = fallback_start + argc + 1
        end_pc = pc + end_index

        seq: list[Instr] = []
        for i in reversed(range(1, nargs)):
            seq.append(Instr(Op.STORE, base + i))
        for index, (callee, callee_state) in enumerate(targets):
            on_fail = (
                segment_starts[index + 1]
                if index + 1 < len(targets)
                else fallback_start
            )
            seq.append(Instr(Op.DUP))
            seq.append(Instr(Op.GUARD_METHOD, selector_id, callee.index))
            seq.append(Instr(Op.JUMP_IF_FALSE, pc + on_fail))
            seq.append(Instr(Op.STORE, base + 0))
            body_offset = pc + len(seq)
            seq.extend(_relocate(callee_state.code, base, body_offset, end_pc))
            seq.append(Instr(Op.JUMP, end_pc))
        # Fallback: receiver is on the stack; reload args and dispatch.
        for i in range(1, nargs):
            seq.append(Instr(Op.LOAD, base + i))
        seq.append(Instr(Op.CALL_VIRTUAL, selector_id, argc, origin=call.origin))
        assert len(seq) == end_index
        return seq


class _CalleeState:
    """Mutable (code, num_locals) pair during transformation.

    On construction, every call instruction is stamped with its baseline
    origin ``(owner function index, pc)`` unless an earlier transform
    already set one — so origins stay correct as splices move code.
    """

    __slots__ = ("code", "num_locals", "owner_index")

    def __init__(self, code: list[Instr], num_locals: int, owner_index: int):
        self.code = code
        self.num_locals = num_locals
        self.owner_index = owner_index
        for pc, instr in enumerate(code):
            if instr.op in CALL_OPS and instr.origin is None:
                instr.origin = (owner_index, pc)


def _relocate(
    code: list[Instr], slot_base: int, target_offset: int, end_pc: int
) -> list[Instr]:
    """Rewrite a callee body for splicing at ``target_offset``.

    Locals shift by ``slot_base``; jump targets shift by
    ``target_offset``; returns become jumps to ``end_pc`` (a
    ``RETURN_VAL``'s value is simply left on the stack).
    """
    out: list[Instr] = []
    for instr in code:
        op = instr.op
        if op in (Op.LOAD, Op.STORE):
            out.append(Instr(op, instr.a + slot_base))
        elif op in JUMP_OPS:
            out.append(Instr(op, instr.a + target_offset, instr.b))
        elif op in (Op.RETURN, Op.RETURN_VAL):
            out.append(Instr(Op.JUMP, end_pc))
        else:
            out.append(instr.copy())
    return out


def _splice(code: list[Instr], pc: int, replacement: list[Instr]) -> None:
    """Replace the single instruction at ``pc`` with ``replacement``,
    shifting all jump targets beyond the splice point."""
    delta = len(replacement) - 1
    if delta != 0:
        for index, instr in enumerate(code):
            if index == pc:
                continue
            if instr.op in JUMP_OPS and instr.a > pc:
                instr.a += delta
    code[pc : pc + 1] = replacement
