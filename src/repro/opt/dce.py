"""Dead code elimination: removes instructions unreachable from pc 0.

Inlining leaves behind jump-to-next returns and unreachable safety
epilogues; this pass sweeps them.  Reachability is the only criterion —
no liveness reasoning — so it is trivially sound: every kept jump's
target is itself reachable and therefore kept.
"""

from __future__ import annotations

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, TERMINATOR_OPS
from repro.opt.rewrite import compact


def eliminate_dead_code(code: list[Instr]) -> tuple[list[Instr], bool]:
    """Return (new code, changed?)."""
    reachable = [False] * len(code)
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        if pc >= len(code) or reachable[pc]:
            continue
        reachable[pc] = True
        instr = code[pc]
        if instr.op in JUMP_OPS:
            worklist.append(instr.a)
        if instr.op not in TERMINATOR_OPS:
            worklist.append(pc + 1)
    if all(reachable):
        return code, False
    return compact(code, reachable), True
