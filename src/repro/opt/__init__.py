"""The optimizing tier: inlining transform, CHA, cleanup passes."""

from repro.opt.cha import ClassHierarchyAnalysis
from repro.opt.constfold import fold_constants
from repro.opt.dce import eliminate_dead_code
from repro.opt.inline import (
    DEVIRTUALIZE,
    DIRECT,
    GUARDED,
    InlineDecision,
    InlineError,
    InlinePlan,
    InlineTransform,
)
from repro.opt.peephole import peephole
from repro.opt.pipeline import OptimizationResult, cleanup, optimize_function

__all__ = [
    "ClassHierarchyAnalysis",
    "DEVIRTUALIZE",
    "DIRECT",
    "GUARDED",
    "InlineDecision",
    "InlineError",
    "InlinePlan",
    "InlineTransform",
    "OptimizationResult",
    "cleanup",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_function",
    "peephole",
]
