"""Benchmark programs written in Mini, mirroring the paper's suite."""

from repro.benchsuite.generator import GeneratorConfig, generate_program, generate_source
from repro.benchsuite.suite import (
    ADVERSARIAL,
    BENCHMARKS,
    Benchmark,
    SIZES,
    benchmark_names,
    clear_cache,
    get_benchmark,
    program_for,
)

__all__ = [
    "ADVERSARIAL",
    "BENCHMARKS",
    "Benchmark",
    "GeneratorConfig",
    "SIZES",
    "benchmark_names",
    "clear_cache",
    "generate_program",
    "generate_source",
    "get_benchmark",
    "program_for",
]
