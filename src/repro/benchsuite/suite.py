"""The benchmark suite registry (Table 1's benchmark column).

Thirteen Mini programs mirror the paper's suite; each has a ``tiny``
size (tests / CI), plus the paper's ``small`` and ``large`` inputs.
Compiled programs are cached per (name, size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bytecode.program import Program
from repro.frontend.codegen import compile_source
from repro.benchsuite import adversarial
from repro.benchsuite.programs import (
    compress,
    daikon,
    db,
    ipsixql,
    jack,
    javac,
    jbb,
    jess,
    kawa,
    mpegaudio,
    mtrt,
    soot,
    xerces,
)

SIZES = ("tiny", "small", "large")


@dataclass(frozen=True)
class Benchmark:
    """One suite entry: a source template plus per-size iteration counts."""

    name: str
    source_template: str
    tiny_n: int
    small_n: int
    large_n: int
    description: str

    def iterations(self, size: str) -> int:
        if size == "tiny":
            return self.tiny_n
        if size == "small":
            return self.small_n
        if size == "large":
            return self.large_n
        raise ValueError(f"unknown size {size!r} (expected one of {SIZES})")

    def source(self, size: str) -> str:
        return self.source_template.replace("__N__", str(self.iterations(size)))


def _entry(module) -> Benchmark:
    return Benchmark(
        name=module.NAME,
        source_template=module.SOURCE,
        tiny_n=module.TINY_N,
        small_n=module.SMALL_N,
        large_n=module.LARGE_N,
        description=(module.__doc__ or "").strip().splitlines()[0],
    )


#: Paper order (Table 1): SPECjvm98 first, then the non-SPEC programs.
BENCHMARKS: dict[str, Benchmark] = {
    module.NAME: _entry(module)
    for module in (
        compress,
        jess,
        db,
        javac,
        mpegaudio,
        mtrt,
        jack,
        ipsixql,
        xerces,
        daikon,
        kawa,
        jbb,
        soot,
    )
}

#: The Figure 1 adversary is not part of the accuracy-table suite but is
#: exposed through the same interface.
ADVERSARIAL: Benchmark = _entry(adversarial)

_cache: dict[tuple[str, str], Program] = {}


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)


def get_benchmark(name: str) -> Benchmark:
    if name == ADVERSARIAL.name:
        return ADVERSARIAL
    benchmark = BENCHMARKS.get(name)
    if benchmark is None:
        raise KeyError(f"unknown benchmark {name!r}")
    return benchmark


def program_for(name: str, size: str = "small") -> Program:
    """Compile (with caching) one benchmark at one input size."""
    key = (name, size)
    cached = _cache.get(key)
    if cached is None:
        benchmark = get_benchmark(name)
        cached = compile_source(benchmark.source(size), filename=f"<{name}-{size}>")
        _cache[key] = cached
    return cached


def clear_cache() -> None:
    _cache.clear()
