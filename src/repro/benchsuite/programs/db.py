"""``db`` — modeled on SPECjvm98 209_db (in-memory database).

Character: scanning and shell-sorting a table of records, where the
comparison goes through a virtual method on an index object.  Moderate
call density dominated by a single hot edge (the comparator), plus long
non-call scanning stretches that mislead timer sampling.
"""

NAME = "db"

TINY_N = 1
SMALL_N = 9
LARGE_N = 70

SOURCE = """
class Record {
  var key: int;
  var payload: int;
  def init(key: int, payload: int) { this.key = key; this.payload = payload; }
}

class Index {
  def compare(a: Record, b: Record): int { return a.key - b.key; }
}

class PayloadIndex extends Index {
  def compare(a: Record, b: Record): int { return a.payload - b.payload; }
}

class Table {
  var rows: Record[];
  var size: int;

  def init(n: int) {
    this.rows = new Record[n];
    this.size = n;
    var seed = 99;
    var i = 0;
    while (i < n) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      this.rows[i] = new Record(seed % 10000, seed % 777);
      i = i + 1;
    }
  }

  def shellSort(index: Index) {
    var n = this.size;
    var gap = n / 2;
    while (gap > 0) {
      var i = gap;
      while (i < n) {
        var item = this.rows[i];
        var j = i;
        while (j >= gap && index.compare(this.rows[j - gap], item) > 0) {
          this.rows[j] = this.rows[j - gap];
          j = j - gap;
        }
        this.rows[j] = item;
        i = i + 1;
      }
      gap = gap / 2;
    }
  }

  def scan(lo: int, hi: int): int {
    // Non-call scanning stretch: sums keys in a range.
    var sum = 0;
    var i = 0;
    var n = this.size;
    while (i < n) {
      var k = this.rows[i].key;
      if (k >= lo) {
        if (k < hi) {
          sum = (sum + k * 3 + this.rows[i].payload) % 1000003;
        }
      }
      i = i + 1;
    }
    return sum;
  }

  def shuffle(seed: int) {
    var i = 0;
    var n = this.size;
    while (i < n) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var j = seed % n;
      var tmp = this.rows[i];
      this.rows[i] = this.rows[j];
      this.rows[j] = tmp;
      i = i + 1;
    }
  }
}

def main() {
  var table = new Table(280);
  var byKey = new Index();
  var byPayload = new PayloadIndex();
  var total = 0;
  var round = 0;
  while (round < __N__) {
    table.shuffle(round * 31 + 7);
    if (round % 3 == 2) {
      table.shellSort(byPayload);
    } else {
      table.shellSort(byKey);
    }
    total = (total + table.scan(1000, 9000)) % 1000003;
    round = round + 1;
  }
  print(total);
}
"""
