"""``jbb`` — modeled on SPECjbb2000 (Java business benchmark).

Character: a transaction mix over a warehouse object model — orders,
payments, stock checks — with phase behavior (the mix shifts over
time), exercising continuous profiling: a profiler that only samples a
window early (code patching) or sparsely (timer) misrepresents the
steady mix.
"""

NAME = "jbb"

TINY_N = 12
SMALL_N = 90
LARGE_N = 700

SOURCE = """
class Item {
  var price: int;
  var stock: int;
  def init(price: int, stock: int) { this.price = price; this.stock = stock; }
}

class Warehouse {
  var items: Item[];
  var count: int;
  def init(n: int) {
    this.items = new Item[n];
    this.count = n;
    var i = 0;
    while (i < n) {
      this.items[i] = new Item(100 + i * 7 % 900, 50 + i % 40);
      i = i + 1;
    }
  }
  def item(index: int): Item { return this.items[index % this.count]; }
  def restock(index: int, amount: int) {
    var item = this.item(index);
    item.stock = item.stock + amount;
  }
}

class Transaction {
  var result: int;
  def run(w: Warehouse, seed: int): int { return 0; }
}

class NewOrder extends Transaction {
  def run(w: Warehouse, seed: int): int {
    var lines = 3 + seed % 5;
    var total = 0;
    var i = 0;
    while (i < lines) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var item = w.item(seed % 1000);
      var qty = 1 + seed % 4;
      if (item.stock >= qty) {
        item.stock = item.stock - qty;
        total = total + item.price * qty;
      } else {
        w.restock(seed % 1000, 60);
      }
      i = i + 1;
    }
    this.result = total % 1000003;
    return this.result;
  }
}

class Payment extends Transaction {
  var balance: int;
  def run(w: Warehouse, seed: int): int {
    var amount = seed % 5000;
    this.balance = (this.balance + amount) % 1000003;
    this.result = this.balance;
    return this.result;
  }
}

class StockLevel extends Transaction {
  def run(w: Warehouse, seed: int): int {
    // Scan a stretch of items without calls.
    var low = 0;
    var i = seed % 200;
    var end = i + 120;
    while (i < end) {
      if (w.items[i % w.count].stock < 30) { low = low + 1; }
      i = i + 1;
    }
    this.result = low;
    return low;
  }
}

class Delivery extends Transaction {
  def run(w: Warehouse, seed: int): int {
    var i = 0;
    var moved = 0;
    while (i < 10) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      w.restock(seed % 1000, 2);
      moved = moved + 2;
      i = i + 1;
    }
    this.result = moved;
    return moved;
  }
}

def main() {
  var warehouse = new Warehouse(250);
  var mix = new Transaction[4];
  mix[0] = new NewOrder();
  mix[1] = new Payment();
  mix[2] = new StockLevel();
  mix[3] = new Delivery();
  var total = 0;
  var txn = 0;
  var horizon = __N__ * 10;
  while (txn < horizon) {
    var seed = txn * 2654435761 % 2147483648;
    // Phase behavior: early phase is order-heavy, late phase scan-heavy.
    var pick = seed % 10;
    var slot = 0;
    if (txn * 2 < horizon) {
      if (pick < 6) { slot = 0; } else { if (pick < 8) { slot = 1; } else { slot = 2; } }
    } else {
      if (pick < 3) { slot = 0; } else { if (pick < 5) { slot = 3; } else { slot = 2; } }
    }
    total = (total + mix[slot].run(warehouse, seed)) % 1000003;
    txn = txn + 1;
  }
  print(total);
}
"""
