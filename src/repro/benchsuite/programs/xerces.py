"""``xerces`` — modeled on an Apache Xerces XML-parse exercise.

Character: a character-scanning loop (long non-call stretches) that
fires SAX-style events into polymorphic handler callbacks — the classic
event-parser shape where timer samples pile onto whichever handler
follows the scan.
"""

NAME = "xerces"

TINY_N = 1
SMALL_N = 8
LARGE_N = 58

SOURCE = """
class Handler {
  var events: int;
  def startElement(tag: int): int { this.events = this.events + 1; return tag; }
  def endElement(tag: int): int { this.events = this.events + 1; return tag; }
  def characters(count: int): int { this.events = this.events + 1; return count; }
}

class CountingHandler extends Handler {
  var depth: int;
  var checksum: int;
  def startElement(tag: int): int {
    this.events = this.events + 1;
    this.depth = this.depth + 1;
    this.checksum = (this.checksum * 31 + tag) % 1000003;
    return this.depth;
  }
  def endElement(tag: int): int {
    this.events = this.events + 1;
    this.depth = this.depth - 1;
    return this.depth;
  }
  def characters(count: int): int {
    this.events = this.events + 1;
    this.checksum = (this.checksum + count * 7) % 1000003;
    return count;
  }
}

class ValidatingHandler extends CountingHandler {
  var violations: int;
  def startElement(tag: int): int {
    this.events = this.events + 1;
    this.depth = this.depth + 1;
    if (tag % 13 == 0) { this.violations = this.violations + 1; }
    this.checksum = (this.checksum * 31 + tag) % 1000003;
    return this.depth;
  }
}

class Scanner {
  var doc: int[];
  var pos: int;
  def init(doc: int[]) { this.doc = doc; this.pos = 0; }

  def parse(handler: Handler): int {
    var n = len(this.doc);
    var guard = 0;
    while (this.pos < n) {
      var c = this.doc[this.pos];
      if (c == 60) {  // '<'
        this.pos = this.pos + 1;
        if (this.pos < n && this.doc[this.pos] == 47) {  // '</...>'
          this.pos = this.pos + 1;
          var tag = this.scanName();
          guard = handler.endElement(tag);
        } else {
          var tag2 = this.scanName();
          guard = handler.startElement(tag2);
        }
      } else {
        // Character data: scan to next '<' without calls.
        var start = this.pos;
        var hash = 0;
        while (this.pos < n && this.doc[this.pos] != 60) {
          hash = (hash * 17 + this.doc[this.pos]) % 65521;
          this.pos = this.pos + 1;
        }
        guard = handler.characters(this.pos - start + hash % 3);
      }
    }
    return guard;
  }

  def scanName(): int {
    var tag = 0;
    var n = len(this.doc);
    while (this.pos < n && this.doc[this.pos] != 62) {  // '>'
      tag = (tag * 31 + this.doc[this.pos]) % 8191;
      this.pos = this.pos + 1;
    }
    this.pos = this.pos + 1;
    return tag;
  }
}

def synthesizeDoc(buf: int[], seed: int): int {
  var pos = 0;
  var depth = 0;
  var cap = len(buf);
  while (pos < cap - 40) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var r = seed % 100;
    if (r < 30 && depth < 10) {
      buf[pos] = 60; pos = pos + 1;             // '<'
      buf[pos] = 97 + r % 26; pos = pos + 1;    // name char
      buf[pos] = 97 + seed % 26; pos = pos + 1;
      buf[pos] = 62; pos = pos + 1;             // '>'
      depth = depth + 1;
    } else {
      if (r < 45 && depth > 0) {
        buf[pos] = 60; pos = pos + 1;
        buf[pos] = 47; pos = pos + 1;           // '/'
        buf[pos] = 97 + r % 26; pos = pos + 1;
        buf[pos] = 62; pos = pos + 1;
        depth = depth - 1;
      } else {
        // text run
        var run = 4 + seed % 24;
        var k = 0;
        while (k < run && pos < cap - 1) {
          buf[pos] = 97 + (seed + k) % 26;
          pos = pos + 1;
          k = k + 1;
        }
      }
    }
  }
  while (depth > 0 && pos < cap - 4) {
    buf[pos] = 60; pos = pos + 1;
    buf[pos] = 47; pos = pos + 1;
    buf[pos] = 120; pos = pos + 1;
    buf[pos] = 62; pos = pos + 1;
    depth = depth - 1;
  }
  return pos;
}

def main() {
  var buf = new int[1600];
  var counting = new CountingHandler();
  var validating = new ValidatingHandler();
  var total = 0;
  var docNum = 0;
  while (docNum < __N__) {
    var used = synthesizeDoc(buf, docNum * 77 + 9);
    var doc = new int[used];
    var i = 0;
    while (i < used) { doc[i] = buf[i]; i = i + 1; }
    var scanner = new Scanner(doc);
    if (docNum % 4 == 3) {
      total = (total + scanner.parse(validating)) % 1000003;
    } else {
      total = (total + scanner.parse(counting)) % 1000003;
    }
    docNum = docNum + 1;
  }
  print(total);
  print(counting.checksum);
  print(validating.violations);
}
"""
