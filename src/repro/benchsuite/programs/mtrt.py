"""``mtrt`` — modeled on SPECjvm98 227_mtrt (raytracer).

Character: vector math through small methods plus polymorphic
``intersect`` dispatch over scene primitives (spheres/planes/triangles
stand-ins).  The hottest call edges dominate heavily — this is the
benchmark where profile-directed inlining pays the most in both of the
paper's VMs (8.7% on J9).
"""

NAME = "mtrt"

TINY_N = 40
SMALL_N = 600
LARGE_N = 4800

SOURCE = """
// Fixed-point 3D vectors, scale 1024.
class Vec {
  var x: int;
  var y: int;
  var z: int;
  def init(x: int, y: int, z: int) { this.x = x; this.y = y; this.z = z; }
  def dot(o: Vec): int {
    return (this.x * o.x + this.y * o.y + this.z * o.z) / 1024;
  }
  def sub(o: Vec): Vec { return new Vec(this.x - o.x, this.y - o.y, this.z - o.z); }
  def scale(k: int): Vec {
    return new Vec(this.x * k / 1024, this.y * k / 1024, this.z * k / 1024);
  }
}

class Shape {
  var material: int;
  def intersect(origin: Vec, dir: Vec): int { return 0 - 1; }
  def shade(t: int): int { return this.material * t % 255; }
}

class Sphere extends Shape {
  var center: Vec;
  var radius2: int;
  def init(c: Vec, r2: int, m: int) {
    this.center = c; this.radius2 = r2; this.material = m;
  }
  def intersect(origin: Vec, dir: Vec): int {
    var oc = this.center.sub(origin);
    var b = oc.dot(dir);
    var det = b * b / 1024 - oc.dot(oc) + this.radius2;
    if (det < 0) { return 0 - 1; }
    return b;
  }
}

class Plane extends Shape {
  var normal: Vec;
  var offset: int;
  def init(n: Vec, d: int, m: int) {
    this.normal = n; this.offset = d; this.material = m;
  }
  def intersect(origin: Vec, dir: Vec): int {
    var denom = this.normal.dot(dir);
    if (denom == 0) { return 0 - 1; }
    var t = (this.offset - this.normal.dot(origin)) * 1024 / denom;
    if (t < 0) { return 0 - 1; }
    return t;
  }
}

class Scene {
  var shapes: Shape[];
  var count: int;
  def init(n: int) {
    this.shapes = new Shape[n];
    this.count = n;
    var i = 0;
    while (i < n) {
      if (i % 4 == 3) {
        this.shapes[i] = new Plane(new Vec(0, 1024, 0), i * 100, i % 7 + 1);
      } else {
        var c = new Vec(i * 311 % 2048 - 1024, i * 173 % 2048 - 1024, 1024 + i * 97 % 1024);
        this.shapes[i] = new Sphere(c, 1024 + i * 53 % 512, i % 5 + 1);
      }
      i = i + 1;
    }
  }

  def trace(origin: Vec, dir: Vec): int {
    var best = 0 - 1;
    var bestShape = 0 - 1;
    var i = 0;
    while (i < this.count) {
      var t = this.shapes[i].intersect(origin, dir);
      if (t >= 0) {
        if (best < 0 || t < best) { best = t; bestShape = i; }
      }
      i = i + 1;
    }
    if (bestShape < 0) { return 0; }
    return this.shapes[bestShape].shade(best);
  }
}

def main() {
  var scene = new Scene(12);
  var origin = new Vec(0, 0, 0);
  var total = 0;
  var ray = 0;
  while (ray < __N__) {
    var px = ray * 37 % 512 - 256;
    var py = ray * 59 % 512 - 256;
    var dir = new Vec(px, py, 1024);
    total = (total + scene.trace(origin, dir)) % 1000003;
    ray = ray + 1;
  }
  print(total);
}
"""
