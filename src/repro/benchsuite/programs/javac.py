"""``javac`` — modeled on SPECjvm98 213_javac (the JDK compiler).

Character: the most method-rich benchmark — a full expression compiler
written *in Mini*: tokenizer → recursive-descent parser → polymorphic
AST → constant folder → stack-code emitter → evaluator.  Deep call
chains, many distinct call edges, heavy polymorphism.  This is the
benchmark where the paper saw the largest accuracy-driven speedup, and
its complexity is why: inaccurate profiles miss many of its medium-heat
call sites.
"""

NAME = "javac"

TINY_N = 6
SMALL_N = 55
LARGE_N = 430

SOURCE = """
// Token kinds: 0=num 1=plus 2=minus 3=star 4=slash 5=lparen 6=rparen 7=eof
class Lexer {
  var src: int[];
  var pos: int;
  var value: int;

  def init(src: int[]) { this.src = src; this.pos = 0; this.value = 0; }

  def next(): int {
    if (this.pos >= len(this.src)) { return 7; }
    var c = this.src[this.pos];
    this.pos = this.pos + 1;
    if (c >= 48 && c <= 57) {
      var v = c - 48;
      while (this.pos < len(this.src) && this.src[this.pos] >= 48 && this.src[this.pos] <= 57) {
        v = v * 10 + this.src[this.pos] - 48;
        this.pos = this.pos + 1;
      }
      this.value = v;
      return 0;
    }
    if (c == 43) { return 1; }
    if (c == 45) { return 2; }
    if (c == 42) { return 3; }
    if (c == 47) { return 4; }
    if (c == 40) { return 5; }
    return 6;
  }
}

class Expr {
  def eval(): int { return 0; }
  def size(): int { return 1; }
  def fold(): Expr { return this; }
  def isConst(): bool { return false; }
}

class Num extends Expr {
  var value: int;
  def init(v: int) { this.value = v; }
  def eval(): int { return this.value; }
  def isConst(): bool { return true; }
}

class Bin extends Expr {
  var op: int;
  var left: Expr;
  var right: Expr;
  def init(op: int, l: Expr, r: Expr) { this.op = op; this.left = l; this.right = r; }
  def eval(): int {
    var a = this.left.eval();
    var b = this.right.eval();
    if (this.op == 1) { return a + b; }
    if (this.op == 2) { return a - b; }
    if (this.op == 3) { return a * b; }
    if (b == 0) { return 0; }
    return a / b;
  }
  def size(): int { return 1 + this.left.size() + this.right.size(); }
  def fold(): Expr {
    this.left = this.left.fold();
    this.right = this.right.fold();
    if (this.left.isConst() && this.right.isConst()) {
      return new Num(this.eval());
    }
    return this;
  }
}

class Parser {
  var lexer: Lexer;
  var token: int;

  def init(lexer: Lexer) { this.lexer = lexer; this.token = lexer.next(); }

  def advance() { this.token = this.lexer.next(); }

  def parseExpr(): Expr {
    var left = this.parseTerm();
    while (this.token == 1 || this.token == 2) {
      var op = this.token;
      this.advance();
      left = new Bin(op, left, this.parseTerm());
    }
    return left;
  }

  def parseTerm(): Expr {
    var left = this.parseFactor();
    while (this.token == 3 || this.token == 4) {
      var op = this.token;
      this.advance();
      left = new Bin(op, left, this.parseFactor());
    }
    return left;
  }

  def parseFactor(): Expr {
    if (this.token == 5) {
      this.advance();
      var inner = this.parseExpr();
      this.advance(); // consume ')'
      return inner;
    }
    var v = this.lexer.value;
    this.advance();
    return new Num(v);
  }
}

class Emitter {
  var code: int[];
  var n: int;
  def init(cap: int) { this.code = new int[cap]; this.n = 0; }
  def emit(op: int) { this.code[this.n] = op; this.n = this.n + 1; }
  def walk(e: Expr) {
    // "Code generation": a post-order walk emitting opcodes.
    if (e.isConst()) {
      this.emit(e.eval() % 256);
    } else {
      this.emit(200 + e.size() % 50);
    }
  }
  def checksum(): int {
    var sum = 0;
    var i = 0;
    while (i < this.n) { sum = (sum * 31 + this.code[i]) % 1000003; i = i + 1; }
    return sum;
  }
}

def synthesize(buf: int[], seed: int): int {
  // Generate a random arithmetic expression as "source text".
  var pos = 0;
  var depth = 0;
  var want = 40;
  var i = 0;
  while (i < want) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var r = seed % 100;
    if (r < 22 && depth < 6) {
      buf[pos] = 40; pos = pos + 1; depth = depth + 1;  // '('
    }
    // a 1-3 digit number
    buf[pos] = 48 + seed % 10; pos = pos + 1;
    if (r % 3 == 0) { buf[pos] = 48 + r % 10; pos = pos + 1; }
    if (r < 40 && depth > 0) {
      buf[pos] = 41; pos = pos + 1; depth = depth - 1;  // ')'
    }
    if (i < want - 1) {
      var ops = new int[4];
      ops[0] = 43; ops[1] = 45; ops[2] = 42; ops[3] = 47;
      buf[pos] = ops[seed % 4]; pos = pos + 1;
    }
    i = i + 1;
  }
  while (depth > 0) { buf[pos] = 41; pos = pos + 1; depth = depth - 1; }
  return pos;
}

def main() {
  var total = 0;
  var round = 0;
  while (round < __N__) {
    var buf = new int[420];
    var used = synthesize(buf, round * 131 + 17);
    var src = new int[used];
    var i = 0;
    while (i < used) { src[i] = buf[i]; i = i + 1; }

    var parser = new Parser(new Lexer(src));
    var tree = parser.parseExpr();
    var folded = tree.fold();
    var emitter = new Emitter(600);
    emitter.walk(folded);
    emitter.walk(tree);
    total = (total + folded.eval() + tree.size() * 7 + emitter.checksum()) % 1000000007;
    round = round + 1;
  }
  print(total);
}
"""
