"""``ipsixql`` — modeled on the Ipsixql persistent-XML-database
benchmark.

Character: queries over a persistent tree of polymorphic nodes
(elements, text, attributes): recursive virtual dispatch at every node
with leaf-heavy predicate calls, plus an index-scan phase with few
calls.
"""

NAME = "ipsixql"

TINY_N = 2
SMALL_N = 14
LARGE_N = 110

SOURCE = """
class XNode {
  var tag: int;
  def match(query: int): bool { return false; }
  def weight(): int { return 0; }
  def querySubtree(query: int): int {
    if (this.match(query)) { return this.weight(); }
    return 0;
  }
  def countNodes(): int { return 1; }
}

class XElement extends XNode {
  var children: XNode[];
  var childCount: int;
  def init(tag: int, cap: int) {
    this.tag = tag;
    this.children = new XNode[cap];
    this.childCount = 0;
  }
  def add(node: XNode) {
    this.children[this.childCount] = node;
    this.childCount = this.childCount + 1;
  }
  def match(query: int): bool { return this.tag % 16 == query % 16; }
  def weight(): int { return 2 + this.childCount; }
  def querySubtree(query: int): int {
    var score = 0;
    if (this.match(query)) { score = this.weight(); }
    var i = 0;
    while (i < this.childCount) {
      score = score + this.children[i].querySubtree(query + i);
      i = i + 1;
    }
    return score % 1000003;
  }
  def countNodes(): int {
    var n = 1;
    var i = 0;
    while (i < this.childCount) {
      n = n + this.children[i].countNodes();
      i = i + 1;
    }
    return n;
  }
}

class XText extends XNode {
  var length: int;
  def init(tag: int, length: int) { this.tag = tag; this.length = length; }
  def match(query: int): bool { return this.length > query % 40; }
  def weight(): int { return 1; }
}

class XAttr extends XNode {
  var value: int;
  def init(tag: int, value: int) { this.tag = tag; this.value = value; }
  def match(query: int): bool { return this.value == query % 97; }
  def weight(): int { return 1; }
}

def buildTree(depth: int, fanout: int, tag: int): XElement {
  var node = new XElement(tag, fanout);
  var i = 0;
  while (i < fanout) {
    var childTag = tag * 3 + i + 1;
    if (depth > 1 && i % 2 == 0) {
      node.add(buildTree(depth - 1, fanout, childTag));
    } else {
      if (i % 3 == 1) {
        node.add(new XText(childTag, childTag % 53));
      } else {
        node.add(new XAttr(childTag, childTag % 97));
      }
    }
    i = i + 1;
  }
  return node;
}

def indexScan(index: int[], lo: int, hi: int): int {
  // The persistence layer: a B-tree-ish scan with no calls.
  var sum = 0;
  var i = 0;
  var n = len(index);
  while (i < n) {
    var v = index[i];
    if (v >= lo && v < hi) {
      sum = (sum * 31 + v) % 1000003;
    }
    i = i + 1;
  }
  return sum;
}

def main() {
  var root = buildTree(6, 4, 1);
  var index = new int[2048];
  var i = 0;
  var seed = 321;
  while (i < len(index)) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    index[i] = seed % 10000;
    i = i + 1;
  }
  var total = 0;
  var q = 0;
  while (q < __N__) {
    total = (total + root.querySubtree(q * 13 + 1)) % 1000003;
    total = (total + indexScan(index, q % 2000, q % 2000 + 3000)) % 1000003;
    q = q + 1;
  }
  print(total);
  print(root.countNodes());
}
"""
