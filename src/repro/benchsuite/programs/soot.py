"""``soot`` — modeled on McGill's Soot bytecode analysis framework.

Character: worklist dataflow analysis over a control-flow graph of
basic-block objects: iterative fixpoint computation with virtual
transfer functions, plus graph construction.  Many medium-heat edges
and irregular control flow.
"""

NAME = "soot"

TINY_N = 2
SMALL_N = 14
LARGE_N = 110

SOURCE = """
class Block {
  var id: int;
  var inSet: int;
  var outSet: int;
  var succ1: int;
  var succ2: int;
  def init(id: int, s1: int, s2: int) {
    this.id = id; this.succ1 = s1; this.succ2 = s2;
    this.inSet = 0; this.outSet = 0;
  }
  def transfer(input: int): int {
    // gen/kill as bit arithmetic (bitset of 30 "facts", emulated with mod).
    var gen = (this.id * 2654435761) % 1073741824;
    var kill = (this.id * 40503) % 1024;
    var out = input + gen % 97 - kill % 53;
    if (out < 0) { out = 0 - out; }
    return out % 1048576;
  }
  def merge(a: int, b: int): int {
    // "union" approximated by max + mixing
    if (a > b) { return a + b % 13; }
    return b + a % 13;
  }
}

class BranchBlock extends Block {
  def transfer(input: int): int {
    var gen = (this.id * 97 + input) % 4096;
    return (input + gen) % 1048576;
  }
}

class LoopBlock extends Block {
  def transfer(input: int): int {
    var x = input;
    var k = 0;
    while (k < 6) { x = (x * 3 + this.id) % 1048576; k = k + 1; }
    return x;
  }
}

class Cfg {
  var blocks: Block[];
  var count: int;

  def init(n: int, seed: int) {
    this.blocks = new Block[n];
    this.count = n;
    var i = 0;
    while (i < n) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var s1 = (i + 1) % n;
      var s2 = seed % n;
      var kind = seed % 5;
      if (kind < 2) {
        this.blocks[i] = new Block(i, s1, s2);
      } else {
        if (kind < 4) {
          this.blocks[i] = new BranchBlock(i, s1, s2);
        } else {
          this.blocks[i] = new LoopBlock(i, s1, s2);
        }
      }
      i = i + 1;
    }
  }

  def analyze(maxPasses: int): int {
    // Round-robin worklist until fixpoint or pass budget.
    var changed = true;
    var pass = 0;
    while (changed && pass < maxPasses) {
      changed = false;
      var i = 0;
      while (i < this.count) {
        var block = this.blocks[i];
        var newOut = block.transfer(block.inSet);
        if (newOut != block.outSet) {
          block.outSet = newOut;
          changed = true;
          var t1 = this.blocks[block.succ1];
          var m1 = t1.merge(t1.inSet, newOut);
          if (m1 != t1.inSet) { t1.inSet = m1; }
          var t2 = this.blocks[block.succ2];
          var m2 = t2.merge(t2.inSet, newOut);
          if (m2 != t2.inSet) { t2.inSet = m2; }
        }
        i = i + 1;
      }
      pass = pass + 1;
    }
    var sum = 0;
    var j = 0;
    while (j < this.count) {
      sum = (sum + this.blocks[j].outSet) % 1000003;
      j = j + 1;
    }
    return sum;
  }
}

def main() {
  var total = 0;
  var method = 0;
  while (method < __N__) {
    var cfg = new Cfg(40 + method % 17, method * 611 + 23);
    total = (total + cfg.analyze(12)) % 1000003;
    method = method + 1;
  }
  print(total);
}
"""
