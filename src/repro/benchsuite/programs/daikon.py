"""``daikon`` — modeled on MIT's Daikon dynamic invariant detector.

Character: the widest method population in the suite — a battery of
many small invariant-checker objects each tested against every trace
sample.  Hundreds of light call edges of similar weight: the hardest
case for sparse sampling to cover.
"""

NAME = "daikon"

TINY_N = 40
SMALL_N = 300
LARGE_N = 2400

SOURCE = """
class Invariant {
  var falsified: bool;
  var confirmations: int;
  def check(a: int, b: int): bool { return true; }
  def feed(a: int, b: int) {
    if (this.falsified) { return; }
    if (this.check(a, b)) {
      this.confirmations = this.confirmations + 1;
    } else {
      this.falsified = true;
    }
  }
}

class NonZero extends Invariant {
  def check(a: int, b: int): bool { return a != 0; }
}
class Positive extends Invariant {
  def check(a: int, b: int): bool { return a > 0; }
}
class LessThan extends Invariant {
  def check(a: int, b: int): bool { return a < b; }
}
class LessEq extends Invariant {
  def check(a: int, b: int): bool { return a <= b; }
}
class Equal extends Invariant {
  def check(a: int, b: int): bool { return a == b; }
}
class SumBounded extends Invariant {
  var bound: int;
  def init(bound: int) { this.bound = bound; }
  def check(a: int, b: int): bool { return a + b < this.bound; }
}
class DiffBounded extends Invariant {
  var bound: int;
  def init(bound: int) { this.bound = bound; }
  def check(a: int, b: int): bool {
    var d = a - b;
    if (d < 0) { d = 0 - d; }
    return d < this.bound;
  }
}
class ModEqual extends Invariant {
  var modulus: int;
  def init(m: int) { this.modulus = m; }
  def check(a: int, b: int): bool { return a % this.modulus == b % this.modulus; }
}

class ProgramPoint {
  var invariants: Invariant[];
  var count: int;
  def init(variant: int) {
    this.invariants = new Invariant[8];
    this.count = 8;
    this.invariants[0] = new NonZero();
    this.invariants[1] = new Positive();
    this.invariants[2] = new LessThan();
    this.invariants[3] = new LessEq();
    this.invariants[4] = new Equal();
    this.invariants[5] = new SumBounded(5000 + variant * 100);
    this.invariants[6] = new DiffBounded(300 + variant * 13);
    this.invariants[7] = new ModEqual(2 + variant % 9);
  }
  def sample(a: int, b: int) {
    var i = 0;
    while (i < this.count) {
      this.invariants[i].feed(a, b);
      i = i + 1;
    }
  }
  def alive(): int {
    var n = 0;
    var i = 0;
    while (i < this.count) {
      if (!this.invariants[i].falsified) { n = n + 1; }
      i = i + 1;
    }
    return n;
  }
}

def main() {
  var points = new ProgramPoint[12];
  var i = 0;
  while (i < 12) { points[i] = new ProgramPoint(i); i = i + 1; }
  var seed = 17;
  var sample = 0;
  while (sample < __N__ * 12) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var a = seed % 4000;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var b = seed % 4000;
    points[sample % 12].sample(a, b);
    sample = sample + 1;
  }
  var alive = 0;
  i = 0;
  while (i < 12) { alive = alive + points[i].alive(); i = i + 1; }
  print(alive);
}
"""
