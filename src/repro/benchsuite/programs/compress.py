"""``compress`` — modeled on SPECjvm98 201_compress.

Character: a tight LZW-style compute loop over a byte buffer with very
few method calls — the lowest call density in the suite.  This is the
benchmark where the paper's CBS technique was (surprisingly) *less*
accurate than the timer baseline on the large input: with so few call
edges, both profilers see a tiny population and variance dominates.
"""

NAME = "compress"

#: Iterations of the outer compress/decompress cycle.
TINY_N = 1
SMALL_N = 8
LARGE_N = 64

SOURCE = """
// LZW-ish compressor over a synthetic byte buffer.
class Codec {
  var table: int[];
  var checksum: int;

  def init(size: int) {
    this.table = new int[size];
    var i = 0;
    while (i < size) {
      this.table[i] = (i * 7 + 13) % 256;
      i = i + 1;
    }
    this.checksum = 0;
  }

  def hashByte(b: int, state: int): int {
    return (state * 31 + b) % 65536;
  }

  def compressBlock(data: int[], out: int[]): int {
    // Long stretches of non-call arithmetic; one call per 64 bytes.
    var n = len(data);
    var state = 1;
    var written = 0;
    var i = 0;
    while (i < n) {
      var b = data[i];
      var code = this.table[b % 256];
      state = (state * 33 + code) % 65521;
      var delta = b - code;
      if (delta < 0) { delta = 0 - delta; }
      state = state + delta % 17;
      state = state % 65521;
      if (i % 64 == 0) {
        state = this.hashByte(b, state);
      }
      out[written] = state % 256;
      written = written + 1;
      i = i + 1;
    }
    return written;
  }

  def verify(out: int[], count: int): int {
    var sum = 0;
    var i = 0;
    while (i < count) {
      sum = (sum + out[i]) % 1000000007;
      i = i + 1;
    }
    return sum;
  }
}

def main() {
  var codec = new Codec(256);
  var size = 1200;
  var data = new int[size];
  var out = new int[size];
  var seed = 42;
  var i = 0;
  while (i < size) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = seed % 256;
    i = i + 1;
  }
  var iter = 0;
  var total = 0;
  while (iter < __N__) {
    var written = codec.compressBlock(data, out);
    total = (total + codec.verify(out, written)) % 1000000007;
    iter = iter + 1;
  }
  print(total);
}
"""
