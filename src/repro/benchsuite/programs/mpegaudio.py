"""``mpegaudio`` — modeled on SPECjvm98 222_mpegaudio (audio decoder).

Character: fixed-point signal processing — subband synthesis loops with
long arithmetic stretches punctuated by calls to small math helpers
(saturate, dequantize).  The time/call mismatch is strong: timer samples
land in the filter loops and credit whichever helper runs next.
"""

NAME = "mpegaudio"

TINY_N = 1
SMALL_N = 5
LARGE_N = 36

SOURCE = """
class FixedMath {
  def mul(a: int, b: int): int { return (a * b) / 4096; }
  def saturate(x: int): int {
    if (x > 32767) { return 32767; }
    if (x < 0 - 32768) { return 0 - 32768; }
    return x;
  }
}

class Dequantizer {
  var scale: int;
  def init(scale: int) { this.scale = scale; }
  def dequant(s: int): int { return s * this.scale / 100; }
}

class SubbandFilter {
  var coeffs: int[];
  var window: int[];
  var math: FixedMath;

  def init(taps: int) {
    this.coeffs = new int[taps];
    this.window = new int[taps];
    this.math = new FixedMath();
    var i = 0;
    while (i < taps) {
      this.coeffs[i] = (i * 37 + 11) % 8192 - 4096;
      this.window[i] = 0;
      i = i + 1;
    }
  }

  def filter(sample: int): int {
    var taps = len(this.coeffs);
    // Shift the window: a long non-call stretch.
    var i = taps - 1;
    while (i > 0) {
      this.window[i] = this.window[i - 1];
      i = i - 1;
    }
    this.window[0] = sample;
    // Dot product: another long non-call stretch.
    var acc = 0;
    i = 0;
    while (i < taps) {
      acc = acc + this.window[i] * this.coeffs[i] / 4096;
      i = i + 1;
    }
    return this.math.saturate(acc);
  }
}

class Decoder {
  var filters: SubbandFilter[];
  var dequant: Dequantizer;
  var bands: int;

  def init(bands: int, taps: int) {
    this.bands = bands;
    this.filters = new SubbandFilter[bands];
    this.dequant = new Dequantizer(173);
    var i = 0;
    while (i < bands) {
      this.filters[i] = new SubbandFilter(taps);
      i = i + 1;
    }
  }

  def decodeFrame(seed: int): int {
    var acc = 0;
    var b = 0;
    while (b < this.bands) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var raw = seed % 65536 - 32768;
      var sample = this.dequant.dequant(raw);
      acc = (acc + this.filters[b].filter(sample)) % 1000003;
      if (acc < 0) { acc = acc + 1000003; }
      b = b + 1;
    }
    return acc;
  }
}

def main() {
  var decoder = new Decoder(8, 48);
  var total = 0;
  var frame = 0;
  while (frame < __N__ * 16) {
    total = (total + decoder.decodeFrame(frame * 7 + 3)) % 1000003;
    frame = frame + 1;
  }
  print(total);
}
"""
