"""``jess`` — modeled on SPECjvm98 202_jess (expert system).

Character: a Rete-style network of polymorphic nodes evaluated against a
stream of facts.  Very high call density through small virtual methods
with a skewed distribution over node kinds — classic profile-directed
inlining territory (one of the paper's bigger Jikes RVM wins).
"""

NAME = "jess"

TINY_N = 60
SMALL_N = 900
LARGE_N = 7000

SOURCE = """
// A tiny Rete-flavored rule network: alpha tests feed join nodes which
// feed an agenda.
class Node {
  var activations: int;
  def test(fact: int): bool { return true; }
  def weight(): int { return 1; }
}

class GreaterNode extends Node {
  var bound: int;
  def init(b: int) { this.bound = b; }
  def test(fact: int): bool { return fact > this.bound; }
  def weight(): int { return 2; }
}

class ModNode extends Node {
  var modulus: int;
  var residue: int;
  def init(m: int, r: int) { this.modulus = m; this.residue = r; }
  def test(fact: int): bool { return fact % this.modulus == this.residue; }
  def weight(): int { return 3; }
}

class RangeNode extends Node {
  var lo: int;
  var hi: int;
  def init(lo: int, hi: int) { this.lo = lo; this.hi = hi; }
  def test(fact: int): bool { return fact >= this.lo && fact < this.hi; }
  def weight(): int { return 2; }
}

class Agenda {
  var fired: int;
  var score: int;
  def activate(ruleWeight: int) {
    this.fired = this.fired + 1;
    this.score = (this.score + ruleWeight * 13) % 1000003;
  }
}

class Network {
  var alpha: Node[];
  var count: int;
  var agenda: Agenda;

  def init(n: int) {
    this.alpha = new Node[n];
    this.count = n;
    this.agenda = new Agenda();
    var i = 0;
    while (i < n) {
      var k = i % 7;
      if (k < 3) {
        this.alpha[i] = new ModNode(3 + i % 5, i % 3);
      } else {
        if (k < 6) {
          this.alpha[i] = new GreaterNode(i * 11 % 97);
        } else {
          this.alpha[i] = new RangeNode(i % 50, i % 50 + 25);
        }
      }
      i = i + 1;
    }
  }

  def assert(fact: int) {
    var i = 0;
    while (i < this.count) {
      var node = this.alpha[i];
      if (node.test(fact)) {
        this.agenda.activate(node.weight());
      }
      i = i + 1;
    }
  }
}

def main() {
  var net = new Network(24);
  var seed = 7;
  var round = 0;
  while (round < __N__) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    net.assert(seed % 997);
    round = round + 1;
  }
  print(net.agenda.score);
  print(net.agenda.fired);
}
"""
