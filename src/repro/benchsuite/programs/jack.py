"""``jack`` — modeled on SPECjvm98 228_jack (parser generator).

Character: token-stream processing through a state machine with
callback-style actions; bursty call behavior (long scanning stretches,
then clusters of action calls) that stresses the sampling window.
"""

NAME = "jack"

TINY_N = 2
SMALL_N = 18
LARGE_N = 140

SOURCE = """
class Action {
  var hits: int;
  def apply(tok: int, state: int): int { this.hits = this.hits + 1; return state; }
}

class ShiftAction extends Action {
  def apply(tok: int, state: int): int {
    this.hits = this.hits + 1;
    return (state * 3 + tok) % 64;
  }
}

class ReduceAction extends Action {
  var rule: int;
  def init(rule: int) { this.rule = rule; }
  def apply(tok: int, state: int): int {
    this.hits = this.hits + 1;
    return (state + this.rule * 7) % 64;
  }
}

class AcceptAction extends Action {
  def apply(tok: int, state: int): int {
    this.hits = this.hits + 1;
    return 0;
  }
}

class Grammar {
  var actions: Action[];
  def init() {
    this.actions = new Action[8];
    this.actions[0] = new ShiftAction();
    this.actions[1] = new ShiftAction();
    this.actions[2] = new ShiftAction();
    this.actions[3] = new ShiftAction();
    this.actions[4] = new ReduceAction(3);
    this.actions[5] = new ReduceAction(5);
    this.actions[6] = new ReduceAction(11);
    this.actions[7] = new AcceptAction();
  }
  def dispatch(tok: int, state: int): int {
    var slot = (tok + state) % 8;
    return this.actions[slot].apply(tok, state);
  }
}

class TokenStream {
  var buf: int[];
  var pos: int;
  def init(n: int, seed: int) {
    this.buf = new int[n];
    this.pos = 0;
    var i = 0;
    while (i < n) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      this.buf[i] = seed % 23;
      i = i + 1;
    }
  }
  def next(): int {
    // "Scanning": a non-call stretch skipping whitespace-ish tokens.
    while (this.pos < len(this.buf) && this.buf[this.pos] % 5 == 0) {
      this.pos = this.pos + 1;
    }
    if (this.pos >= len(this.buf)) { return 0 - 1; }
    var t = this.buf[this.pos];
    this.pos = this.pos + 1;
    return t;
  }
}

def parseDocument(grammar: Grammar, docSeed: int): int {
  var stream = new TokenStream(320, docSeed);
  var state = 1;
  var tok = stream.next();
  while (tok >= 0) {
    state = grammar.dispatch(tok, state);
    // inter-token "semantic" work without calls
    var w = 0;
    var k = 0;
    while (k < 7) { w = (w * 2 + tok + k) % 8191; k = k + 1; }
    state = (state + w) % 64;
    tok = stream.next();
  }
  return state;
}

def main() {
  var grammar = new Grammar();
  var total = 0;
  var doc = 0;
  while (doc < __N__) {
    total = (total + parseDocument(grammar, doc * 97 + 5)) % 1000003;
    doc = doc + 1;
  }
  print(total);
}
"""
