"""``kawa`` — modeled on the Kawa Scheme-on-JVM system.

Character: a tree-walking Scheme-ish evaluator: deeply recursive
``eval`` over polymorphic expression nodes with an environment chain —
very high virtual-call density and deep stacks (good exercise for the
stack-walking sampler).
"""

NAME = "kawa"

TINY_N = 25
SMALL_N = 200
LARGE_N = 1500

SOURCE = """
class Env {
  var name: int;
  var value: int;
  var parent: Env;
  def init(name: int, value: int, parent: Env) {
    this.name = name; this.value = value; this.parent = parent;
  }
  def lookup(name: int): int {
    var e = this;
    while (e.name != name) {
      if (e.parent == null) { return 0; }
      e = e.parent;
    }
    return e.value;
  }
}

class SExpr {
  def eval(env: Env): int { return 0; }
  def depth(): int { return 1; }
}

class Lit extends SExpr {
  var value: int;
  def init(v: int) { this.value = v; }
  def eval(env: Env): int { return this.value; }
}

class Ref extends SExpr {
  var name: int;
  def init(name: int) { this.name = name; }
  def eval(env: Env): int { return env.lookup(this.name); }
}

class Add extends SExpr {
  var a: SExpr;
  var b: SExpr;
  def init(a: SExpr, b: SExpr) { this.a = a; this.b = b; }
  def eval(env: Env): int { return this.a.eval(env) + this.b.eval(env); }
  def depth(): int {
    var da = this.a.depth();
    var db = this.b.depth();
    if (da > db) { return da + 1; }
    return db + 1;
  }
}

class Mul extends SExpr {
  var a: SExpr;
  var b: SExpr;
  def init(a: SExpr, b: SExpr) { this.a = a; this.b = b; }
  def eval(env: Env): int { return this.a.eval(env) * this.b.eval(env) % 65521; }
  def depth(): int {
    var da = this.a.depth();
    var db = this.b.depth();
    if (da > db) { return da + 1; }
    return db + 1;
  }
}

class IfExpr extends SExpr {
  var cond: SExpr;
  var thenE: SExpr;
  var elseE: SExpr;
  def init(c: SExpr, t: SExpr, e: SExpr) {
    this.cond = c; this.thenE = t; this.elseE = e;
  }
  def eval(env: Env): int {
    if (this.cond.eval(env) % 2 == 1) { return this.thenE.eval(env); }
    return this.elseE.eval(env);
  }
  def depth(): int { return this.cond.depth() + 1; }
}

class LetExpr extends SExpr {
  var name: int;
  var binding: SExpr;
  var body: SExpr;
  def init(name: int, binding: SExpr, body: SExpr) {
    this.name = name; this.binding = binding; this.body = body;
  }
  def eval(env: Env): int {
    var bound = this.binding.eval(env);
    return this.body.eval(new Env(this.name, bound, env));
  }
  def depth(): int { return this.body.depth() + 1; }
}

def genExpr(seed: int, depth: int): SExpr {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  var r = seed % 100;
  if (depth <= 0 || r < 25) {
    if (r % 2 == 0) { return new Lit(seed % 1000); }
    return new Ref(seed % 8);
  }
  if (r < 50) {
    return new Add(genExpr(seed + 1, depth - 1), genExpr(seed + 2, depth - 1));
  }
  if (r < 72) {
    return new Mul(genExpr(seed + 3, depth - 1), genExpr(seed + 4, depth - 1));
  }
  if (r < 88) {
    return new IfExpr(
      genExpr(seed + 5, depth - 2),
      genExpr(seed + 6, depth - 1),
      genExpr(seed + 7, depth - 1));
  }
  return new LetExpr(seed % 8, genExpr(seed + 8, depth - 2), genExpr(seed + 9, depth - 1));
}

def main() {
  var globalEnv = new Env(0, 42, null);
  var i = 1;
  while (i < 8) {
    globalEnv = new Env(i, i * 111, globalEnv);
    i = i + 1;
  }
  var total = 0;
  var round = 0;
  while (round < __N__) {
    var expr = genExpr(round * 53 + 11, 7);
    var k = 0;
    while (k < 6) {
      total = (total + expr.eval(globalEnv)) % 1000003;
      k = k + 1;
    }
    total = (total + expr.depth()) % 1000003;
    round = round + 1;
  }
  print(total);
}
"""
