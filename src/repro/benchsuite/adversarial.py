"""The paper's Figure 1 adversary, as a runnable benchmark.

A loop whose body is a long sequence of non-call instructions followed
by two calls to short methods.  Timer-based sampling attributes almost
all samples to ``call_1`` (the first prologue executed after the flag is
set) and starves ``call_2``; the true edge weights are exactly 50/50.
"""

NAME = "adversarial"

TINY_N = 4000
SMALL_N = 40000
LARGE_N = 300000

SOURCE = """
class Worker {
  var acc: int;

  // Short-running but non-trivial bodies (they must survive the
  // baseline's trivial-inlining pass to remain profilable call edges).
  def call_1(): int { return this.acc % 7 + 1; }
  def call_2(): int { return this.acc % 5 + 2; }

  def m(n: int) {
    var i = 0;
    while (i < n) {
      // Long sequence of non-call instructions (the paper used a run of
      // getfields and putfields; the choice is arbitrary).
      var x = this.acc;
      var y = x + 1;
      var z = y * 2;
      x = z - y; y = x * 3; z = y + x; x = z - 1; y = x + z; z = x + y;
      x = z - y; y = x * 3; z = y + x; x = z - 1; y = x + z; z = x + y;
      x = z - y; y = x * 3; z = y + x; x = z - 1; y = x + z; z = x + y;
      x = z - y; y = x * 3; z = y + x; x = z - 1; y = x + z; z = x + y;
      this.acc = z % 65521;
      // Two short calls.
      this.acc = this.acc + this.call_1() + this.call_2();
      i = i + 1;
    }
  }
}

def main() {
  var w = new Worker();
  w.m(__N__);
  print(w.acc);
}
"""
