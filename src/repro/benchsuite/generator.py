"""Random Mini program generator.

Produces synthetic call-graph workloads with controllable shape — class
count, methods per class, call fan-out, compute-to-call ratio, and edge
weight skew — used by the property-based tests and the parameter-space
ablation benchmarks.  Programs are guaranteed to terminate (the call
structure is a DAG over generated methods) and to type check.
"""

from __future__ import annotations

import random

from repro.bytecode.program import Program
from repro.frontend.codegen import compile_source


class GeneratorConfig:
    """Knobs for synthetic workload generation."""

    def __init__(
        self,
        num_classes: int = 4,
        methods_per_class: int = 4,
        max_calls_per_method: int = 3,
        compute_per_method: int = 6,
        loop_iterations: int = 3000,
        polymorphic_arrays: bool = True,
        seed: int = 1,
    ):
        if num_classes < 1 or methods_per_class < 1:
            raise ValueError("need at least one class and one method")
        self.num_classes = num_classes
        self.methods_per_class = methods_per_class
        self.max_calls_per_method = max_calls_per_method
        self.compute_per_method = compute_per_method
        self.loop_iterations = loop_iterations
        self.polymorphic_arrays = polymorphic_arrays
        self.seed = seed


def generate_source(config: GeneratorConfig) -> str:
    """Generate Mini source text for a random terminating workload."""
    rng = random.Random(config.seed)
    lines: list[str] = []

    # Classes form a chain: C0 is the root, each Ci+1 extends Ci and
    # overrides a subset of methods.  Method bodies may call lower-
    # numbered methods of the same object (DAG => termination).
    method_count = config.methods_per_class
    for class_index in range(config.num_classes):
        name = f"C{class_index}"
        extends = f" extends C{class_index - 1}" if class_index > 0 else ""
        lines.append(f"class {name}{extends} {{")
        if class_index == 0:
            lines.append("  var state: int;")
        method_indices = (
            range(method_count)
            if class_index == 0
            else sorted(rng.sample(range(method_count), max(1, method_count // 2)))
        )
        for method_index in method_indices:
            lines.extend(
                _method_body(rng, config, class_index, method_index)
            )
        lines.append("}")

    lines.append(_main_body(rng, config))
    return "\n".join(lines)


def _method_body(
    rng: random.Random, config: GeneratorConfig, class_index: int, method_index: int
) -> list[str]:
    lines = [f"  def m{method_index}(x: int): int {{"]
    lines.append(f"    var acc = x + {class_index + 1};")
    for k in range(rng.randint(1, config.compute_per_method)):
        op = rng.choice(["+", "*", "-"])
        lines.append(f"    acc = (acc {op} {rng.randint(1, 97)}) % 65521;")
    if method_index > 0:
        num_calls = rng.randint(0, config.max_calls_per_method)
        for _ in range(num_calls):
            callee = rng.randint(0, method_index - 1)
            lines.append(f"    acc = (acc + this.m{callee}(acc % 512)) % 65521;")
    lines.append("    if (acc < 0) { acc = 0 - acc; }")
    lines.append("    return acc;")
    lines.append("  }")
    return lines


def _main_body(rng: random.Random, config: GeneratorConfig) -> str:
    top_method = config.methods_per_class - 1
    lines = ["def main() {"]
    if config.polymorphic_arrays and config.num_classes > 1:
        lines.append(f"  var objs = new C0[{config.num_classes}];")
        for i in range(config.num_classes):
            # Skewed receiver distribution: earlier classes more common.
            cls = min(int(rng.random() ** 2 * config.num_classes), config.num_classes - 1)
            lines.append(f"  objs[{i}] = new C{cls}();")
        receiver = f"objs[i % {config.num_classes}]"
    else:
        lines.append("  var obj = new C0();")
        receiver = "obj"
    lines.append("  var total = 0;")
    lines.append(f"  for (var i = 0; i < {config.loop_iterations}; i = i + 1) {{")
    lines.append(f"    total = (total + {receiver}.m{top_method}(i)) % 1000003;")
    lines.append("  }")
    lines.append("  print(total);")
    lines.append("}")
    return "\n".join(lines)


def generate_program(config: GeneratorConfig) -> Program:
    """Generate and compile a random workload program."""
    return compile_source(generate_source(config), filename=f"<generated:{config.seed}>")
