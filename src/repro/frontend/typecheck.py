"""Type checker for the Mini language.

Walks the AST, resolving names and annotating every expression with its
``inferred_type``.  The code generator relies on those annotations (field
offsets and selectors need static receiver types), so type checking is a
mandatory pass, not an optional lint.

Rules of note:

* Field access always goes through an explicit receiver (``this.x``);
  bare names are locals/parameters only.
* ``new C(args)`` requires class ``C`` to declare or inherit a method
  ``init`` with matching arity returning ``void``; with no ``init`` the
  argument list must be empty.
* Value-returning functions must return on all control-flow paths.
* Builtins: ``print(int|bool): void`` and ``len(T[]): int``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as ast
from repro.lang.errors import TypeError_
from repro.frontend.hierarchy import build_class_table
from repro.frontend.symbols import (
    ClassTable,
    FunctionTable,
    MethodSig,
    Scope,
    assignable,
    check_type_exists,
)

_ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
_COMPARE_OPS = frozenset({"<", "<=", ">", ">="})
_EQUALITY_OPS = frozenset({"==", "!="})
_LOGICAL_OPS = frozenset({"&&", "||"})

BUILTIN_NAMES = frozenset({"print", "len"})


@dataclass
class CheckedProgram:
    """The result of type checking: the AST plus resolved symbol tables."""

    ast: ast.Program
    classes: ClassTable
    functions: FunctionTable


def typecheck(program: ast.Program) -> CheckedProgram:
    """Type check ``program``; returns symbol tables for code generation."""
    classes = build_class_table(program)
    functions = _collect_functions(program, classes)
    checker = _Checker(classes, functions)

    for function in program.functions:
        checker.check_callable(function.params, function.return_type, function.body,
                               this_class=None, location=function.location)
    for class_decl in program.classes:
        for method in class_decl.methods:
            if method.name == "init" and method.return_type != ast.VOID:
                raise TypeError_(
                    f"constructor {class_decl.name}.init must return void",
                    method.location,
                )
            checker.check_callable(
                method.params,
                method.return_type,
                method.body,
                this_class=class_decl.name,
                location=method.location,
            )
    if "main" not in functions:
        raise TypeError_("program has no top-level main() function")
    main_sig = functions.get("main")
    if main_sig.argc != 0:
        raise TypeError_("main() must take no parameters")
    return CheckedProgram(ast=program, classes=classes, functions=functions)


def _collect_functions(program: ast.Program, classes: ClassTable) -> FunctionTable:
    table = FunctionTable()
    for function in program.functions:
        if function.name in BUILTIN_NAMES:
            raise TypeError_(
                f"function name {function.name!r} shadows a builtin", function.location
            )
        if function.name in classes:
            raise TypeError_(
                f"function name {function.name!r} collides with a class",
                function.location,
            )
        for param in function.params:
            check_type_exists(param.type, classes, param.location)
        check_type_exists(function.return_type, classes, function.location)
        table.add(
            MethodSig(
                name=function.name,
                param_types=tuple(p.type for p in function.params),
                return_type=function.return_type,
            ),
            function.location,
        )
    for class_decl in program.classes:
        for field_decl in class_decl.fields:
            check_type_exists(field_decl.type, classes, field_decl.location)
        for method in class_decl.methods:
            for param in method.params:
                check_type_exists(param.type, classes, param.location)
            check_type_exists(method.return_type, classes, method.location)
    return table


def definitely_returns(body: list[ast.Stmt]) -> bool:
    """Conservative all-paths-return analysis."""
    for stmt in body:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, ast.If):
            if (
                stmt.else_body
                and definitely_returns(stmt.then_body)
                and definitely_returns(stmt.else_body)
            ):
                return True
        if isinstance(stmt, ast.Block) and definitely_returns(stmt.body):
            return True
        if isinstance(stmt, ast.While) and isinstance(stmt.condition, ast.BoolLiteral):
            if stmt.condition.value:
                # ``while (true)`` without break never falls through.
                return True
    return False


class _Checker:
    """Stateful walker; one instance checks a whole program."""

    def __init__(self, classes: ClassTable, functions: FunctionTable):
        self._classes = classes
        self._functions = functions
        self._return_type: ast.TypeExpr = ast.VOID
        self._this_class: str | None = None
        self._next_slot = 0

    # -- declarations ---------------------------------------------------------

    def check_callable(
        self,
        params: list[ast.Param],
        return_type: ast.TypeExpr,
        body: list[ast.Stmt],
        this_class: str | None,
        location,
    ) -> None:
        self._return_type = return_type
        self._this_class = this_class
        scope = Scope()
        self._next_slot = 1 if this_class is not None else 0
        seen: set[str] = set()
        for param in params:
            if param.name in seen:
                raise TypeError_(f"duplicate parameter {param.name!r}", param.location)
            seen.add(param.name)
            scope.declare(param.name, self._next_slot, param.type, param.location)
            self._next_slot += 1
        self._check_body(body, scope)
        if return_type != ast.VOID and not definitely_returns(body):
            raise TypeError_(
                "value-returning function may fall off the end without a return",
                location,
            )

    # -- statements -------------------------------------------------------------

    def _check_body(self, body: list[ast.Stmt], scope: Scope) -> None:
        for stmt in body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            value_type = self._check_expr(stmt.initializer, scope)
            if stmt.declared_type is not None:
                check_type_exists(stmt.declared_type, self._classes, stmt.location)
                if not assignable(stmt.declared_type, value_type, self._classes):
                    raise TypeError_(
                        f"cannot initialize {stmt.declared_type} variable "
                        f"{stmt.name!r} with {value_type}",
                        stmt.location,
                    )
                var_type = stmt.declared_type
            else:
                if isinstance(value_type, ast.NullType):
                    raise TypeError_(
                        f"cannot infer a type for {stmt.name!r} from null; "
                        f"annotate the declaration",
                        stmt.location,
                    )
                var_type = value_type
            scope.declare(stmt.name, self._next_slot, var_type, stmt.location)
            stmt.declared_type = var_type  # record the resolved type for codegen
            self._next_slot += 1
        elif isinstance(stmt, ast.Assign):
            target_type = self._check_assign_target(stmt.target, scope)
            value_type = self._check_expr(stmt.value, scope)
            if not assignable(target_type, value_type, self._classes):
                raise TypeError_(
                    f"cannot assign {value_type} to {target_type}", stmt.location
                )
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._require(stmt.condition, ast.BOOL, scope, "if condition")
            self._check_body(stmt.then_body, scope.child())
            self._check_body(stmt.else_body, scope.child())
        elif isinstance(stmt, ast.While):
            self._require(stmt.condition, ast.BOOL, scope, "while condition")
            self._check_body(stmt.body, scope.child())
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if self._return_type != ast.VOID:
                    raise TypeError_(
                        f"missing return value (expected {self._return_type})",
                        stmt.location,
                    )
            else:
                if self._return_type == ast.VOID:
                    raise TypeError_("void function returns a value", stmt.location)
                value_type = self._check_expr(stmt.value, scope)
                if not assignable(self._return_type, value_type, self._classes):
                    raise TypeError_(
                        f"cannot return {value_type} from a function returning "
                        f"{self._return_type}",
                        stmt.location,
                    )
        elif isinstance(stmt, ast.Block):
            self._check_body(stmt.body, scope.child())
        else:  # pragma: no cover - parser produces no other statement kinds
            raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.location)

    def _check_assign_target(self, target: ast.Expr, scope: Scope) -> ast.TypeExpr:
        if isinstance(target, ast.NameExpr):
            binding = scope.lookup(target.name)
            if binding is None:
                raise TypeError_(
                    f"assignment to undeclared variable {target.name!r} "
                    f"(fields need an explicit receiver: this.{target.name})",
                    target.location,
                )
            target.inferred_type = binding[1]
            return binding[1]
        if isinstance(target, (ast.FieldAccess, ast.IndexExpr)):
            return self._check_expr(target, scope)
        raise TypeError_("invalid assignment target", target.location)

    # -- expressions --------------------------------------------------------------

    def _require(
        self, expr: ast.Expr, expected: ast.TypeExpr, scope: Scope, what: str
    ) -> None:
        actual = self._check_expr(expr, scope)
        if actual != expected:
            raise TypeError_(f"{what} must be {expected}, found {actual}", expr.location)

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> ast.TypeExpr:
        result = self._infer(expr, scope)
        expr.inferred_type = result
        return result

    def _infer(self, expr: ast.Expr, scope: Scope) -> ast.TypeExpr:
        if isinstance(expr, ast.IntLiteral):
            return ast.INT
        if isinstance(expr, ast.BoolLiteral):
            return ast.BOOL
        if isinstance(expr, ast.NullLiteral):
            return ast.NULL
        if isinstance(expr, ast.ThisExpr):
            if self._this_class is None:
                raise TypeError_("'this' outside a method", expr.location)
            return ast.ClassType(self._this_class)
        if isinstance(expr, ast.NameExpr):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise TypeError_(
                    f"undeclared variable {expr.name!r} (fields need an explicit "
                    f"receiver: this.{expr.name})",
                    expr.location,
                )
            return binding[1]
        if isinstance(expr, ast.FieldAccess):
            return self._infer_field(expr, scope)
        if isinstance(expr, ast.IndexExpr):
            array_type = self._check_expr(expr.array, scope)
            if not isinstance(array_type, ast.ArrayType):
                raise TypeError_(f"cannot index into {array_type}", expr.location)
            self._require(expr.index, ast.INT, scope, "array index")
            return array_type.element
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                self._require(expr.operand, ast.INT, scope, "operand of unary '-'")
                return ast.INT
            self._require(expr.operand, ast.BOOL, scope, "operand of '!'")
            return ast.BOOL
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.CallExpr):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.MethodCall):
            return self._infer_method_call(expr, scope)
        if isinstance(expr, ast.NewObject):
            return self._infer_new(expr, scope)
        if isinstance(expr, ast.NewArray):
            check_type_exists(expr.element_type, self._classes, expr.location)
            self._require(expr.length, ast.INT, scope, "array length")
            return ast.ArrayType(expr.element_type)
        raise TypeError_(  # pragma: no cover
            f"unknown expression {type(expr).__name__}", expr.location
        )

    def _infer_field(self, expr: ast.FieldAccess, scope: Scope) -> ast.TypeExpr:
        receiver_type = self._check_expr(expr.receiver, scope)
        if not isinstance(receiver_type, ast.ClassType):
            raise TypeError_(
                f"cannot access field {expr.field_name!r} on {receiver_type}",
                expr.location,
            )
        symbol = self._classes.require(receiver_type.name, expr.location)
        field_type = symbol.all_fields.get(expr.field_name)
        if field_type is None:
            raise TypeError_(
                f"class {receiver_type.name!r} has no field {expr.field_name!r}",
                expr.location,
            )
        return field_type

    def _infer_binary(self, expr: ast.BinaryOp, scope: Scope) -> ast.TypeExpr:
        if expr.op in _ARITH_OPS:
            self._require(expr.left, ast.INT, scope, f"left operand of {expr.op!r}")
            self._require(expr.right, ast.INT, scope, f"right operand of {expr.op!r}")
            return ast.INT
        if expr.op in _COMPARE_OPS:
            self._require(expr.left, ast.INT, scope, f"left operand of {expr.op!r}")
            self._require(expr.right, ast.INT, scope, f"right operand of {expr.op!r}")
            return ast.BOOL
        if expr.op in _LOGICAL_OPS:
            self._require(expr.left, ast.BOOL, scope, f"left operand of {expr.op!r}")
            self._require(expr.right, ast.BOOL, scope, f"right operand of {expr.op!r}")
            return ast.BOOL
        if expr.op in _EQUALITY_OPS:
            left = self._check_expr(expr.left, scope)
            right = self._check_expr(expr.right, scope)
            comparable = (
                assignable(left, right, self._classes)
                or assignable(right, left, self._classes)
            )
            if not comparable:
                raise TypeError_(
                    f"cannot compare {left} with {right}", expr.location
                )
            return ast.BOOL
        raise TypeError_(f"unknown operator {expr.op!r}", expr.location)

    def _infer_call(self, expr: ast.CallExpr, scope: Scope) -> ast.TypeExpr:
        if expr.name == "print":
            if len(expr.args) != 1:
                raise TypeError_("print() takes exactly one argument", expr.location)
            arg_type = self._check_expr(expr.args[0], scope)
            if arg_type not in (ast.INT, ast.BOOL):
                raise TypeError_(f"cannot print {arg_type}", expr.location)
            return ast.VOID
        if expr.name == "len":
            if len(expr.args) != 1:
                raise TypeError_("len() takes exactly one argument", expr.location)
            arg_type = self._check_expr(expr.args[0], scope)
            if not isinstance(arg_type, ast.ArrayType):
                raise TypeError_(f"len() needs an array, found {arg_type}", expr.location)
            return ast.INT
        sig = self._functions.get(expr.name)
        if sig is None:
            raise TypeError_(f"unknown function {expr.name!r}", expr.location)
        self._check_args(sig, expr.args, scope, expr.location)
        return sig.return_type

    def _infer_method_call(self, expr: ast.MethodCall, scope: Scope) -> ast.TypeExpr:
        receiver_type = self._check_expr(expr.receiver, scope)
        if not isinstance(receiver_type, ast.ClassType):
            raise TypeError_(
                f"cannot call method {expr.method_name!r} on {receiver_type}",
                expr.location,
            )
        symbol = self._classes.require(receiver_type.name, expr.location)
        sig = symbol.all_methods.get((expr.method_name, len(expr.args)))
        if sig is None:
            raise TypeError_(
                f"class {receiver_type.name!r} has no method "
                f"{expr.method_name!r}/{len(expr.args)}",
                expr.location,
            )
        self._check_args(sig, expr.args, scope, expr.location)
        return sig.return_type

    def _infer_new(self, expr: ast.NewObject, scope: Scope) -> ast.TypeExpr:
        symbol = self._classes.require(expr.class_name, expr.location)
        init_sig = symbol.all_methods.get(("init", len(expr.args)))
        if init_sig is not None:
            self._check_args(init_sig, expr.args, scope, expr.location)
        elif expr.args:
            raise TypeError_(
                f"class {expr.class_name!r} has no init/{len(expr.args)} constructor",
                expr.location,
            )
        return ast.ClassType(expr.class_name)

    def _check_args(
        self, sig: MethodSig, args: list[ast.Expr], scope: Scope, location
    ) -> None:
        if len(args) != sig.argc:
            raise TypeError_(
                f"{sig.name}() takes {sig.argc} argument(s), got {len(args)}", location
            )
        for i, (arg, expected) in enumerate(zip(args, sig.param_types)):
            actual = self._check_expr(arg, scope)
            if not assignable(expected, actual, self._classes):
                raise TypeError_(
                    f"argument {i + 1} of {sig.name}(): expected {expected}, "
                    f"found {actual}",
                    arg.location,
                )
