"""Code generator: checked Mini AST → VM bytecode.

Invariants established here (and re-checked by the bytecode verifier):

* Classes are registered superclass-first; ``Program.build_vtables`` runs
  before bodies are generated, so field offsets and selector ids are
  available during emission.
* Call convention: receiver (for methods) then arguments are pushed
  left-to-right; the callee sees them in locals ``0..argc``.
* Every function ends with an explicit return epilogue, so control can
  never fall off the end even when the all-paths-return analysis was
  conservative; the epilogue is unreachable in well-typed code and is
  removed by the optimizer's dead-code pass at higher opt levels.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import ClassInfo, Program
from repro.bytecode.verifier import verify_program
from repro.lang import ast_nodes as ast
from repro.lang.errors import TypeError_
from repro.lang.parser import parse
from repro.frontend.typecheck import CheckedProgram, typecheck


def compile_program(checked: CheckedProgram) -> Program:
    """Generate a verified :class:`Program` from a type-checked AST."""
    generator = _CodeGenerator(checked)
    program = generator.generate()
    verify_program(program)
    return program


def compile_source(source: str, filename: str = "<string>") -> Program:
    """Front-to-back convenience: parse, typecheck, and compile ``source``."""
    return compile_program(typecheck(parse(source, filename)))


class _CodeGenerator:
    def __init__(self, checked: CheckedProgram):
        self._checked = checked
        self._program = Program()
        self._class_decl_by_name = {c.name: c for c in checked.ast.classes}

    # -- program-level orchestration ------------------------------------------

    def generate(self) -> Program:
        # 1. Register classes in superclass-first order with own fields.
        for name in self._checked.classes.order:
            decl = self._class_decl_by_name[name]
            self._program.add_class(
                ClassInfo(
                    name=decl.name,
                    super_name=decl.superclass,
                    field_layout=[f.name for f in decl.fields],
                    field_default_by_name={
                        f.name: (
                            None
                            if isinstance(f.type, (ast.ClassType, ast.ArrayType))
                            else 0
                        )
                        for f in decl.fields
                    },
                )
            )

        # 2. Register all functions and methods (bodies come later).
        pending: list[tuple[FunctionInfo, list[ast.Param], list[ast.Stmt], str | None]] = []
        for function in self._checked.ast.functions:
            info = FunctionInfo(
                name=function.name,
                code=[],
                num_params=len(function.params),
                num_locals=0,
                kind="static",
                returns_value=function.return_type != ast.VOID,
                local_names=[p.name for p in function.params],
            )
            self._program.add_function(info)
            pending.append((info, function.params, function.body, None))
        for name in self._checked.classes.order:
            decl = self._class_decl_by_name[name]
            for method in decl.methods:
                info = FunctionInfo(
                    name=method.name,
                    code=[],
                    num_params=len(method.params) + 1,
                    num_locals=0,
                    kind="method",
                    owner=decl.name,
                    returns_value=method.return_type != ast.VOID,
                    local_names=["this"] + [p.name for p in method.params],
                )
                index = self._program.add_function(info)
                self._program.class_named(decl.name).declared_methods.append(index)

        # 3. Layouts + vtables, so bodies can resolve offsets and selectors.
        self._program.build_vtables()

        # 4. Generate bodies.
        for info, params, body, _ in pending:
            _FunctionEmitter(self, info, params, body, this_class=None).emit()
        for name in self._checked.classes.order:
            decl = self._class_decl_by_name[name]
            for method in decl.methods:
                info = self._program.function_named(f"{decl.name}.{method.name}")
                _FunctionEmitter(
                    self, info, method.params, method.body, this_class=decl.name
                ).emit()
        return self._program

    # -- lookups used by emitters -----------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    def field_offset(self, class_name: str, field_name: str) -> int:
        return self._program.class_named(class_name).field_offsets[field_name]

    def static_function_index(self, name: str) -> int:
        return self._program.function_index(name)

    def selector(self, name: str, argc: int) -> int:
        return self._program.selector_id(name, argc)

    def has_init(self, class_name: str, argc: int) -> bool:
        symbol = self._checked.classes.require(class_name)
        return ("init", argc) in symbol.all_methods


class _FunctionEmitter:
    """Emits bytecode for a single function or method body."""

    def __init__(
        self,
        generator: _CodeGenerator,
        info: FunctionInfo,
        params: list[ast.Param],
        body: list[ast.Stmt],
        this_class: str | None,
    ):
        self._gen = generator
        self._info = info
        self._body = body
        self._code: list[Instr] = []
        self._slots: dict[str, int] = {}
        self._scope_stack: list[list[str]] = [[]]
        self._next_slot = 0
        if this_class is not None:
            self._declare("this")
        for param in params:
            self._declare(param.name)

    # -- slot / scope management --------------------------------------------------

    def _declare(self, name: str) -> int:
        slot = self._next_slot
        self._slots[name] = slot
        self._scope_stack[-1].append(name)
        self._next_slot += 1
        return slot

    def _push_scope(self) -> None:
        self._scope_stack.append([])

    def _pop_scope(self) -> None:
        # Shadowed bindings are impossible (the typechecker rejects
        # redeclaration in nested scopes only if same scope; for nested
        # shadowing we keep unique slots and restore nothing because Mini's
        # typechecker forbids duplicate names per scope chain lookup order).
        for name in self._scope_stack.pop():
            del self._slots[name]

    # -- emission helpers ----------------------------------------------------------

    def _emit(self, op: Op, a: int | None = None, b: int | None = None) -> int:
        self._code.append(Instr(op, a, b))
        return len(self._code) - 1

    def _here(self) -> int:
        return len(self._code)

    def _patch(self, pc: int, target: int) -> None:
        self._code[pc].a = target

    # -- entry point ------------------------------------------------------------------

    def emit(self) -> None:
        for stmt in self._body:
            self._stmt(stmt)
        # Safety epilogue; unreachable in well-typed value-returning code.
        if self._info.returns_value:
            self._emit(Op.PUSH, 0)
            self._emit(Op.RETURN_VAL)
        else:
            self._emit(Op.RETURN)
        self._info.code = self._code
        self._info.num_locals = max(self._next_slot, self._info.num_params)

    # -- statements ----------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._expr(stmt.initializer)
            slot = self._declare(stmt.name)
            self._emit(Op.STORE, slot)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
            if stmt.expr.inferred_type != ast.VOID:
                self._emit(Op.POP)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit(Op.RETURN)
            else:
                self._expr(stmt.value)
                self._emit(Op.RETURN_VAL)
        elif isinstance(stmt, ast.Block):
            self._push_scope()
            for inner in stmt.body:
                self._stmt(inner)
            self._pop_scope()
        else:  # pragma: no cover
            raise TypeError_(f"cannot generate {type(stmt).__name__}", stmt.location)

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.NameExpr):
            self._expr(stmt.value)
            self._emit(Op.STORE, self._slots[target.name])
        elif isinstance(target, ast.FieldAccess):
            self._expr(target.receiver)
            self._expr(stmt.value)
            receiver_type = target.receiver.inferred_type
            assert isinstance(receiver_type, ast.ClassType)
            offset = self._gen.field_offset(receiver_type.name, target.field_name)
            self._emit(Op.PUTFIELD, offset)
        elif isinstance(target, ast.IndexExpr):
            self._expr(target.array)
            self._expr(target.index)
            self._expr(stmt.value)
            self._emit(Op.ASTORE)
        else:  # pragma: no cover
            raise TypeError_("invalid assignment target", stmt.location)

    def _if(self, stmt: ast.If) -> None:
        self._expr(stmt.condition)
        jump_to_else = self._emit(Op.JUMP_IF_FALSE)
        self._push_scope()
        for inner in stmt.then_body:
            self._stmt(inner)
        self._pop_scope()
        if stmt.else_body:
            jump_to_end = self._emit(Op.JUMP)
            self._patch(jump_to_else, self._here())
            self._push_scope()
            for inner in stmt.else_body:
                self._stmt(inner)
            self._pop_scope()
            self._patch(jump_to_end, self._here())
        else:
            self._patch(jump_to_else, self._here())

    def _while(self, stmt: ast.While) -> None:
        loop_start = self._here()
        self._expr(stmt.condition)
        jump_out = self._emit(Op.JUMP_IF_FALSE)
        self._push_scope()
        for inner in stmt.body:
            self._stmt(inner)
        self._pop_scope()
        self._emit(Op.JUMP, loop_start)  # the backedge
        self._patch(jump_out, self._here())

    # -- expressions -----------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            self._emit(Op.PUSH, expr.value)
        elif isinstance(expr, ast.BoolLiteral):
            self._emit(Op.PUSH, 1 if expr.value else 0)
        elif isinstance(expr, ast.NullLiteral):
            self._emit(Op.PUSH_NULL)
        elif isinstance(expr, ast.ThisExpr):
            self._emit(Op.LOAD, 0)
        elif isinstance(expr, ast.NameExpr):
            self._emit(Op.LOAD, self._slots[expr.name])
        elif isinstance(expr, ast.FieldAccess):
            self._expr(expr.receiver)
            receiver_type = expr.receiver.inferred_type
            assert isinstance(receiver_type, ast.ClassType)
            offset = self._gen.field_offset(receiver_type.name, expr.field_name)
            self._emit(Op.GETFIELD, offset)
        elif isinstance(expr, ast.IndexExpr):
            self._expr(expr.array)
            self._expr(expr.index)
            self._emit(Op.ALOAD)
        elif isinstance(expr, ast.UnaryOp):
            self._expr(expr.operand)
            self._emit(Op.NEG if expr.op == "-" else Op.NOT)
        elif isinstance(expr, ast.BinaryOp):
            self._binary(expr)
        elif isinstance(expr, ast.CallExpr):
            self._call(expr)
        elif isinstance(expr, ast.MethodCall):
            self._expr(expr.receiver)
            for arg in expr.args:
                self._expr(arg)
            sid = self._gen.selector(expr.method_name, len(expr.args))
            self._emit(Op.CALL_VIRTUAL, sid, len(expr.args))
        elif isinstance(expr, ast.NewObject):
            self._new_object(expr)
        elif isinstance(expr, ast.NewArray):
            self._expr(expr.length)
            self._emit(Op.NEW_ARRAY)
        else:  # pragma: no cover
            raise TypeError_(f"cannot generate {type(expr).__name__}", expr.location)

    _BINARY_OPS = {
        "+": Op.ADD,
        "-": Op.SUB,
        "*": Op.MUL,
        "/": Op.DIV,
        "%": Op.MOD,
        "<": Op.LT,
        "<=": Op.LE,
        ">": Op.GT,
        ">=": Op.GE,
        "==": Op.EQ,
        "!=": Op.NE,
    }

    def _binary(self, expr: ast.BinaryOp) -> None:
        if expr.op == "&&":
            self._expr(expr.left)
            self._emit(Op.DUP)
            short = self._emit(Op.JUMP_IF_FALSE)
            self._emit(Op.POP)
            self._expr(expr.right)
            self._patch(short, self._here())
            return
        if expr.op == "||":
            self._expr(expr.left)
            self._emit(Op.DUP)
            short = self._emit(Op.JUMP_IF_TRUE)
            self._emit(Op.POP)
            self._expr(expr.right)
            self._patch(short, self._here())
            return
        self._expr(expr.left)
        self._expr(expr.right)
        self._emit(self._BINARY_OPS[expr.op])

    def _call(self, expr: ast.CallExpr) -> None:
        if expr.name == "print":
            self._expr(expr.args[0])
            self._emit(Op.PRINT)
            return
        if expr.name == "len":
            self._expr(expr.args[0])
            self._emit(Op.ARRAY_LEN)
            return
        for arg in expr.args:
            self._expr(arg)
        index = self._gen.static_function_index(expr.name)
        self._emit(Op.CALL_STATIC, index, len(expr.args))

    def _new_object(self, expr: ast.NewObject) -> None:
        class_index = self._gen.program.class_named(expr.class_name).index
        self._emit(Op.NEW, class_index)
        if self._gen.has_init(expr.class_name, len(expr.args)):
            self._emit(Op.DUP)
            for arg in expr.args:
                self._expr(arg)
            sid = self._gen.selector("init", len(expr.args))
            self._emit(Op.CALL_VIRTUAL, sid, len(expr.args))
