"""Semantic analysis and code generation for Mini."""

from repro.frontend.codegen import compile_program, compile_source
from repro.frontend.hierarchy import build_class_table
from repro.frontend.symbols import ClassTable, FunctionTable, MethodSig, Scope
from repro.frontend.typecheck import CheckedProgram, typecheck

__all__ = [
    "CheckedProgram",
    "ClassTable",
    "FunctionTable",
    "MethodSig",
    "Scope",
    "build_class_table",
    "compile_program",
    "compile_source",
    "typecheck",
]
