"""Class-hierarchy analysis: builds the :class:`ClassTable` from the AST.

Responsibilities:

* detect duplicate classes, inheritance cycles, unknown superclasses,
* topologically sort classes superclass-first (required for vtable and
  field-layout construction downstream),
* compute inherited member tables,
* check field shadowing (rejected) and override signature compatibility.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import TypeError_
from repro.frontend.symbols import ClassSymbol, ClassTable, MethodSig


def build_class_table(program: ast.Program) -> ClassTable:
    """Analyze ``program``'s classes, returning a populated table."""
    decls: dict[str, ast.ClassDecl] = {}
    for decl in program.classes:
        if decl.name in decls:
            raise TypeError_(f"duplicate class {decl.name!r}", decl.location)
        decls[decl.name] = decl

    order = _topo_sort(decls)
    table = ClassTable()
    for name in order:
        table.add(_analyze_class(decls[name], table))
    return table


def _topo_sort(decls: dict[str, ast.ClassDecl]) -> list[str]:
    """Order classes so superclasses precede subclasses; detect cycles."""
    color: dict[str, int] = {}  # 0 unvisited / 1 visiting / 2 done
    order: list[str] = []

    def visit(name: str) -> None:
        state = color.get(name, 0)
        if state == 2:
            return
        if state == 1:
            raise TypeError_(f"inheritance cycle involving class {name!r}")
        color[name] = 1
        decl = decls[name]
        if decl.superclass is not None:
            if decl.superclass not in decls:
                raise TypeError_(
                    f"class {name!r} extends unknown class {decl.superclass!r}",
                    decl.location,
                )
            visit(decl.superclass)
        color[name] = 2
        order.append(name)

    for name in decls:
        visit(name)
    return order


def _analyze_class(decl: ast.ClassDecl, table: ClassTable) -> ClassSymbol:
    symbol = ClassSymbol(name=decl.name, superclass=decl.superclass, decl=decl)

    super_symbol = None
    if decl.superclass is not None:
        super_symbol = table.require(decl.superclass, decl.location)
        symbol.all_fields.update(super_symbol.all_fields)
        symbol.all_methods.update(super_symbol.all_methods)

    for field_decl in decl.fields:
        if field_decl.name in symbol.own_fields:
            raise TypeError_(
                f"duplicate field {field_decl.name!r} in class {decl.name!r}",
                field_decl.location,
            )
        if field_decl.name in symbol.all_fields:
            raise TypeError_(
                f"field {field_decl.name!r} in class {decl.name!r} shadows an "
                f"inherited field",
                field_decl.location,
            )
        symbol.own_fields[field_decl.name] = field_decl.type
        symbol.all_fields[field_decl.name] = field_decl.type

    for method in decl.methods:
        key = (method.name, len(method.params))
        if key in symbol.own_methods:
            raise TypeError_(
                f"duplicate method {method.name!r}/{len(method.params)} in class "
                f"{decl.name!r}",
                method.location,
            )
        sig = MethodSig(
            name=method.name,
            param_types=tuple(p.type for p in method.params),
            return_type=method.return_type,
            owner=decl.name,
        )
        inherited = symbol.all_methods.get(key)
        if inherited is not None and not sig.same_shape(inherited):
            raise TypeError_(
                f"method {decl.name}.{method.name} overrides "
                f"{inherited.owner}.{inherited.name} with an incompatible signature",
                method.location,
            )
        symbol.own_methods[key] = sig
        symbol.all_methods[key] = sig

    return symbol
