"""Symbol tables and semantic type helpers for the Mini frontend.

Semantic types reuse the syntactic :mod:`repro.lang.ast_nodes` type
expressions (they are frozen dataclasses with structural equality), so no
separate type universe is needed; this module supplies assignability and
lookup on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast
from repro.lang.errors import SourceLocation, TypeError_


@dataclass(frozen=True)
class MethodSig:
    """Signature of a method or function."""

    name: str
    param_types: tuple[ast.TypeExpr, ...]
    return_type: ast.TypeExpr
    owner: str | None = None  # declaring class, None for top-level functions

    @property
    def argc(self) -> int:
        return len(self.param_types)

    def same_shape(self, other: "MethodSig") -> bool:
        """True when parameter and return types match (override check)."""
        return (
            self.param_types == other.param_types
            and self.return_type == other.return_type
        )


@dataclass
class ClassSymbol:
    """Semantic information about one class, including inherited members."""

    name: str
    superclass: str | None
    decl: ast.ClassDecl
    #: name -> type, own fields only.
    own_fields: dict[str, ast.TypeExpr] = field(default_factory=dict)
    #: name -> type, including inherited fields.
    all_fields: dict[str, ast.TypeExpr] = field(default_factory=dict)
    #: (name, argc) -> signature, own methods only.
    own_methods: dict[tuple[str, int], MethodSig] = field(default_factory=dict)
    #: (name, argc) -> signature, including inherited methods.
    all_methods: dict[tuple[str, int], MethodSig] = field(default_factory=dict)


class ClassTable:
    """All classes in a program, in superclass-first topological order."""

    def __init__(self) -> None:
        self._classes: dict[str, ClassSymbol] = {}
        self.order: list[str] = []

    def add(self, symbol: ClassSymbol) -> None:
        self._classes[symbol.name] = symbol
        self.order.append(symbol.name)

    def get(self, name: str) -> ClassSymbol | None:
        return self._classes.get(name)

    def require(self, name: str, location: SourceLocation | None = None) -> ClassSymbol:
        symbol = self._classes.get(name)
        if symbol is None:
            raise TypeError_(f"unknown class {name!r}", location)
        return symbol

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self):
        return (self._classes[name] for name in self.order)

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """True when ``name`` is ``ancestor`` or a (transitive) subclass."""
        current: str | None = name
        while current is not None:
            if current == ancestor:
                return True
            current = self._classes[current].superclass
        return False


class FunctionTable:
    """Top-level (static) function signatures by name."""

    def __init__(self) -> None:
        self._functions: dict[str, MethodSig] = {}

    def add(self, sig: MethodSig, location: SourceLocation | None = None) -> None:
        if sig.name in self._functions:
            raise TypeError_(f"duplicate function {sig.name!r}", location)
        self._functions[sig.name] = sig

    def get(self, name: str) -> MethodSig | None:
        return self._functions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._functions


class Scope:
    """A lexical scope mapping local variable names to (slot, type)."""

    def __init__(self, parent: "Scope | None" = None):
        self._parent = parent
        self._bindings: dict[str, tuple[int, ast.TypeExpr]] = {}

    def declare(
        self, name: str, slot: int, type_: ast.TypeExpr, location: SourceLocation
    ) -> None:
        if name in self._bindings:
            raise TypeError_(f"variable {name!r} already declared in this scope", location)
        self._bindings[name] = (slot, type_)

    def lookup(self, name: str) -> tuple[int, ast.TypeExpr] | None:
        scope: Scope | None = self
        while scope is not None:
            binding = scope._bindings.get(name)
            if binding is not None:
                return binding
            scope = scope._parent
        return None

    def child(self) -> "Scope":
        return Scope(self)


def is_reference(type_: ast.TypeExpr) -> bool:
    """Class, array, and null types are references (nullable)."""
    return isinstance(type_, (ast.ClassType, ast.ArrayType, ast.NullType))


def assignable(target: ast.TypeExpr, value: ast.TypeExpr, classes: ClassTable) -> bool:
    """Is a value of type ``value`` assignable to a slot of type ``target``?"""
    if target == value:
        return True
    if isinstance(value, ast.NullType):
        return is_reference(target)
    if isinstance(target, ast.ClassType) and isinstance(value, ast.ClassType):
        return classes.is_subclass(value.name, target.name)
    return False


def check_type_exists(
    type_: ast.TypeExpr, classes: ClassTable, location: SourceLocation
) -> None:
    """Reject type expressions naming unknown classes."""
    if isinstance(type_, ast.ClassType):
        classes.require(type_.name, location)
    elif isinstance(type_, ast.ArrayType):
        check_type_exists(type_.element, classes, location)
