"""Function (method) containers for compiled Mini code."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import CALL_OPS, OPCODE_SIZE, Op


@dataclass
class FunctionInfo:
    """A compiled function or method.

    ``num_params`` counts the receiver for methods (slot 0 is ``this``).
    ``num_locals`` is the total local-slot count including parameters.
    """

    name: str
    code: list[Instr]
    num_params: int
    num_locals: int
    kind: str = "static"  # "static" | "method"
    owner: str | None = None  # declaring class name for methods
    index: int = -1  # position in Program.functions, set on registration
    returns_value: bool = True

    #: Names of parameters/locals for disassembly; optional.
    local_names: list[str] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        """``Class.method`` for methods, plain name for functions."""
        if self.owner is not None:
            return f"{self.owner}.{self.name}"
        return self.name

    @property
    def selector(self) -> tuple[str, int]:
        """Dispatch selector: method name and explicit-argument count."""
        return (self.name, self.num_params - (1 if self.kind == "method" else 0))

    def bytecode_size(self) -> int:
        """Abstract encoded size in bytes (input to inlining heuristics)."""
        return sum(OPCODE_SIZE[instr.op] for instr in self.code)

    def call_sites(self) -> list[int]:
        """Bytecode indices of all call instructions in this function."""
        return [pc for pc, instr in enumerate(self.code) if instr.op in CALL_OPS]

    def copy_code(self) -> list[Instr]:
        """A deep copy of the instruction list (for optimizer rewrites)."""
        return [instr.copy() for instr in self.code]

    def __repr__(self) -> str:
        return (
            f"FunctionInfo({self.qualified_name}/{self.num_params}, "
            f"{len(self.code)} instrs)"
        )


def make_trivial_return_zero(name: str) -> FunctionInfo:
    """A helper used by tests: a static function returning the constant 0."""
    return FunctionInfo(
        name=name,
        code=[Instr(Op.PUSH, 0), Instr(Op.RETURN_VAL)],
        num_params=0,
        num_locals=0,
    )
