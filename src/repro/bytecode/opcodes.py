"""The Mini VM instruction set, as declarative per-opcode specs.

The VM is a classic stack machine in the JVM mould.  Opcode operands are
held in the :class:`~repro.bytecode.instr.Instr` record, not encoded in a
byte stream; the "size in bytes" of a method used by size-based inlining
heuristics is derived from :data:`OPCODE_SIZE` below.

Every structural fact about an opcode lives in exactly one place: its
:class:`OpSpec` row in :data:`OPCODE_SPECS`.  The spec declares the
stack effect (pops/pushes), the abstract encoded size, the semantic
*kind* that drives code generation, the fault modes (exception class,
message, and the counter-sync obligation every raise site carries), the
fusability and inline-cache quickening class, and where the step-limit
budget must bind.  Consumers:

* the interpreter's dispatch loop is *generated* from these specs
  (:mod:`repro.vm.dispatchgen` writes :mod:`repro.vm._dispatch`),
* the verifier derives its pop counts and stack effects here instead of
  keeping a second hand-written table,
* the template JIT derives its depth-analysis effects here,
* the superinstruction fuser checks its patterns against ``fusable``,
* the disassembler's ``--spec`` view prints the rows next to the
  stream, and the fuzzer's spec-conformance cell replays programs on a
  reference executor built from nothing but this table.

Editing a handler without editing the spec (or vice versa) is caught by
the ``spec-smoke`` CI job (regeneration must be a no-op) and by the
differential fuzz matrix (observable behavior must stay bit-identical).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.IntEnum):
    """Every opcode executed by the interpreter."""

    # Constants and stack shuffling
    PUSH = 1          # a = int immediate
    PUSH_NULL = 2
    POP = 3
    DUP = 4

    # Locals
    LOAD = 10         # a = slot
    STORE = 11        # a = slot

    # Integer arithmetic
    ADD = 20
    SUB = 21
    MUL = 22
    DIV = 23
    MOD = 24
    NEG = 25

    # Boolean / comparison
    NOT = 30
    LT = 31
    LE = 32
    GT = 33
    GE = 34
    EQ = 35
    NE = 36

    # Control flow (a = target pc)
    JUMP = 40
    JUMP_IF_FALSE = 41
    JUMP_IF_TRUE = 42

    # Calls and returns
    CALL_STATIC = 50  # a = function index, b = argc
    CALL_VIRTUAL = 51  # a = selector id, b = argc (receiver below args)
    RETURN = 52
    RETURN_VAL = 53

    # Objects
    NEW = 60          # a = class id
    GETFIELD = 61     # a = field offset
    PUTFIELD = 62     # a = field offset
    IS_EXACT = 63     # a = class id; pops object, pushes bool (inline guard)
    GUARD_METHOD = 64  # a = selector id, b = expected function index;
    #                    pops receiver, pushes bool (method-test guard)

    # Arrays
    NEW_ARRAY = 70
    ALOAD = 71
    ASTORE = 72
    ARRAY_LEN = 73

    # Misc
    PRINT = 80
    NOP = 81


#: Loop-local counters every fault raise site must write back to the VM
#: before the error propagates, so the failure transcript is exact (the
#: error-parity invariant the differential fuzzer gates).  ``frame.pc``
#: rides along with them.  This is *the* single statement of the
#: invariant: the generated dispatch loop funnels every fault through
#: ``Interpreter._fault`` / ``Interpreter._step_limit``, which sync
#: exactly this set.
FAULT_SYNCED_COUNTERS = (
    "time",
    "steps",
    "call_count",
    "fused_dispatches",
    "fusion_deopts",
    "frame.pc",
)


@dataclass(frozen=True)
class FaultSpec:
    """One way an opcode can raise a guest fault.

    ``pc_offset`` only matters inside superinstructions: it names which
    component (by offset from the group head) the fault is attributed
    to, so a fused fault carries the same pc as the raw run's.  Every
    fault site syncs :data:`FAULT_SYNCED_COUNTERS` — there are no
    partial-sync fault modes.
    """

    kind: str     # "null" | "div_zero" | "bounds" | "negative_length"
    #             # | "stack_overflow" | "missing_selector"
    error: str    # exception class name in repro.vm.errors
    message: str  # literal message, or a template for dynamic messages


@dataclass(frozen=True)
class OpSpec:
    """Everything the toolchain knows about one opcode."""

    op: Op
    #: Abstract encoded size in bytes (inlining heuristics input).
    size: int
    #: Operand-stack slots consumed / produced.  ``None`` when the
    #: count depends on the instruction's operands (calls).
    pops: int | None
    pushes: int | None
    #: Semantic family driving dispatch-arm generation (see
    #: repro.vm.dispatchgen for the family templates).
    kind: str
    #: Family parameter: the operator for binop/cmp kinds, the flavor
    #: for divmod/branch/call/return kinds.
    arg: str | None = None
    #: Guest fault modes, in the order the handler checks them.
    faults: tuple = ()
    #: May appear as a superinstruction component (fuse._PATTERNS is
    #: checked against this at import time).
    fusable: bool = False
    #: Inline-cache quickening class: the interpreter rewrites the
    #: site's ``fops`` slot to the matching IC opcode.
    quicken: str | None = None  # "call_virtual" | "call_static" | "return"
    #: Where the instruction-budget check must bind even when no timer
    #: fires: "backward" (taken backward branch) or "call".
    step_limit: str | None = None
    #: Yieldpoint site class in the Jikes scheme.
    yieldpoint: str | None = None  # "backedge" | "prologue" | "epilogue"
    #: Extra virtual-time charge computed at run time (expression over
    #: the handler's locals), e.g. allocation cost scaling with length.
    dyn_cost: str | None = None


_NULL = FaultSpec("null", "NullPointerError", "")
_BOUNDS = FaultSpec(
    "bounds", "ArrayBoundsError", "index {index} out of bounds (len={length})"
)


def _null(message: str) -> FaultSpec:
    return FaultSpec("null", "NullPointerError", message)


#: The instruction set, one row per opcode.  Order is the enum order;
#: dispatch-arm ordering (hot ops first) is a generator concern, not a
#: spec concern (see repro.vm.dispatchgen.DISPATCH_ORDER).
OPCODE_SPECS: tuple[OpSpec, ...] = (
    OpSpec(Op.PUSH, 2, 0, 1, "push_const", fusable=True),
    OpSpec(Op.PUSH_NULL, 1, 0, 1, "push_null"),
    OpSpec(Op.POP, 1, 1, 0, "pop"),
    OpSpec(Op.DUP, 1, 1, 2, "dup"),
    OpSpec(Op.LOAD, 2, 0, 1, "load", fusable=True),
    OpSpec(Op.STORE, 2, 1, 0, "store", fusable=True),
    OpSpec(Op.ADD, 1, 2, 1, "binop", "+", fusable=True),
    OpSpec(Op.SUB, 1, 2, 1, "binop", "-", fusable=True),
    OpSpec(Op.MUL, 1, 2, 1, "binop", "*", fusable=True),
    OpSpec(
        Op.DIV, 1, 2, 1, "divmod", "div",
        faults=(FaultSpec("div_zero", "DivisionByZeroError", "division by zero"),),
    ),
    OpSpec(
        Op.MOD, 1, 2, 1, "divmod", "mod",
        faults=(FaultSpec("div_zero", "DivisionByZeroError", "division by zero"),),
        fusable=True,
    ),
    OpSpec(Op.NEG, 1, 1, 1, "neg"),
    OpSpec(Op.NOT, 1, 1, 1, "not"),
    OpSpec(Op.LT, 1, 2, 1, "cmp", "<", fusable=True),
    OpSpec(Op.LE, 1, 2, 1, "cmp", "<=", fusable=True),
    OpSpec(Op.GT, 1, 2, 1, "cmp", ">", fusable=True),
    OpSpec(Op.GE, 1, 2, 1, "cmp", ">=", fusable=True),
    OpSpec(Op.EQ, 1, 2, 1, "eqcmp", "==", fusable=True),
    OpSpec(Op.NE, 1, 2, 1, "eqcmp", "!=", fusable=True),
    OpSpec(
        Op.JUMP, 3, 0, 0, "jump",
        step_limit="backward", yieldpoint="backedge",
    ),
    OpSpec(
        Op.JUMP_IF_FALSE, 3, 1, 0, "branch", "false",
        step_limit="backward", fusable=True,
    ),
    OpSpec(Op.JUMP_IF_TRUE, 3, 1, 0, "branch", "true", step_limit="backward"),
    OpSpec(
        Op.CALL_STATIC, 3, None, None, "call", "static",
        faults=(
            FaultSpec(
                "stack_overflow",
                "StackOverflowError_",
                "guest stack exceeded {max_frames} frames",
            ),
        ),
        quicken="call_static", step_limit="call", yieldpoint="prologue",
    ),
    OpSpec(
        Op.CALL_VIRTUAL, 3, None, None, "call", "virtual",
        faults=(
            _null("virtual call on null"),
            FaultSpec(
                "missing_selector",
                "VMError",
                "class {cls!r} does not understand {name}/{argc}",
            ),
            FaultSpec(
                "stack_overflow",
                "StackOverflowError_",
                "guest stack exceeded {max_frames} frames",
            ),
        ),
        quicken="call_virtual", step_limit="call", yieldpoint="prologue",
    ),
    OpSpec(Op.RETURN, 1, 0, 0, "return", "void", quicken="return",
           yieldpoint="epilogue"),
    OpSpec(Op.RETURN_VAL, 1, 1, 0, "return", "value", quicken="return",
           yieldpoint="epilogue", fusable=True),
    OpSpec(Op.NEW, 3, 0, 1, "new"),
    OpSpec(Op.GETFIELD, 3, 1, 1, "getfield",
           faults=(_null("field read on null"),), fusable=True),
    OpSpec(Op.PUTFIELD, 3, 2, 0, "putfield",
           faults=(_null("field write on null"),)),
    OpSpec(Op.IS_EXACT, 3, 1, 1, "is_exact"),
    OpSpec(Op.GUARD_METHOD, 4, 1, 1, "guard_method"),
    OpSpec(
        Op.NEW_ARRAY, 1, 1, 1, "new_array",
        faults=(FaultSpec("negative_length", "VMError", "negative array length"),),
        dyn_cost="length",  # allocation cost scales with the array size
    ),
    OpSpec(
        Op.ALOAD, 1, 2, 1, "aload",
        faults=(_null("array read on null"), _BOUNDS),
    ),
    OpSpec(
        Op.ASTORE, 1, 3, 0, "astore",
        faults=(_null("array write on null"), _BOUNDS),
    ),
    OpSpec(Op.ARRAY_LEN, 1, 1, 1, "array_len",
           faults=(_null("len() of null"),)),
    OpSpec(Op.PRINT, 1, 1, 0, "print"),
    OpSpec(Op.NOP, 1, 0, 0, "nop"),
)

#: op -> its spec row (also accepts plain ints).
SPEC_BY_OP: dict[Op, OpSpec] = {spec.op: spec for spec in OPCODE_SPECS}

if len(SPEC_BY_OP) != len(list(Op)):  # pragma: no cover - table typo
    _missing = set(Op) - set(SPEC_BY_OP)
    raise AssertionError(f"opcodes without specs: {sorted(_missing)}")


def spec_of(op) -> OpSpec:
    """The spec row for ``op`` (an :class:`Op` or a plain int)."""
    return SPEC_BY_OP[Op(op)]


# -- derived tables (the legacy exported names; all spec-computed) ------------

#: Branching opcodes whose ``a`` operand is a bytecode index.
JUMP_OPS = frozenset(
    spec.op for spec in OPCODE_SPECS if spec.kind in ("jump", "branch")
)


def jump_targets(code) -> set[int]:
    """The set of pcs that are targets of some jump in ``code``.

    Shared by the optimizer passes (which must not rewrite across basic-
    block boundaries) and the superinstruction fuser (which must not fuse
    a group whose interior a jump could land in).
    """
    return {instr.a for instr in code if instr.op in JUMP_OPS}


#: Opcodes that unconditionally transfer control away (no fall-through).
TERMINATOR_OPS = frozenset(
    spec.op
    for spec in OPCODE_SPECS
    if spec.kind in ("jump", "return")
)

#: Call opcodes (the DCG profilers care about these).
CALL_OPS = frozenset(spec.op for spec in OPCODE_SPECS if spec.kind == "call")

#: Abstract encoded size of each opcode in bytes, used for the "method
#: size" input to inlining heuristics (operand-carrying ops cost more,
#: mirroring JVM bytecode widths).
OPCODE_SIZE: dict[Op, int] = {spec.op: spec.size for spec in OPCODE_SPECS}

#: Net operand-stack effect of each opcode, ``None`` when it depends on
#: the operands (calls) — the verifier special-cases those.
STACK_EFFECT: dict[Op, int | None] = {
    spec.op: (
        None if spec.pops is None else spec.pushes - spec.pops
    )
    for spec in OPCODE_SPECS
}

#: Operand-stack slots each opcode consumes before pushing its results;
#: ``None`` for calls (argc-dependent).  The verifier's "depth never
#: negative" check reads this.
POPS: dict[Op, int | None] = {spec.op: spec.pops for spec in OPCODE_SPECS}

#: Opcodes the superinstruction fuser may use as group components.
FUSABLE_OPS = frozenset(spec.op for spec in OPCODE_SPECS if spec.fusable)
