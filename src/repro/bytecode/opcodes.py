"""The Mini VM instruction set.

The VM is a classic stack machine in the JVM mould.  Opcode operands are
held in the :class:`~repro.bytecode.instr.Instr` record, not encoded in a
byte stream; the "size in bytes" of a method used by size-based inlining
heuristics is derived from :data:`OPCODE_SIZE` below.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Every opcode executed by the interpreter."""

    # Constants and stack shuffling
    PUSH = 1          # a = int immediate
    PUSH_NULL = 2
    POP = 3
    DUP = 4

    # Locals
    LOAD = 10         # a = slot
    STORE = 11        # a = slot

    # Integer arithmetic
    ADD = 20
    SUB = 21
    MUL = 22
    DIV = 23
    MOD = 24
    NEG = 25

    # Boolean / comparison
    NOT = 30
    LT = 31
    LE = 32
    GT = 33
    GE = 34
    EQ = 35
    NE = 36

    # Control flow (a = target pc)
    JUMP = 40
    JUMP_IF_FALSE = 41
    JUMP_IF_TRUE = 42

    # Calls and returns
    CALL_STATIC = 50  # a = function index, b = argc
    CALL_VIRTUAL = 51  # a = selector id, b = argc (receiver below args)
    RETURN = 52
    RETURN_VAL = 53

    # Objects
    NEW = 60          # a = class id
    GETFIELD = 61     # a = field offset
    PUTFIELD = 62     # a = field offset
    IS_EXACT = 63     # a = class id; pops object, pushes bool (inline guard)
    GUARD_METHOD = 64  # a = selector id, b = expected function index;
    #                    pops receiver, pushes bool (method-test guard)

    # Arrays
    NEW_ARRAY = 70
    ALOAD = 71
    ASTORE = 72
    ARRAY_LEN = 73

    # Misc
    PRINT = 80
    NOP = 81


#: Branching opcodes whose ``a`` operand is a bytecode index.
JUMP_OPS = frozenset({Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE})


def jump_targets(code) -> set[int]:
    """The set of pcs that are targets of some jump in ``code``.

    Shared by the optimizer passes (which must not rewrite across basic-
    block boundaries) and the superinstruction fuser (which must not fuse
    a group whose interior a jump could land in).
    """
    return {instr.a for instr in code if instr.op in JUMP_OPS}

#: Opcodes that unconditionally transfer control away (no fall-through).
TERMINATOR_OPS = frozenset({Op.JUMP, Op.RETURN, Op.RETURN_VAL})

#: Call opcodes (the DCG profilers care about these).
CALL_OPS = frozenset({Op.CALL_STATIC, Op.CALL_VIRTUAL})

#: Abstract encoded size of each opcode in bytes, used for the "method
#: size" input to inlining heuristics (operand-carrying ops cost more,
#: mirroring JVM bytecode widths).
OPCODE_SIZE: dict[Op, int] = {
    Op.PUSH: 2,
    Op.PUSH_NULL: 1,
    Op.POP: 1,
    Op.DUP: 1,
    Op.LOAD: 2,
    Op.STORE: 2,
    Op.ADD: 1,
    Op.SUB: 1,
    Op.MUL: 1,
    Op.DIV: 1,
    Op.MOD: 1,
    Op.NEG: 1,
    Op.NOT: 1,
    Op.LT: 1,
    Op.LE: 1,
    Op.GT: 1,
    Op.GE: 1,
    Op.EQ: 1,
    Op.NE: 1,
    Op.JUMP: 3,
    Op.JUMP_IF_FALSE: 3,
    Op.JUMP_IF_TRUE: 3,
    Op.CALL_STATIC: 3,
    Op.CALL_VIRTUAL: 3,
    Op.RETURN: 1,
    Op.RETURN_VAL: 1,
    Op.NEW: 3,
    Op.GETFIELD: 3,
    Op.PUTFIELD: 3,
    Op.IS_EXACT: 3,
    Op.GUARD_METHOD: 4,
    Op.NEW_ARRAY: 1,
    Op.ALOAD: 1,
    Op.ASTORE: 1,
    Op.ARRAY_LEN: 1,
    Op.PRINT: 1,
    Op.NOP: 1,
}

#: Net operand-stack effect of each opcode, ``None`` when it depends on
#: the operands (calls) — the verifier special-cases those.
STACK_EFFECT: dict[Op, int | None] = {
    Op.PUSH: 1,
    Op.PUSH_NULL: 1,
    Op.POP: -1,
    Op.DUP: 1,
    Op.LOAD: 1,
    Op.STORE: -1,
    Op.ADD: -1,
    Op.SUB: -1,
    Op.MUL: -1,
    Op.DIV: -1,
    Op.MOD: -1,
    Op.NEG: 0,
    Op.NOT: 0,
    Op.LT: -1,
    Op.LE: -1,
    Op.GT: -1,
    Op.GE: -1,
    Op.EQ: -1,
    Op.NE: -1,
    Op.JUMP: 0,
    Op.JUMP_IF_FALSE: -1,
    Op.JUMP_IF_TRUE: -1,
    Op.CALL_STATIC: None,
    Op.CALL_VIRTUAL: None,
    Op.RETURN: 0,
    Op.RETURN_VAL: -1,
    Op.NEW: 1,
    Op.GETFIELD: 0,
    Op.PUTFIELD: -2,
    Op.IS_EXACT: 0,
    Op.GUARD_METHOD: 0,
    Op.NEW_ARRAY: 0,
    Op.ALOAD: -1,
    Op.ASTORE: -3,
    Op.ARRAY_LEN: 0,
    Op.PRINT: -1,
    Op.NOP: 0,
}
