"""Disassembler: renders a :class:`Program` back to assembler text.

Output round-trips through :func:`repro.bytecode.assembler.assemble` for
programs whose field offsets can be expressed symbolically; numeric
operands are used otherwise.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, Op
from repro.bytecode.program import Program


def disassemble_function(function: FunctionInfo, program: Program | None = None) -> str:
    """Render one function as assembler text."""
    targets = sorted(
        {instr.a for instr in function.code if instr.op in JUMP_OPS}
    )
    label_names = {pc: f"L{i}" for i, pc in enumerate(targets)}

    keyword = "method" if function.kind == "method" else "func"
    header = f"{keyword} {function.qualified_name}/{function.num_params}"
    header += f" locals={function.num_locals}"
    if not function.returns_value:
        header += " void"

    lines = [header]
    for pc, instr in enumerate(function.code):
        if pc in label_names:
            lines.append(f"label {label_names[pc]}")
        lines.append("  " + _render_instr(instr, label_names, program))
    # A label may point one past the last instruction (e.g. a loop exit
    # that was trimmed); emit it so jumps stay resolvable.
    end = len(function.code)
    if end in label_names:
        lines.append(f"label {label_names[end]}")
        lines.append("  NOP")
    lines.append("end")
    return "\n".join(lines)


def _render_instr(
    instr: Instr, label_names: dict[int, str], program: Program | None
) -> str:
    op = instr.op
    if op in JUMP_OPS:
        return f"{op.name} {label_names[instr.a]}"
    if op is Op.CALL_STATIC:
        if program is not None:
            callee = program.functions[instr.a]
            return f"{op.name} {callee.qualified_name} {instr.b}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.CALL_VIRTUAL:
        if program is not None:
            name, argc = program.selectors[instr.a]
            return f"{op.name} {name} {argc}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.GUARD_METHOD:
        if program is not None:
            name, argc = program.selectors[instr.a]
            expected = program.functions[instr.b].qualified_name
            return f"{op.name} {name} {argc} {expected}"
        return f"{op.name} {instr.a} {instr.b}"
    if op in (Op.NEW, Op.IS_EXACT):
        if program is not None:
            return f"{op.name} {program.classes[instr.a].name}"
        return f"{op.name} {instr.a}"
    parts = [op.name]
    if instr.a is not None:
        parts.append(str(instr.a))
    if instr.b is not None:
        parts.append(str(instr.b))
    return " ".join(parts)


def disassemble(program: Program) -> str:
    """Render a whole program as assembler text."""
    lines: list[str] = []
    for cls in program.classes:
        line = f"class {cls.name}"
        if cls.super_name is not None:
            line += f" extends {cls.super_name}"
        own_fields = cls.field_layout
        if cls.super_name is not None:
            inherited = program.class_named(cls.super_name).field_layout
            own_fields = cls.field_layout[len(inherited):]
        if own_fields:
            line += " fields " + " ".join(own_fields)
        lines.append(line)
    if program.classes:
        lines.append("")
    for function in program.functions:
        lines.append(disassemble_function(function, program))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
