"""Disassembler: renders a :class:`Program` back to assembler text.

Output round-trips through :func:`repro.bytecode.assembler.assemble` for
programs whose field offsets can be expressed symbolically; numeric
operands are used otherwise.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, Op
from repro.bytecode.program import Program


def disassemble_function(function: FunctionInfo, program: Program | None = None) -> str:
    """Render one function as assembler text."""
    targets = sorted(
        {instr.a for instr in function.code if instr.op in JUMP_OPS}
    )
    label_names = {pc: f"L{i}" for i, pc in enumerate(targets)}

    keyword = "method" if function.kind == "method" else "func"
    header = f"{keyword} {function.qualified_name}/{function.num_params}"
    header += f" locals={function.num_locals}"
    if not function.returns_value:
        header += " void"

    lines = [header]
    for pc, instr in enumerate(function.code):
        if pc in label_names:
            lines.append(f"label {label_names[pc]}")
        lines.append("  " + _render_instr(instr, label_names, program))
    # A label may point one past the last instruction (e.g. a loop exit
    # that was trimmed); emit it so jumps stay resolvable.
    end = len(function.code)
    if end in label_names:
        lines.append(f"label {label_names[end]}")
        lines.append("  NOP")
    lines.append("end")
    return "\n".join(lines)


def _render_instr(
    instr: Instr, label_names: dict[int, str], program: Program | None
) -> str:
    op = instr.op
    if op in JUMP_OPS:
        return f"{op.name} {label_names[instr.a]}"
    if op is Op.CALL_STATIC:
        if program is not None:
            callee = program.functions[instr.a]
            return f"{op.name} {callee.qualified_name} {instr.b}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.CALL_VIRTUAL:
        if program is not None:
            name, argc = program.selectors[instr.a]
            return f"{op.name} {name} {argc}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.GUARD_METHOD:
        if program is not None:
            name, argc = program.selectors[instr.a]
            expected = program.functions[instr.b].qualified_name
            return f"{op.name} {name} {argc} {expected}"
        return f"{op.name} {instr.a} {instr.b}"
    if op in (Op.NEW, Op.IS_EXACT):
        if program is not None:
            return f"{op.name} {program.classes[instr.a].name}"
        return f"{op.name} {instr.a}"
    parts = [op.name]
    if instr.a is not None:
        parts.append(str(instr.a))
    if instr.b is not None:
        parts.append(str(instr.b))
    return " ".join(parts)


def disassemble_fused(program: Program) -> str:
    """Render every method's *quickened* instruction stream.

    Shows what the interpreter actually dispatches after superinstruction
    fusion: group heads print the fused name with their covered span and
    summed cost, interior slots are elided.  Debugging aid for the fusion
    pass (``repro-mini disasm --fused``); not assembler round-trippable.
    """
    # Imported lazily: the vm layer sits above bytecode, and this view
    # is a debugging aid, not part of the assembler round-trip.
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm.fuse import FUSE_BASE, FUSED_ARITY, FUSED_NAMES
    from repro.vm.runtime import CompiledMethod

    cost_model = jikes_cost_model()
    lines: list[str] = []
    total_sites = 0
    total_span = 0
    total_instrs = 0
    for function in program.functions:
        # ic=False: this view shows the fusion rewrite alone; inline-cache
        # quickening is lazy (per-run) and rendered by ``disasm --ic``.
        method = CompiledMethod(function, cost_model, opt_level=0, ic=False)
        total_sites += method.fused_sites
        total_span += method.fused_span
        total_instrs += len(method.ops)
        lines.append(
            f"{function.qualified_name}/{function.num_params}: "
            f"{len(method.ops)} instrs, {method.fused_sites} fused sites "
            f"covering {method.fused_span}"
        )
        pc = 0
        while pc < len(method.fops):
            op = method.fops[pc]
            if op >= FUSE_BASE:
                arity = FUSED_ARITY[op]
                lines.append(
                    f"  {pc:4d}  {FUSED_NAMES[op]}"
                    f"  [{arity} ops, cost {method.fcosts[pc]}]"
                )
                pc += arity
            else:
                lines.append(f"  {pc:4d}  {function.code[pc]}")
                pc += 1
        lines.append("")
    lines.append(
        f"total: {total_sites} fused sites covering {total_span} of "
        f"{total_instrs} instructions"
    )
    return "\n".join(lines) + "\n"


def disassemble_ic(program: Program) -> str:
    """Render the inline-cache view of every method.

    Shows what the IC subsystem will do with each method before any
    execution: which call sites quicken (lazily, on first execution) to
    IC dispatch opcodes, how many targets each virtual selector can
    reach through the flat dispatch tables, and which bodies qualify as
    leaf templates (frameless IC fast paths — ``compiled`` means a
    straight-line body was specialized to a host closure).  Debugging
    aid for the IC pass (``repro-mini disasm --ic``); not assembler
    round-trippable.
    """
    # Imported lazily, like disassemble_fused: a debugging view over the
    # vm layer, not part of the assembler round-trip.
    from repro.vm import ic as icache
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm.runtime import CompiledMethod

    cost_model = jikes_cost_model()
    tables = program.flat_dispatch_tables()
    lines: list[str] = []
    virtual_sites = 0
    static_sites = 0
    leaves = 0
    compiled = 0
    for function in program.functions:
        method = CompiledMethod(function, cost_model, opt_level=0, ic=True)
        leaf = method.leaf
        tag = ""
        if leaf is not None:
            leaves += 1
            if leaf[icache.L_FN] is not None:
                compiled += 1
                kind = "compiled"
            else:
                kind = "interpreted"
            tag = (
                f"  [leaf template: {kind}, "
                f"worst-case cost {leaf[icache.L_COST]}]"
            )
        lines.append(f"{function.qualified_name}/{function.num_params}:{tag}")
        for pc, instr in enumerate(function.code):
            if instr.op is Op.CALL_VIRTUAL:
                virtual_sites += 1
                name, argc = program.selectors[instr.a]
                targets = {
                    row[instr.a]
                    for row in tables
                    if instr.a < len(row) and row[instr.a] >= 0
                }
                lines.append(
                    f"  {pc:4d}  IC_CALL_VIRTUAL {name}/{argc}"
                    f"  [{len(targets)} reachable targets]"
                )
            elif instr.op is Op.CALL_STATIC:
                static_sites += 1
                callee = program.functions[instr.a]
                lines.append(
                    f"  {pc:4d}  IC_CALL_STATIC {callee.qualified_name}"
                )
        lines.append("")
    lines.append(
        f"total: {virtual_sites} virtual sites, {static_sites} static "
        f"sites, {leaves} leaf templates ({compiled} compiled to host "
        f"closures)"
    )
    return "\n".join(lines) + "\n"


def disassemble_paths(program: Program) -> str:
    """Render the Ball-Larus path view of every method.

    Shows what the path profiler derives from each baseline method
    before any execution: the CFG blocks, every numbered DAG edge with
    its increment value, the back edges (and their dummy-edge rewrite),
    the total acyclic path count, and — when the minimum-coverage
    placement applies — which edges are chords (instrumented) versus
    spanning-tree edges (free).  Debugging aid for the path subsystem
    (``repro-mini disasm --paths``); not assembler round-trippable.
    """
    # Imported lazily, like the other special views: a debugging view
    # over the profiling layer, not part of the assembler round-trip.
    from repro.profiling.paths import PATH_LIMIT, numbering_for_code
    from repro.profiling.pathplace import place_counters

    lines: list[str] = []
    total_paths = 0
    total_edges = 0
    total_chords = 0
    overflowed = 0
    for function in program.functions:
        numbering = numbering_for_code(function.code)
        if numbering.overflow:
            overflowed += 1
            lines.append(
                f"{function.qualified_name}/{function.num_params}: "
                f"path space exceeds {PATH_LIMIT}; not instrumented"
            )
            lines.append("")
            continue
        placement = place_counters(numbering)
        chords = placement.chords if placement is not None else None
        # Only forward-branch chords cost a runtime increment; back-edge
        # and return increments fold into records that happen anyway.
        branches = [e for e in numbering.edges if e.kind == "branch"]
        chord_count = (
            sum(1 for e in branches if e.id in chords)
            if chords is not None
            else len(branches)
        )
        total_paths += numbering.num_paths
        total_edges += len(numbering.edges)
        total_chords += chord_count
        lines.append(
            f"{function.qualified_name}/{function.num_params}: "
            f"{len(numbering.blocks)} blocks, {numbering.num_paths} paths, "
            f"{len(numbering.back_edges)} back edges, "
            f"{chord_count}/{len(branches)} branch increments placed"
        )
        for node, (start, end) in enumerate(numbering.blocks, start=1):
            lines.append(f"  block {node}: pc {start}..{end}")
        names = {numbering.entry: "ENTRY", numbering.exit: "EXIT"}
        for edge in numbering.edges:
            u = names.get(edge.u, f"b{edge.u}")
            v = names.get(edge.v, f"b{edge.v}")
            key = "" if edge.key is None else f" key={edge.key}"
            mark = ""
            if chords is not None and edge.kind not in ("fall", "jump"):
                mark = "  [chord]" if edge.id in chords else "  [tree]"
            lines.append(
                f"  edge {u}->{v}  {edge.kind}{key}  val={edge.val}{mark}"
            )
        lines.append("")
    summary = (
        f"total: {total_paths} acyclic paths, {total_edges} DAG edges, "
        f"{total_chords} branch increments placed"
    )
    if overflowed:
        summary += f", {overflowed} method(s) over the path limit"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def describe_method_plan(function: FunctionInfo, program: Program) -> str:
    """One-line compilation plan for a method: what each tier of the
    execution stack (baseline, fusion, inline caches, leaf template,
    template JIT) would do with this body before any execution.

    Rendered as the header of ``disasm --method N`` so a single method
    can be inspected without grepping the whole-program views.
    """
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm import ic as icache
    from repro.vm.config import jikes_config
    from repro.vm.jit.compiler import compile_method
    from repro.vm.runtime import CodeCache

    cache = CodeCache(program, jikes_cost_model(), fuse=True, ic=True)
    method = cache.methods[function.index]
    parts = [f"baseline opt={method.opt_level}"]
    if method.fused_sites:
        parts.append(
            f"fused {method.fused_sites} sites covering {method.fused_span}"
        )
    else:
        parts.append("no fusion")
    ic_sites = sum(
        1
        for instr in function.code
        if instr.op in (Op.CALL_VIRTUAL, Op.CALL_STATIC)
    )
    parts.append(f"ic {ic_sites} sites" if ic_sites else "no call sites")
    leaf = method.leaf
    if leaf is not None:
        kind = "compiled" if leaf[icache.L_FN] is not None else "interpreted"
        parts.append(f"leaf template ({kind})")
    code = compile_method(
        method,
        program,
        cache,
        jikes_config(jit=True),
        inline_leaves=True,
        emit_paths=False,
    )
    if code is None:
        parts.append("jit ineligible")
    else:
        arms = ("entry" if code.entry0 else "") or "osr-only"
        parts.append(
            f"jit {arms}+{len(code.entries)} osr arms, "
            f"{code.inline_sites} inlined call sites / {code.exit_sites} exits"
        )
    return "plan: " + ", ".join(parts)


def disassemble_jit(program: Program) -> str:
    """Render the template JIT's generated host code for every method.

    Compiles each body exactly as the plain-run manager would at attach
    time — quickened stream, IC guards from the *unexecuted* cache
    (sites still raw quicken at run time and show as interpreter
    exits), leaf inlining on — and prints the generated Python
    alongside entry-arm and call-site statistics.  Debugging aid for
    the JIT (``repro-mini disasm --jit``); not assembler
    round-trippable.
    """
    # Imported lazily, like the other special views: a debugging view
    # over the vm layer, not part of the assembler round-trip.
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm.config import jikes_config
    from repro.vm.jit.compiler import compile_method
    from repro.vm.runtime import CodeCache

    cache = CodeCache(program, jikes_cost_model(), fuse=True, ic=True)
    config = jikes_config(jit=True)
    lines: list[str] = []
    compiled = 0
    skipped = 0
    for function in program.functions:
        method = cache.methods[function.index]
        code = compile_method(
            method,
            program,
            cache,
            config,
            inline_leaves=True,
            emit_paths=False,
        )
        if code is None:
            skipped += 1
            lines.append(
                f"{function.qualified_name}/{function.num_params}: "
                f"not compiled (no productive arm)"
            )
            lines.append("")
            continue
        compiled += 1
        osr = ", ".join(str(pc) for pc in sorted(code.entries)) or "none"
        lines.append(
            f"{function.qualified_name}/{function.num_params}: "
            f"entry={'yes' if code.entry0 else 'no'} osr=[{osr}] "
            f"{code.inline_sites} inlined call sites / {code.exit_sites} "
            f"exits, {code.fused_expanded} fused heads expanded"
        )
        for line in code.source.rstrip("\n").split("\n"):
            lines.append("  | " + line)
        lines.append("")
    lines.append(
        f"total: {compiled} methods compiled, {skipped} left to the "
        f"interpreter"
    )
    return "\n".join(lines) + "\n"


def disassemble_spec(program: Program) -> str:
    """Render every method's instruction stream annotated with the
    declarative opcode specs (``repro-mini disasm --spec``).

    Each line shows the spec row the toolchain derives everything from:
    stack effect (pops→pushes), semantic kind, abstract encoded size,
    fault modes, and the site classes (fusable, quickening class,
    step-limit binding, yieldpoint) that drive dispatch-arm generation.
    Debugging aid for spec/handler drift hunts; not assembler
    round-trippable.
    """
    from repro.bytecode.opcodes import spec_of

    lines: list[str] = []
    per_kind: dict[str, int] = {}
    fault_sites = 0
    for function in program.functions:
        lines.append(
            f"{function.qualified_name}/{function.num_params}: "
            f"{len(function.code)} instrs, "
            f"{function.bytecode_size()} spec bytes"
        )
        for pc, instr in enumerate(function.code):
            spec = spec_of(instr.op)
            per_kind[spec.kind] = per_kind.get(spec.kind, 0) + 1
            if spec.pops is None:
                # Calls: argc-dependent; show the site's actual account.
                argc = instr.b + (1 if instr.op is Op.CALL_VIRTUAL else 0)
                effect = f"{argc}→ret"
            else:
                effect = f"{spec.pops}→{spec.pushes}"
            notes = [spec.kind, f"size={spec.size}"]
            if spec.faults:
                fault_sites += 1
                notes.append("faults=" + ",".join(f.kind for f in spec.faults))
            if spec.fusable:
                notes.append("fusable")
            if spec.quicken:
                notes.append(f"quicken={spec.quicken}")
            if spec.step_limit:
                notes.append(f"step-limit@{spec.step_limit}")
            if spec.yieldpoint:
                notes.append(f"yieldpoint={spec.yieldpoint}")
            if spec.dyn_cost:
                notes.append(f"dyn-cost={spec.dyn_cost}")
            lines.append(
                f"  {pc:4d}  {str(instr):<24s} [{effect:>6s}]  "
                + "  ".join(notes)
            )
        lines.append("")
    kinds = ", ".join(f"{k}:{n}" for k, n in sorted(per_kind.items()))
    lines.append(
        f"total: {sum(per_kind.values())} instructions "
        f"({fault_sites} faultable sites) — {kinds}"
    )
    return "\n".join(lines) + "\n"


def disassemble(program: Program) -> str:
    """Render a whole program as assembler text."""
    lines: list[str] = []
    for cls in program.classes:
        line = f"class {cls.name}"
        if cls.super_name is not None:
            line += f" extends {cls.super_name}"
        own_fields = cls.field_layout
        if cls.super_name is not None:
            inherited = program.class_named(cls.super_name).field_layout
            own_fields = cls.field_layout[len(inherited):]
        if own_fields:
            line += " fields " + " ".join(own_fields)
        lines.append(line)
    if program.classes:
        lines.append("")
    for function in program.functions:
        lines.append(disassemble_function(function, program))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
