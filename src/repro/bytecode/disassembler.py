"""Disassembler: renders a :class:`Program` back to assembler text.

Output round-trips through :func:`repro.bytecode.assembler.assemble` for
programs whose field offsets can be expressed symbolically; numeric
operands are used otherwise.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, Op
from repro.bytecode.program import Program


def disassemble_function(function: FunctionInfo, program: Program | None = None) -> str:
    """Render one function as assembler text."""
    targets = sorted(
        {instr.a for instr in function.code if instr.op in JUMP_OPS}
    )
    label_names = {pc: f"L{i}" for i, pc in enumerate(targets)}

    keyword = "method" if function.kind == "method" else "func"
    header = f"{keyword} {function.qualified_name}/{function.num_params}"
    header += f" locals={function.num_locals}"
    if not function.returns_value:
        header += " void"

    lines = [header]
    for pc, instr in enumerate(function.code):
        if pc in label_names:
            lines.append(f"label {label_names[pc]}")
        lines.append("  " + _render_instr(instr, label_names, program))
    # A label may point one past the last instruction (e.g. a loop exit
    # that was trimmed); emit it so jumps stay resolvable.
    end = len(function.code)
    if end in label_names:
        lines.append(f"label {label_names[end]}")
        lines.append("  NOP")
    lines.append("end")
    return "\n".join(lines)


def _render_instr(
    instr: Instr, label_names: dict[int, str], program: Program | None
) -> str:
    op = instr.op
    if op in JUMP_OPS:
        return f"{op.name} {label_names[instr.a]}"
    if op is Op.CALL_STATIC:
        if program is not None:
            callee = program.functions[instr.a]
            return f"{op.name} {callee.qualified_name} {instr.b}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.CALL_VIRTUAL:
        if program is not None:
            name, argc = program.selectors[instr.a]
            return f"{op.name} {name} {argc}"
        return f"{op.name} {instr.a} {instr.b}"
    if op is Op.GUARD_METHOD:
        if program is not None:
            name, argc = program.selectors[instr.a]
            expected = program.functions[instr.b].qualified_name
            return f"{op.name} {name} {argc} {expected}"
        return f"{op.name} {instr.a} {instr.b}"
    if op in (Op.NEW, Op.IS_EXACT):
        if program is not None:
            return f"{op.name} {program.classes[instr.a].name}"
        return f"{op.name} {instr.a}"
    parts = [op.name]
    if instr.a is not None:
        parts.append(str(instr.a))
    if instr.b is not None:
        parts.append(str(instr.b))
    return " ".join(parts)


def disassemble_fused(program: Program) -> str:
    """Render every method's *quickened* instruction stream.

    Shows what the interpreter actually dispatches after superinstruction
    fusion: group heads print the fused name with their covered span and
    summed cost, interior slots are elided.  Debugging aid for the fusion
    pass (``repro-mini disasm --fused``); not assembler round-trippable.
    """
    # Imported lazily: the vm layer sits above bytecode, and this view
    # is a debugging aid, not part of the assembler round-trip.
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm.fuse import FUSE_BASE, FUSED_ARITY, FUSED_NAMES
    from repro.vm.runtime import CompiledMethod

    cost_model = jikes_cost_model()
    lines: list[str] = []
    total_sites = 0
    total_span = 0
    total_instrs = 0
    for function in program.functions:
        # ic=False: this view shows the fusion rewrite alone; inline-cache
        # quickening is lazy (per-run) and rendered by ``disasm --ic``.
        method = CompiledMethod(function, cost_model, opt_level=0, ic=False)
        total_sites += method.fused_sites
        total_span += method.fused_span
        total_instrs += len(method.ops)
        lines.append(
            f"{function.qualified_name}/{function.num_params}: "
            f"{len(method.ops)} instrs, {method.fused_sites} fused sites "
            f"covering {method.fused_span}"
        )
        pc = 0
        while pc < len(method.fops):
            op = method.fops[pc]
            if op >= FUSE_BASE:
                arity = FUSED_ARITY[op]
                lines.append(
                    f"  {pc:4d}  {FUSED_NAMES[op]}"
                    f"  [{arity} ops, cost {method.fcosts[pc]}]"
                )
                pc += arity
            else:
                lines.append(f"  {pc:4d}  {function.code[pc]}")
                pc += 1
        lines.append("")
    lines.append(
        f"total: {total_sites} fused sites covering {total_span} of "
        f"{total_instrs} instructions"
    )
    return "\n".join(lines) + "\n"


def disassemble_ic(program: Program) -> str:
    """Render the inline-cache view of every method.

    Shows what the IC subsystem will do with each method before any
    execution: which call sites quicken (lazily, on first execution) to
    IC dispatch opcodes, how many targets each virtual selector can
    reach through the flat dispatch tables, and which bodies qualify as
    leaf templates (frameless IC fast paths — ``compiled`` means a
    straight-line body was specialized to a host closure).  Debugging
    aid for the IC pass (``repro-mini disasm --ic``); not assembler
    round-trippable.
    """
    # Imported lazily, like disassemble_fused: a debugging view over the
    # vm layer, not part of the assembler round-trip.
    from repro.vm import ic as icache
    from repro.vm.costmodel import jikes_cost_model
    from repro.vm.runtime import CompiledMethod

    cost_model = jikes_cost_model()
    tables = program.flat_dispatch_tables()
    lines: list[str] = []
    virtual_sites = 0
    static_sites = 0
    leaves = 0
    compiled = 0
    for function in program.functions:
        method = CompiledMethod(function, cost_model, opt_level=0, ic=True)
        leaf = method.leaf
        tag = ""
        if leaf is not None:
            leaves += 1
            if leaf[icache.L_FN] is not None:
                compiled += 1
                kind = "compiled"
            else:
                kind = "interpreted"
            tag = (
                f"  [leaf template: {kind}, "
                f"worst-case cost {leaf[icache.L_COST]}]"
            )
        lines.append(f"{function.qualified_name}/{function.num_params}:{tag}")
        for pc, instr in enumerate(function.code):
            if instr.op is Op.CALL_VIRTUAL:
                virtual_sites += 1
                name, argc = program.selectors[instr.a]
                targets = {
                    row[instr.a]
                    for row in tables
                    if instr.a < len(row) and row[instr.a] >= 0
                }
                lines.append(
                    f"  {pc:4d}  IC_CALL_VIRTUAL {name}/{argc}"
                    f"  [{len(targets)} reachable targets]"
                )
            elif instr.op is Op.CALL_STATIC:
                static_sites += 1
                callee = program.functions[instr.a]
                lines.append(
                    f"  {pc:4d}  IC_CALL_STATIC {callee.qualified_name}"
                )
        lines.append("")
    lines.append(
        f"total: {virtual_sites} virtual sites, {static_sites} static "
        f"sites, {leaves} leaf templates ({compiled} compiled to host "
        f"closures)"
    )
    return "\n".join(lines) + "\n"


def disassemble(program: Program) -> str:
    """Render a whole program as assembler text."""
    lines: list[str] = []
    for cls in program.classes:
        line = f"class {cls.name}"
        if cls.super_name is not None:
            line += f" extends {cls.super_name}"
        own_fields = cls.field_layout
        if cls.super_name is not None:
            inherited = program.class_named(cls.super_name).field_layout
            own_fields = cls.field_layout[len(inherited):]
        if own_fields:
            line += " fields " + " ".join(own_fields)
        lines.append(line)
    if program.classes:
        lines.append("")
    for function in program.functions:
        lines.append(disassemble_function(function, program))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
