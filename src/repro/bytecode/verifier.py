"""Bytecode verifier.

A lightweight abstract interpretation over operand-stack *depth* (not
types): it checks structural well-formedness properties that the
interpreter and the optimizer both rely on.  The optimizer re-verifies
every function it rewrites, which caught many inliner bugs during
development and is cheap enough to leave on.

Checks performed per function:

* every jump target is a valid bytecode index,
* local slot numbers are within ``num_locals``,
* call operands reference real functions/selectors with matching arity,
* stack depth is consistent at control-flow joins,
* stack depth never goes negative and matches return conventions,
* control cannot fall off the end of the code.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.opcodes import JUMP_OPS, Op, POPS, STACK_EFFECT, TERMINATOR_OPS
from repro.bytecode.program import Program

#: Number of operands each opcode pops (before pushing its results);
#: used for the "depth never negative" check.  Derived from the
#: declarative opcode specs — the same table the dispatch-loop
#: generator charges from.  Calls are None here (argc-dependent) and
#: special-cased below.
_POPS: dict[Op, int | None] = POPS


class VerifyError(Exception):
    """Raised when a function fails verification."""

    def __init__(self, function: FunctionInfo, pc: int | None, message: str):
        where = f"{function.qualified_name}"
        if pc is not None:
            where += f" @pc={pc}"
        super().__init__(f"{where}: {message}")
        self.function = function
        self.pc = pc


def verify_function(function: FunctionInfo, program: Program | None = None) -> None:
    """Verify one function; raises :class:`VerifyError` on failure."""
    code = function.code
    if not code:
        raise VerifyError(function, None, "empty code")

    depth_at: dict[int, int] = {0: 0}
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        depth = depth_at[pc]
        if pc >= len(code):
            raise VerifyError(function, pc, "control falls off the end of code")
        instr = code[pc]
        op = instr.op

        pops = _POPS.get(op)
        if op is Op.CALL_STATIC:
            pops = instr.b
        elif op is Op.CALL_VIRTUAL:
            pops = instr.b + 1  # receiver
        if pops is None:
            raise VerifyError(function, pc, f"unverifiable opcode {op.name}")
        if depth < pops:
            raise VerifyError(
                function, pc, f"{op.name} needs {pops} operand(s), stack has {depth}"
            )

        _check_operands(function, program, pc, instr)

        effect = STACK_EFFECT[op]
        if op is Op.CALL_STATIC:
            callee_returns = True
            if program is not None:
                callee = program.functions[instr.a]
                callee_returns = callee.returns_value
            effect = -instr.b + (1 if callee_returns else 0)
        elif op is Op.CALL_VIRTUAL:
            # Virtual callees may be overridden; Mini requires overriding
            # methods to keep the signature, so any resolution target has
            # the same return convention.  Assume value-returning unless
            # the program proves otherwise via some resolution.
            effect = -(instr.b + 1) + _virtual_returns(program, instr)
        new_depth = depth + effect
        if new_depth < 0:
            raise VerifyError(function, pc, "stack underflow")

        for successor in _successors(pc, instr, len(code), function):
            known = depth_at.get(successor)
            if known is None:
                depth_at[successor] = new_depth
                worklist.append(successor)
            elif known != new_depth:
                raise VerifyError(
                    function,
                    successor,
                    f"inconsistent stack depth at join: {known} vs {new_depth}",
                )


def _virtual_returns(program: Program | None, instr) -> int:
    if program is None:
        return 1
    name, argc = program.selectors[instr.a]
    for function in program.functions:
        if function.kind == "method" and function.selector == (name, argc):
            return 1 if function.returns_value else 0
    return 1


def _successors(pc: int, instr, code_len: int, function: FunctionInfo) -> list[int]:
    op = instr.op
    successors: list[int] = []
    if op in JUMP_OPS:
        if not isinstance(instr.a, int) or not (0 <= instr.a < code_len):
            raise VerifyError(function, pc, f"jump target {instr.a!r} out of range")
        successors.append(instr.a)
    if op not in TERMINATOR_OPS:
        if pc + 1 >= code_len:
            raise VerifyError(function, pc, "control falls off the end of code")
        successors.append(pc + 1)
    return successors


def _check_operands(
    function: FunctionInfo, program: Program | None, pc: int, instr
) -> None:
    op = instr.op
    if op in (Op.LOAD, Op.STORE):
        if not isinstance(instr.a, int) or not (0 <= instr.a < function.num_locals):
            raise VerifyError(
                function, pc, f"{op.name} slot {instr.a!r} out of range "
                f"(num_locals={function.num_locals})"
            )
    elif op is Op.PUSH:
        if not isinstance(instr.a, int):
            raise VerifyError(function, pc, "PUSH needs an int operand")
    elif op is Op.CALL_STATIC:
        if not isinstance(instr.b, int) or instr.b < 0:
            raise VerifyError(function, pc, "CALL_STATIC needs an argc operand")
        if program is not None:
            if not (0 <= instr.a < len(program.functions)):
                raise VerifyError(function, pc, f"bad function index {instr.a!r}")
            callee = program.functions[instr.a]
            if callee.num_params != instr.b:
                raise VerifyError(
                    function,
                    pc,
                    f"arity mismatch calling {callee.qualified_name}: "
                    f"passed {instr.b}, expects {callee.num_params}",
                )
    elif op is Op.CALL_VIRTUAL:
        if not isinstance(instr.b, int) or instr.b < 0:
            raise VerifyError(function, pc, "CALL_VIRTUAL needs an argc operand")
        if program is not None:
            if not (0 <= instr.a < len(program.selectors)):
                raise VerifyError(function, pc, f"bad selector id {instr.a!r}")
            _, argc = program.selectors[instr.a]
            if argc != instr.b:
                raise VerifyError(function, pc, "selector/argc mismatch")
    elif op in (Op.NEW, Op.IS_EXACT):
        if program is not None and not (0 <= instr.a < len(program.classes)):
            raise VerifyError(function, pc, f"bad class index {instr.a!r}")
    elif op is Op.GUARD_METHOD:
        if program is not None:
            if not (0 <= instr.a < len(program.selectors)):
                raise VerifyError(function, pc, f"bad selector id {instr.a!r}")
            if not isinstance(instr.b, int) or not (
                0 <= instr.b < len(program.functions)
            ):
                raise VerifyError(function, pc, f"bad function index {instr.b!r}")
    elif op in (Op.GETFIELD, Op.PUTFIELD):
        if not isinstance(instr.a, int) or instr.a < 0:
            raise VerifyError(function, pc, f"{op.name} needs a field offset")


def verify_program(program: Program) -> None:
    """Verify every function in ``program``.

    Also enforces the whole-program rule that all methods sharing a
    dispatch selector agree on whether they return a value — the
    depth-only verification of ``CALL_VIRTUAL`` sites depends on it.
    """
    returns_by_selector: dict[tuple[str, int], tuple[bool, str]] = {}
    for function in program.functions:
        if function.kind != "method":
            continue
        key = function.selector
        known = returns_by_selector.get(key)
        if known is None:
            returns_by_selector[key] = (function.returns_value, function.qualified_name)
        elif known[0] != function.returns_value:
            raise VerifyError(
                function,
                None,
                f"selector {key[0]}/{key[1]} is void in one class but "
                f"value-returning in another ({known[1]})",
            )
    for function in program.functions:
        verify_function(function, program)
