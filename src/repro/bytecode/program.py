"""Whole-program container: classes, functions, selectors, vtables.

A :class:`Program` is the unit loaded into the VM.  Virtual dispatch is
selector-based: each distinct ``(method name, argc)`` pair used at a
virtual call site gets a small integer *selector id*; every class has a
vtable mapping selector id → function index, built here with standard
single-inheritance override semantics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.bytecode.function import FunctionInfo


class ProgramError(Exception):
    """Raised for malformed program construction (duplicate names, etc.)."""


@dataclass
class ClassInfo:
    """Runtime metadata for one class."""

    name: str
    super_name: str | None = None
    index: int = -1

    #: Field names in layout order; inherited fields come first, so a
    #: field offset is valid for all subclasses.
    field_layout: list[str] = field(default_factory=list)
    field_offsets: dict[str, int] = field(default_factory=dict)

    #: Default value per declared field name: 0 for int/bool, None for
    #: reference types.  Filled by the frontend (which knows the types);
    #: assembler-built classes default everything to 0.
    field_default_by_name: dict[str, object] = field(default_factory=dict)
    #: Default values in layout order (computed by build_vtables).
    field_defaults: list = field(default_factory=list)

    #: selector id -> function index, including inherited methods.
    vtable: dict[int, int] = field(default_factory=dict)

    #: Function indices of methods declared directly in this class.
    declared_methods: list[int] = field(default_factory=list)

    #: Ancestry for subtype tests: indices of self + all superclasses.
    ancestors: frozenset[int] = frozenset()

    @property
    def num_fields(self) -> int:
        return len(self.field_layout)

    def __repr__(self) -> str:
        return f"ClassInfo({self.name}, fields={self.field_layout})"


class Program:
    """A complete compiled Mini program."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        self.selectors: list[tuple[str, int]] = []
        self._function_by_name: dict[str, int] = {}
        self._class_by_name: dict[str, int] = {}
        self._selector_ids: dict[tuple[str, int], int] = {}
        self.entry_index: int | None = None
        self._field_templates: list[list] | None = None
        self._flat_vtables: list[list[int]] | None = None

    # -- registration -------------------------------------------------------

    def add_function(self, function: FunctionInfo) -> int:
        """Register a function; returns its index."""
        key = function.qualified_name
        if key in self._function_by_name:
            raise ProgramError(f"duplicate function {key!r}")
        function.index = len(self.functions)
        self.functions.append(function)
        self._function_by_name[key] = function.index
        if function.kind == "static" and function.name == "main":
            self.entry_index = function.index
        return function.index

    def add_class(self, cls: ClassInfo) -> int:
        if cls.name in self._class_by_name:
            raise ProgramError(f"duplicate class {cls.name!r}")
        cls.index = len(self.classes)
        self.classes.append(cls)
        self._class_by_name[cls.name] = cls.index
        return cls.index

    def selector_id(self, name: str, argc: int) -> int:
        """Intern a dispatch selector, returning its id."""
        key = (name, argc)
        existing = self._selector_ids.get(key)
        if existing is not None:
            return existing
        sid = len(self.selectors)
        self.selectors.append(key)
        self._selector_ids[key] = sid
        return sid

    # -- lookup --------------------------------------------------------------

    def function_named(self, qualified_name: str) -> FunctionInfo:
        index = self._function_by_name.get(qualified_name)
        if index is None:
            raise ProgramError(f"no function named {qualified_name!r}")
        return self.functions[index]

    def function_index(self, qualified_name: str) -> int:
        return self.function_named(qualified_name).index

    def class_named(self, name: str) -> ClassInfo:
        index = self._class_by_name.get(name)
        if index is None:
            raise ProgramError(f"no class named {name!r}")
        return self.classes[index]

    def has_class(self, name: str) -> bool:
        return name in self._class_by_name

    def entry_function(self) -> FunctionInfo:
        if self.entry_index is None:
            raise ProgramError("program has no main() function")
        return self.functions[self.entry_index]

    # -- vtable construction --------------------------------------------------

    def build_vtables(self) -> None:
        """Compute field layouts, vtables, and ancestor sets.

        Must be called after all classes and methods are registered and
        before execution.  Classes must be registered so that a subclass
        appears after its superclass (the frontend guarantees this by
        topologically sorting the hierarchy).
        """
        for cls in self.classes:
            if cls.super_name is not None:
                sup = self.class_named(cls.super_name)
                if sup.index >= cls.index:
                    raise ProgramError(
                        f"class {cls.name!r} registered before its superclass"
                    )
                inherited_layout = list(sup.field_layout)
                own_fields = [f for f in cls.field_layout if f not in sup.field_offsets]
                cls.field_layout = inherited_layout + own_fields
                merged_defaults = dict(sup.field_default_by_name)
                merged_defaults.update(cls.field_default_by_name)
                cls.field_default_by_name = merged_defaults
                cls.vtable = dict(sup.vtable)
                cls.ancestors = sup.ancestors | {cls.index}
            else:
                cls.ancestors = frozenset({cls.index})
            cls.field_offsets = {name: i for i, name in enumerate(cls.field_layout)}
            cls.field_defaults = [
                cls.field_default_by_name.get(name, 0) for name in cls.field_layout
            ]
            for func_index in cls.declared_methods:
                function = self.functions[func_index]
                sid = self.selector_id(*function.selector)
                cls.vtable[sid] = func_index
        self._field_templates = None
        self._flat_vtables = None

    def field_default_templates(self) -> list[list]:
        """Per-class field-default lists, indexed by class index.

        Computed once and shared by every interpreter over this program
        (``NEW`` copies the template per allocation), instead of each
        ``Interpreter.__init__`` re-deriving the ``field_defaults or
        zeros`` fallback.  Invalidated by :meth:`build_vtables`.
        """
        templates = self._field_templates
        if templates is None:
            templates = [
                cls.field_defaults if cls.field_defaults else [0] * cls.num_fields
                for cls in self.classes
            ]
            self._field_templates = templates
        return templates

    def flat_dispatch_tables(self) -> list[list[int]]:
        """Dense per-class dispatch rows: ``tables[class][selector]`` is
        the target function index, or -1 where the class does not
        understand the selector.

        The megamorphic fallback of the interpreter's inline caches
        dispatches through these instead of the dict vtables (a list
        index per lookup, no hashing).  Rows cover the selectors
        interned when the tables are built; a later-interned selector
        id falls off the end of every row, which callers must treat as
        "missing" (the interpreter bounds-checks and raises the same
        no-such-method error).  Cached; invalidated by
        :meth:`build_vtables`.
        """
        tables = self._flat_vtables
        if tables is None:
            width = len(self.selectors)
            tables = [
                [cls.vtable.get(sid, -1) for sid in range(width)]
                for cls in self.classes
            ]
            self._flat_vtables = tables
        return tables

    def resolve_virtual(self, class_index: int, selector_id: int) -> int:
        """Resolve a virtual dispatch to a function index."""
        vtable = self.classes[class_index].vtable
        target = vtable.get(selector_id)
        if target is None:
            name, argc = self.selectors[selector_id]
            raise ProgramError(
                f"class {self.classes[class_index].name!r} does not understand "
                f"{name}/{argc}"
            )
        return target

    def is_subclass(self, class_index: int, ancestor_index: int) -> bool:
        return ancestor_index in self.classes[class_index].ancestors

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable content hash identifying this program's code.

        Covers class hierarchy and every function's name, arity, and
        baseline bytecode (opcodes + operands), so two compilations of
        the same source agree and any code change disagrees.  Used to
        key serialized profiles and fleet aggregates to the program
        they were collected against.  Cached after first computation;
        call only on fully built programs.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for cls in self.classes:
            digest.update(f"C {cls.name}<{cls.super_name}\n".encode())
        for function in self.functions:
            digest.update(
                f"F {function.qualified_name}/{function.num_params}\n".encode()
            )
            for instr in function.code:
                digest.update(f"{instr.op.name},{instr.a},{instr.b};".encode())
            digest.update(b"\n")
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- stats ----------------------------------------------------------------

    def total_bytecode_size(self) -> int:
        """Total abstract bytecode size in bytes across all functions."""
        return sum(f.bytecode_size() for f in self.functions)

    def __repr__(self) -> str:
        return (
            f"Program({len(self.classes)} classes, {len(self.functions)} functions, "
            f"{self.total_bytecode_size()} bytes)"
        )
