"""The instruction record.

Instructions are mutable (the optimizer rewrites operands in place when
relocating jump targets) but cheap: ``__slots__`` keeps them compact, and
the interpreter unzips instruction lists into parallel arrays before
execution, so per-instruction attribute access is not on the hot path.

``origin`` implements the VM's *inline maps*: on call instructions in
optimizer-rewritten code it records ``(function index, pc)`` of the
call site in the function's original (baseline) bytecode — including
sites spliced in from inlined callees, which keep their own baseline
coordinates.  Profilers attribute samples through it, so the dynamic
call graph always speaks baseline coordinates no matter how many times
methods are recompiled (this is how Jikes RVM maps machine-code samples
back to bytecode call sites).  ``None`` means "this very position":
baseline code needs no map.
"""

from __future__ import annotations

from repro.bytecode.opcodes import JUMP_OPS, Op


class Instr:
    """One VM instruction: an opcode, up to two integer operands, and an
    optional baseline-coordinate origin for call instructions."""

    __slots__ = ("op", "a", "b", "origin")

    def __init__(
        self,
        op: Op,
        a: int | None = None,
        b: int | None = None,
        origin: tuple[int, int] | None = None,
    ):
        self.op = op
        self.a = a
        self.b = b
        self.origin = origin

    def copy(self) -> "Instr":
        return Instr(self.op, self.a, self.b, self.origin)

    @property
    def is_jump(self) -> bool:
        return self.op in JUMP_OPS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return self.op == other.op and self.a == other.a and self.b == other.b

    def __hash__(self) -> int:
        return hash((self.op, self.a, self.b))

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.a is not None:
            parts.append(str(self.a))
        if self.b is not None:
            parts.append(str(self.b))
        return " ".join(parts)
