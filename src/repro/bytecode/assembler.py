"""A textual assembler for Mini VM bytecode.

The assembler exists so tests and micro-benchmarks can construct precise
instruction sequences without going through the source-language compiler.
The format is line oriented::

    # comment
    class Point fields x y
    class Point3 extends Point fields z

    method Point.getX/1 locals=1
      LOAD 0
      GETFIELD Point.x
      RETURN_VAL
    end

    func main/0 locals=1 void
      NEW Point
      STORE 0
      LOAD 0
      CALL_VIRTUAL getX 0
      PRINT
      RETURN
    end

Function headers give the parameter count after ``/`` (including the
receiver for methods) and the *total* local-slot count after ``locals=``.
A trailing ``void`` marks a function that returns no value.  Labels are
written ``label name`` on their own line and referenced by jump
instructions.  Symbolic operands are resolved against the declared
classes and functions: ``CALL_STATIC f 2``, ``CALL_VIRTUAL get 0``,
``NEW Point``, ``IS_EXACT Point``, ``GETFIELD Point.x``.
"""

from __future__ import annotations

from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import JUMP_OPS, Op
from repro.bytecode.program import ClassInfo, Program


class AssemblerError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _strip(line: str) -> str:
    hash_index = line.find("#")
    if hash_index >= 0:
        line = line[:hash_index]
    return line.strip()


class Assembler:
    """Two-pass assembler: headers first, then bodies."""

    def __init__(self, text: str):
        self._lines = text.splitlines()
        self._program = Program()

    def assemble(self) -> Program:
        bodies = self._collect_declarations()
        self._program.build_vtables()
        for function, body_lines in bodies:
            function.code = self._assemble_body(body_lines)
        return self._program

    # -- pass 1 ---------------------------------------------------------------

    def _collect_declarations(
        self,
    ) -> list[tuple[FunctionInfo, list[tuple[int, str]]]]:
        bodies: list[tuple[FunctionInfo, list[tuple[int, str]]]] = []
        i = 0
        while i < len(self._lines):
            line = _strip(self._lines[i])
            number = i + 1
            if not line:
                i += 1
                continue
            words = line.split()
            if words[0] == "class":
                self._declare_class(words, number)
                i += 1
            elif words[0] in ("func", "method"):
                function = self._declare_function(words, number)
                body: list[tuple[int, str]] = []
                i += 1
                while True:
                    if i >= len(self._lines):
                        raise AssemblerError("missing 'end'", number)
                    inner = _strip(self._lines[i])
                    if inner == "end":
                        i += 1
                        break
                    if inner:
                        body.append((i + 1, inner))
                    i += 1
                bodies.append((function, body))
            else:
                raise AssemblerError(f"unexpected directive {words[0]!r}", number)
        return bodies

    def _declare_class(self, words: list[str], number: int) -> None:
        if len(words) < 2:
            raise AssemblerError("class needs a name", number)
        name = words[1]
        rest = words[2:]
        super_name = None
        if rest and rest[0] == "extends":
            if len(rest) < 2:
                raise AssemblerError("extends needs a class name", number)
            super_name = rest[1]
            rest = rest[2:]
        fields: list[str] = []
        if rest:
            if rest[0] != "fields":
                raise AssemblerError(f"expected 'fields', found {rest[0]!r}", number)
            fields = rest[1:]
        self._program.add_class(
            ClassInfo(name=name, super_name=super_name, field_layout=fields)
        )

    def _declare_function(self, words: list[str], number: int) -> FunctionInfo:
        if len(words) < 2 or "/" not in words[1]:
            raise AssemblerError("expected 'name/nparams'", number)
        full_name, params_text = words[1].rsplit("/", 1)
        try:
            num_params = int(params_text)
        except ValueError:
            raise AssemblerError("parameter count must be an integer", number)
        num_locals = num_params
        returns_value = True
        for word in words[2:]:
            if word.startswith("locals="):
                num_locals = int(word[len("locals="):])
            elif word == "void":
                returns_value = False
            else:
                raise AssemblerError(f"unexpected attribute {word!r}", number)
        if num_locals < num_params:
            raise AssemblerError("locals must be >= parameter count", number)

        kind = "static"
        owner = None
        name = full_name
        if words[0] == "method":
            if "." not in full_name:
                raise AssemblerError("method name must be 'Class.name'", number)
            owner, name = full_name.split(".", 1)
            kind = "method"
            if num_params < 1:
                raise AssemblerError("methods need at least the receiver param", number)

        function = FunctionInfo(
            name=name,
            code=[],
            num_params=num_params,
            num_locals=num_locals,
            kind=kind,
            owner=owner,
            returns_value=returns_value,
        )
        index = self._program.add_function(function)
        if owner is not None:
            self._program.class_named(owner).declared_methods.append(index)
        return function

    # -- pass 2 ---------------------------------------------------------------

    def _assemble_body(self, body: list[tuple[int, str]]) -> list[Instr]:
        labels: dict[str, int] = {}
        pc = 0
        for number, line in body:
            words = line.split()
            if words[0] == "label":
                if len(words) != 2:
                    raise AssemblerError("label needs exactly one name", number)
                if words[1] in labels:
                    raise AssemblerError(f"duplicate label {words[1]!r}", number)
                labels[words[1]] = pc
            else:
                pc += 1

        code: list[Instr] = []
        for number, line in body:
            words = line.split()
            if words[0] == "label":
                continue
            code.append(self._assemble_instr(words, labels, number))
        return code

    def _assemble_instr(
        self, words: list[str], labels: dict[str, int], number: int
    ) -> Instr:
        try:
            op = Op[words[0]]
        except KeyError:
            raise AssemblerError(f"unknown opcode {words[0]!r}", number)
        operands = words[1:]

        if op in JUMP_OPS:
            self._need(operands, 1, op, number)
            target = labels.get(operands[0])
            if target is None:
                raise AssemblerError(f"undefined label {operands[0]!r}", number)
            return Instr(op, target)
        if op in (Op.PUSH, Op.LOAD, Op.STORE):
            self._need(operands, 1, op, number)
            return Instr(op, self._int(operands[0], number))
        if op is Op.CALL_STATIC:
            self._need(operands, 2, op, number)
            func_index = self._program.function_index(operands[0])
            return Instr(op, func_index, self._int(operands[1], number))
        if op is Op.CALL_VIRTUAL:
            self._need(operands, 2, op, number)
            argc = self._int(operands[1], number)
            return Instr(op, self._program.selector_id(operands[0], argc), argc)
        if op is Op.GUARD_METHOD:
            # GUARD_METHOD <selector> <argc> <expected qualified function>
            self._need(operands, 3, op, number)
            argc = self._int(operands[1], number)
            sid = self._program.selector_id(operands[0], argc)
            return Instr(op, sid, self._program.function_index(operands[2]))
        if op in (Op.NEW, Op.IS_EXACT):
            self._need(operands, 1, op, number)
            return Instr(op, self._program.class_named(operands[0]).index)
        if op in (Op.GETFIELD, Op.PUTFIELD):
            self._need(operands, 1, op, number)
            operand = operands[0]
            if "." in operand:
                class_name, field_name = operand.split(".", 1)
                offsets = self._program.class_named(class_name).field_offsets
                if field_name not in offsets:
                    raise AssemblerError(
                        f"class {class_name!r} has no field {field_name!r}", number
                    )
                return Instr(op, offsets[field_name])
            return Instr(op, self._int(operand, number))
        if operands:
            raise AssemblerError(f"{op.name} takes no operands", number)
        return Instr(op)

    @staticmethod
    def _need(operands: list[str], count: int, op: Op, number: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"{op.name} takes {count} operand(s), got {len(operands)}", number
            )

    @staticmethod
    def _int(text: str, number: int) -> int:
        try:
            return int(text)
        except ValueError:
            raise AssemblerError(f"expected an integer, found {text!r}", number)


def assemble(text: str, verify: bool = True) -> Program:
    """Assemble ``text`` into a ready-to-run :class:`Program`.

    By default the result is verified (stack depth from the declarative
    opcode specs: never negative, consistent at joins, no falling off
    the end) so a hand-assembled program with bad stack discipline is
    rejected here rather than faulting mid-run.  Pass ``verify=False``
    to get the raw program — e.g. to feed the verifier's own tests."""
    program = Assembler(text).assemble()
    if verify:
        # Imported here: the verifier imports Program, keep module
        # import light and cycle-free.
        from repro.bytecode.verifier import verify_program

        verify_program(program)
    return program
