"""Mini VM bytecode: instruction set, containers, assembler, verifier."""

from repro.bytecode.assembler import Assembler, AssemblerError, assemble
from repro.bytecode.disassembler import disassemble, disassemble_function
from repro.bytecode.function import FunctionInfo
from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import CALL_OPS, JUMP_OPS, OPCODE_SIZE, Op, TERMINATOR_OPS
from repro.bytecode.program import ClassInfo, Program, ProgramError
from repro.bytecode.verifier import VerifyError, verify_function, verify_program

__all__ = [
    "Assembler",
    "AssemblerError",
    "CALL_OPS",
    "ClassInfo",
    "FunctionInfo",
    "Instr",
    "JUMP_OPS",
    "OPCODE_SIZE",
    "Op",
    "Program",
    "ProgramError",
    "TERMINATOR_OPS",
    "VerifyError",
    "assemble",
    "disassemble",
    "disassemble_function",
    "verify_function",
    "verify_program",
]
