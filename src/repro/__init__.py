"""repro — reproduction of Arnold & Grove, "Collecting and Exploiting
High-Accuracy Call Graph Profiles in Virtual Machines" (CGO 2005).

The package builds, from scratch, everything the paper's experiments
need: a small object-oriented language (Mini) with a compiler to stack
bytecode, an interpreting VM with a deterministic virtual clock and
Jikes-RVM-style yieldpoints, the paper's counter-based sampling (CBS)
profiler plus every baseline profiler it is compared against,
feedback-directed inliners, an adaptive optimization system, a
13-program benchmark suite, and harnesses regenerating each table and
figure.

Quickstart::

    from repro import compile_source, Interpreter, CBSProfiler

    program = compile_source(open("app.mini").read())
    vm = Interpreter(program)
    vm.attach_profiler(CBSProfiler(stride=3, samples_per_tick=16))
    vm.run()
    print(vm.profiler.dcg.describe(program))
"""

from repro.frontend.codegen import compile_program, compile_source
from repro.profiling.cbs import CBSProfiler
from repro.profiling.dcg import DCG
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.metrics import accuracy, overlap
from repro.profiling.timer_sampler import TimerProfiler
from repro.telemetry import Tracer
from repro.vm.config import j9_config, jikes_config
from repro.vm.interpreter import Interpreter, run_program

__version__ = "1.0.0"

__all__ = [
    "CBSProfiler",
    "DCG",
    "ExhaustiveProfiler",
    "Interpreter",
    "TimerProfiler",
    "Tracer",
    "__version__",
    "accuracy",
    "compile_program",
    "compile_source",
    "j9_config",
    "jikes_config",
    "overlap",
    "run_program",
]
