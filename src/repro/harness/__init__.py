"""Experiment harnesses regenerating every table and figure."""

from repro.harness.runner import (
    BaselineResult,
    ProfiledRun,
    SteadyStateResult,
    clear_baseline_cache,
    measure_baseline,
    measure_profiler,
    run_steady_state,
)

__all__ = [
    "BaselineResult",
    "ProfiledRun",
    "SteadyStateResult",
    "clear_baseline_cache",
    "measure_baseline",
    "measure_profiler",
    "run_steady_state",
]
