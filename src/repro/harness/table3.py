"""Table 3 — per-benchmark overhead and accuracy breakdown.

Compares the timer-based baseline (equivalent to CBS with Stride=1,
Samples=1, as the paper uses for J9) against the chosen CBS
configuration: Jikes RVM uses Stride=3, Samples=16; J9 uses Stride=7,
Samples=32.  Reports small and large inputs plus group averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import BENCHMARKS
from repro.harness.report import render_table
from repro.harness.runner import measure_profiler
from repro.profiling.cbs import CBSProfiler
from repro.profiling.timer_sampler import TimerProfiler

#: The per-VM CBS configurations the paper selected for Table 3.
CBS_PARAMS = {"jikes": (3, 16), "j9": (7, 32)}


@dataclass
class Table3Row:
    benchmark: str
    size: str
    base_overhead: float
    base_accuracy: float
    cbs_overhead: float
    cbs_accuracy: float


def compute_table3(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    sizes: tuple[str, ...] = ("small", "large"),
    use_timer_base: bool | None = None,
) -> list[Table3Row]:
    """``use_timer_base``: Jikes RVM's base profiler is its original
    timer mechanism; J9 has no timer DCG profiler, so its base is CBS
    with Stride=1, Samples=1 (paper §6.2).  ``None`` picks per VM."""
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    stride, samples = CBS_PARAMS[vm_name]
    if use_timer_base is None:
        use_timer_base = vm_name == "jikes"
    rows: list[Table3Row] = []
    for size in sizes:
        for name in names:
            if use_timer_base:
                base_profiler = TimerProfiler()
            else:
                base_profiler = CBSProfiler(stride=1, samples_per_tick=1)
            base = measure_profiler(name, size, base_profiler, vm_name=vm_name)
            cbs = measure_profiler(
                name,
                size,
                CBSProfiler(stride=stride, samples_per_tick=samples),
                vm_name=vm_name,
            )
            rows.append(
                Table3Row(
                    benchmark=name,
                    size=size,
                    base_overhead=base.overhead_percent,
                    base_accuracy=base.accuracy,
                    cbs_overhead=cbs.overhead_percent,
                    cbs_accuracy=cbs.accuracy,
                )
            )
    return rows


def _average(rows: list[Table3Row], size: str | None, label: str) -> Table3Row:
    selected = [r for r in rows if size is None or r.size == size]
    count = len(selected)
    return Table3Row(
        benchmark=label,
        size=size or "all",
        base_overhead=sum(r.base_overhead for r in selected) / count,
        base_accuracy=sum(r.base_accuracy for r in selected) / count,
        cbs_overhead=sum(r.cbs_overhead for r in selected) / count,
        cbs_accuracy=sum(r.cbs_accuracy for r in selected) / count,
    )


def render_table3(rows: list[Table3Row], vm_name: str) -> str:
    stride, samples = CBS_PARAMS[vm_name]
    sizes = sorted({r.size for r in rows})
    display: list[Table3Row] = []
    for size in sizes:
        display.extend(r for r in rows if r.size == size)
        display.append(_average(rows, size, f"Average {size}"))
    if len(sizes) > 1:
        display.append(_average(rows, None, "Average all"))
    return render_table(
        ["Benchmark", "Ovhd-base%", "Acc-base", f"Ovhd-S{stride}/N{samples}%", "Acc-cbs"],
        [
            [
                f"{r.benchmark}-{r.size}" if not r.benchmark.startswith("Average") else r.benchmark,
                r.base_overhead,
                r.base_accuracy,
                r.cbs_overhead,
                r.cbs_accuracy,
            ]
            for r in display
        ],
        title=f"Table 3 ({vm_name}): overhead and accuracy breakdown",
    )


def main(quick: bool = False, vm_name: str = "jikes") -> str:
    if quick:
        rows = compute_table3(
            vm_name, benchmarks=list(BENCHMARKS)[:4], sizes=("tiny",)
        )
    else:
        rows = compute_table3(vm_name)
    return render_table3(rows, vm_name)
