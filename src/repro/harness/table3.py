"""Table 3 — per-benchmark overhead and accuracy breakdown.

Compares the timer-based baseline (equivalent to CBS with Stride=1,
Samples=1, as the paper uses for J9) against the chosen CBS
configuration: Jikes RVM uses Stride=3, Samples=16; J9 uses Stride=7,
Samples=32.  Reports small and large inputs plus group averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import BENCHMARKS
from repro.harness.parallel import SweepCell, run_sweep
from repro.harness.report import render_table

#: The per-VM CBS configurations the paper selected for Table 3.
CBS_PARAMS = {"jikes": (3, 16), "j9": (7, 32)}


@dataclass
class Table3Row:
    benchmark: str
    size: str
    base_overhead: float
    base_accuracy: float
    cbs_overhead: float
    cbs_accuracy: float


def compute_table3(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    sizes: tuple[str, ...] = ("small", "large"),
    use_timer_base: bool | None = None,
    jobs: int = 1,
) -> list[Table3Row]:
    """``use_timer_base``: Jikes RVM's base profiler is its original
    timer mechanism; J9 has no timer DCG profiler, so its base is CBS
    with Stride=1, Samples=1 (paper §6.2).  ``None`` picks per VM."""
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    stride, samples = CBS_PARAMS[vm_name]
    if use_timer_base is None:
        use_timer_base = vm_name == "jikes"
    if use_timer_base:
        base_spec = ("timer", ())
    else:
        base_spec = ("cbs", (("stride", 1), ("samples_per_tick", 1)))
    cbs_args = (("stride", stride), ("samples_per_tick", samples))
    # Two cells per row, interleaved [base, cbs, base, cbs, ...] so the
    # sweep keeps adjacent cells on the same benchmark (warm baselines).
    specs = [(size, name) for size in sizes for name in names]
    sweep: list[SweepCell] = []
    for size, name in specs:
        sweep.append(
            SweepCell(
                benchmark=name,
                size=size,
                profiler=base_spec[0],
                profiler_args=base_spec[1],
                vm=vm_name,
            )
        )
        sweep.append(
            SweepCell(
                benchmark=name,
                size=size,
                profiler="cbs",
                profiler_args=cbs_args,
                vm=vm_name,
            )
        )
    results = run_sweep(sweep, jobs)
    rows: list[Table3Row] = []
    for i, (size, name) in enumerate(specs):
        base, cbs = results[2 * i], results[2 * i + 1]
        rows.append(
            Table3Row(
                benchmark=name,
                size=size,
                base_overhead=base.overhead_percent,
                base_accuracy=base.accuracy,
                cbs_overhead=cbs.overhead_percent,
                cbs_accuracy=cbs.accuracy,
            )
        )
    return rows


def _average(rows: list[Table3Row], size: str | None, label: str) -> Table3Row:
    selected = [r for r in rows if size is None or r.size == size]
    count = len(selected)
    return Table3Row(
        benchmark=label,
        size=size or "all",
        base_overhead=sum(r.base_overhead for r in selected) / count,
        base_accuracy=sum(r.base_accuracy for r in selected) / count,
        cbs_overhead=sum(r.cbs_overhead for r in selected) / count,
        cbs_accuracy=sum(r.cbs_accuracy for r in selected) / count,
    )


def render_table3(rows: list[Table3Row], vm_name: str) -> str:
    stride, samples = CBS_PARAMS[vm_name]
    sizes = sorted({r.size for r in rows})
    display: list[Table3Row] = []
    for size in sizes:
        display.extend(r for r in rows if r.size == size)
        display.append(_average(rows, size, f"Average {size}"))
    if len(sizes) > 1:
        display.append(_average(rows, None, "Average all"))
    return render_table(
        ["Benchmark", "Ovhd-base%", "Acc-base", f"Ovhd-S{stride}/N{samples}%", "Acc-cbs"],
        [
            [
                f"{r.benchmark}-{r.size}" if not r.benchmark.startswith("Average") else r.benchmark,
                r.base_overhead,
                r.base_accuracy,
                r.cbs_overhead,
                r.cbs_accuracy,
            ]
            for r in display
        ],
        title=f"Table 3 ({vm_name}): overhead and accuracy breakdown",
    )


def main(quick: bool = False, vm_name: str = "jikes", jobs: int = 1) -> str:
    if quick:
        rows = compute_table3(
            vm_name, benchmarks=list(BENCHMARKS)[:4], sizes=("tiny",), jobs=jobs
        )
    else:
        rows = compute_table3(vm_name, jobs=jobs)
    return render_table3(rows, vm_name)
