"""Table 2 — overhead and accuracy of CBS across the parameter grid.

For every (Stride, Samples-per-timer-interrupt) pair: the percentage
runtime overhead relative to an unprofiled system, and the accuracy
(overlap vs the exhaustive profile), both averaged over the benchmark
suite.  Table 2A runs the ``jikes`` VM configuration, Table 2B ``j9``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import BENCHMARKS
from repro.harness.parallel import SweepCell, run_sweep
from repro.harness.report import render_grid

#: The paper's parameter grid.
STRIDES = [1, 3, 7, 15, 31, 63]
SAMPLES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 2048, 4096, 8192]

QUICK_STRIDES = [1, 3, 15]
QUICK_SAMPLES = [1, 16, 128, 1024]


@dataclass
class GridCell:
    stride: int
    samples: int
    overhead_percent: float
    accuracy: float


def compute_table2(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    size: str = "small",
    strides: list[int] | None = None,
    samples_values: list[int] | None = None,
    seed: int = 1234,
    jobs: int = 1,
) -> list[GridCell]:
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    strides = strides if strides is not None else STRIDES
    samples_values = samples_values if samples_values is not None else SAMPLES
    # One sweep cell per (grid point, benchmark); the flattened order
    # matches the original nested loops, so per-point averages sum the
    # same floats in the same order for any job count.
    points = [(stride, samples) for stride in strides for samples in samples_values]
    sweep = [
        SweepCell(
            benchmark=name,
            size=size,
            profiler="cbs",
            profiler_args=(
                ("stride", stride),
                ("samples_per_tick", samples),
                ("seed", seed),
            ),
            vm=vm_name,
        )
        for stride, samples in points
        for name in names
    ]
    results = run_sweep(sweep, jobs)
    cells: list[GridCell] = []
    per_point = len(names)
    for i, (stride, samples) in enumerate(points):
        chunk = results[i * per_point : (i + 1) * per_point]
        cells.append(
            GridCell(
                stride=stride,
                samples=samples,
                overhead_percent=sum(r.overhead_percent for r in chunk) / per_point,
                accuracy=sum(r.accuracy for r in chunk) / per_point,
            )
        )
    return cells


def render_table2(cells: list[GridCell], vm_name: str) -> str:
    strides = sorted({c.stride for c in cells})
    samples = sorted({c.samples for c in cells})
    grid = {
        (c.samples, c.stride): f"{c.overhead_percent:.1f}/{c.accuracy:.0f}"
        for c in cells
    }
    label = "2A (Jikes RVM)" if vm_name == "jikes" else "2B (J9)"
    return render_grid(
        "Samples",
        samples,
        "Stride",
        strides,
        grid,
        title=(
            f"Table {label}: overhead%/accuracy for CBS parameter grid "
            f"(cell = overhead%/accuracy)"
        ),
    )


def main(quick: bool = False, vm_name: str = "jikes", jobs: int = 1) -> str:
    if quick:
        cells = compute_table2(
            vm_name,
            benchmarks=list(BENCHMARKS)[:4],
            size="tiny",
            strides=QUICK_STRIDES,
            samples_values=QUICK_SAMPLES,
            jobs=jobs,
        )
    else:
        cells = compute_table2(vm_name, jobs=jobs)
    return render_table2(cells, vm_name)
