"""Figure 5 — speedup from profile-directed inlining, timer vs CBS.

Left graph (Jikes RVM): steady-state speedup of profile-guided inlining
(new inliner) with the timer-only profile and with CBS, relative to the
same system using static heuristics only.

Right graph (J9): the same comparison with the J9 inliner, whose
dynamic heuristics *suppress* inlining at cold sites; the compile-time
delta is also reported, since the paper found the dynamic heuristics
reduced compilation time ~9% on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.controller import AdaptiveConfig
from repro.benchsuite.suite import BENCHMARKS, program_for
from repro.harness.report import render_bars, render_table
from repro.harness.runner import run_steady_state
from repro.inlining.j9_inliner import J9Inliner
from repro.inlining.new_inliner import NewJikesInliner
from repro.profiling.cbs import CBSProfiler
from repro.profiling.timer_sampler import TimerProfiler

#: CBS parameters per VM, as in Table 3.
CBS_PARAMS = {"jikes": (3, 16), "j9": (7, 32)}

#: Benchmarks the paper could configure for steady-state iteration.
STEADY_BENCHMARKS = [
    "compress",
    "jess",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
    "jbb",
    "kawa",
]


@dataclass
class Figure5Row:
    benchmark: str
    timer_speedup: float
    cbs_speedup: float
    compile_time_static: int = 0
    compile_time_cbs: int = 0

    @property
    def compile_time_reduction(self) -> float:
        if self.compile_time_static == 0:
            return 0.0
        return 100.0 * (
            self.compile_time_static - self.compile_time_cbs
        ) / self.compile_time_static


def _policy_for(vm_name: str, program):
    if vm_name == "jikes":
        return NewJikesInliner(program)
    return J9Inliner(program)


def _adaptive_config_for(vm_name: str) -> AdaptiveConfig:
    # J9's dynamic guarding is single-target (paper §5.2); PIC-style
    # chain extension is the Jikes new inliner's trick.
    return AdaptiveConfig(extend_guard_chains=(vm_name == "jikes"))


def compute_figure5(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    size: str = "small",
    iterations: int = 10,
) -> list[Figure5Row]:
    names = benchmarks if benchmarks is not None else STEADY_BENCHMARKS
    stride, samples = CBS_PARAMS[vm_name]
    rows: list[Figure5Row] = []
    for name in names:
        program = program_for(name, size)
        static = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=CBSProfiler(stride=stride, samples_per_tick=samples),
            iterations=iterations,
            use_profile=False,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        timer = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=TimerProfiler(),
            iterations=iterations,
            use_profile=True,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        cbs = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=CBSProfiler(stride=stride, samples_per_tick=samples),
            iterations=iterations,
            use_profile=True,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        rows.append(
            Figure5Row(
                benchmark=name,
                timer_speedup=100.0 * (static.steady_time - timer.steady_time)
                / timer.steady_time,
                cbs_speedup=100.0 * (static.steady_time - cbs.steady_time)
                / cbs.steady_time,
                compile_time_static=static.compile_time,
                compile_time_cbs=cbs.compile_time,
            )
        )
    return rows


def render_figure5(rows: list[Figure5Row], vm_name: str) -> str:
    side = "left: Jikes RVM, new inliner" if vm_name == "jikes" else "right: J9 inliner"
    table_rows = []
    for r in rows:
        row = [r.benchmark, r.timer_speedup, r.cbs_speedup]
        if vm_name == "j9":
            row.append(r.compile_time_reduction)
        table_rows.append(row)
    avg = [
        "Average",
        sum(r.timer_speedup for r in rows) / len(rows),
        sum(r.cbs_speedup for r in rows) / len(rows),
    ]
    headers = ["Benchmark", "timer-only %", "cbs %"]
    if vm_name == "j9":
        headers.append("compile-time red. %")
        avg.append(sum(r.compile_time_reduction for r in rows) / len(rows))
    table_rows.append(avg)
    table = render_table(
        headers,
        table_rows,
        title=(
            f"Figure 5 ({side}): % speedup of profile-directed inlining over "
            f"static-heuristics-only"
        ),
    )
    bars = render_bars(
        [r.benchmark for r in rows],
        {
            "timer": [r.timer_speedup for r in rows],
            "cbs": [r.cbs_speedup for r in rows],
        },
    )
    return table + "\n\n" + bars


def main(quick: bool = False, vm_name: str = "jikes") -> str:
    if quick:
        rows = compute_figure5(
            vm_name, benchmarks=STEADY_BENCHMARKS[:3], size="tiny", iterations=6
        )
    else:
        rows = compute_figure5(vm_name)
    return render_figure5(rows, vm_name)
