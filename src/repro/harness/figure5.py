"""Figure 5 — speedup from profile-directed inlining, timer vs CBS.

Left graph (Jikes RVM): steady-state speedup of profile-guided inlining
(new inliner) with the timer-only profile and with CBS, relative to the
same system using static heuristics only.

Right graph (J9): the same comparison with the J9 inliner, whose
dynamic heuristics *suppress* inlining at cold sites; the compile-time
delta is also reported, since the paper found the dynamic heuristics
reduced compilation time ~9% on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.controller import AdaptiveConfig
from repro.adaptive.modes import jit_only_cache
from repro.benchsuite.suite import BENCHMARKS, program_for
from repro.harness.parallel import pmap
from repro.harness.report import render_bars, render_table
from repro.harness.runner import run_steady_state
from repro.inlining.j9_inliner import J9Inliner
from repro.inlining.new_inliner import NewJikesInliner
from repro.profiling.cbs import CBSProfiler
from repro.profiling.receivers import ReceiverProfile
from repro.profiling.timer_sampler import TimerProfiler
from repro.vm.config import config_named
from repro.vm.interpreter import Interpreter

#: CBS parameters per VM, as in Table 3.
CBS_PARAMS = {"jikes": (3, 16), "j9": (7, 32)}

#: Benchmarks the paper could configure for steady-state iteration.
STEADY_BENCHMARKS = [
    "compress",
    "jess",
    "db",
    "javac",
    "mpegaudio",
    "mtrt",
    "jack",
    "jbb",
    "kawa",
]


@dataclass
class Figure5Row:
    benchmark: str
    timer_speedup: float
    cbs_speedup: float
    compile_time_static: int = 0
    compile_time_cbs: int = 0

    @property
    def compile_time_reduction(self) -> float:
        if self.compile_time_static == 0:
            return 0.0
        return 100.0 * (
            self.compile_time_static - self.compile_time_cbs
        ) / self.compile_time_static


def _policy_for(vm_name: str, program):
    if vm_name == "jikes":
        return NewJikesInliner(program)
    return J9Inliner(program)


def _adaptive_config_for(vm_name: str) -> AdaptiveConfig:
    # J9's dynamic guarding is single-target (paper §5.2); PIC-style
    # chain extension is the Jikes new inliner's trick.
    return AdaptiveConfig(extend_guard_chains=(vm_name == "jikes"))


def compute_figure5(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    size: str = "small",
    iterations: int = 10,
) -> list[Figure5Row]:
    names = benchmarks if benchmarks is not None else STEADY_BENCHMARKS
    stride, samples = CBS_PARAMS[vm_name]
    rows: list[Figure5Row] = []
    for name in names:
        program = program_for(name, size)
        static = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=CBSProfiler(stride=stride, samples_per_tick=samples),
            iterations=iterations,
            use_profile=False,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        timer = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=TimerProfiler(),
            iterations=iterations,
            use_profile=True,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        cbs = run_steady_state(
            name,
            size,
            vm_name,
            _policy_for(vm_name, program),
            profiler=CBSProfiler(stride=stride, samples_per_tick=samples),
            iterations=iterations,
            use_profile=True,
            adaptive_config=_adaptive_config_for(vm_name),
        )
        rows.append(
            Figure5Row(
                benchmark=name,
                timer_speedup=100.0 * (static.steady_time - timer.steady_time)
                / timer.steady_time,
                cbs_speedup=100.0 * (static.steady_time - cbs.steady_time)
                / cbs.steady_time,
                compile_time_static=static.compile_time,
                compile_time_cbs=cbs.compile_time,
            )
        )
    return rows


def render_figure5(rows: list[Figure5Row], vm_name: str) -> str:
    side = "left: Jikes RVM, new inliner" if vm_name == "jikes" else "right: J9 inliner"
    table_rows = []
    for r in rows:
        row = [r.benchmark, r.timer_speedup, r.cbs_speedup]
        if vm_name == "j9":
            row.append(r.compile_time_reduction)
        table_rows.append(row)
    avg = [
        "Average",
        sum(r.timer_speedup for r in rows) / len(rows),
        sum(r.cbs_speedup for r in rows) / len(rows),
    ]
    headers = ["Benchmark", "timer-only %", "cbs %"]
    if vm_name == "j9":
        headers.append("compile-time red. %")
        avg.append(sum(r.compile_time_reduction for r in rows) / len(rows))
    table_rows.append(avg)
    table = render_table(
        headers,
        table_rows,
        title=(
            f"Figure 5 ({side}): % speedup of profile-directed inlining over "
            f"static-heuristics-only"
        ),
    )
    bars = render_bars(
        [r.benchmark for r in rows],
        {
            "timer": [r.timer_speedup for r in rows],
            "cbs": [r.cbs_speedup for r in rows],
        },
    )
    return table + "\n\n" + bars


# -- receiver-distribution accuracy (exact IC profile vs sampled CBS) -------------


@dataclass
class ReceiverSiteRow:
    """One hot virtual call site: exact IC counts vs the CBS sample."""

    benchmark: str
    site: str  #: "Caller.qualified_name@pc"
    classes: int  #: distinct receiver classes observed
    calls: int  #: exact call count (from the inline caches)
    overlap: float  #: distribution overlap with the CBS sample, percent


def _receiver_cell(cell: tuple) -> list[ReceiverSiteRow]:
    """Measure one benchmark (top-level so it pickles under ``--jobs``).

    One JIT-only run with inline caches on and CBS attached yields both
    profiles of the *same* execution: the exact per-site receiver counts
    the ICs accumulate as a dispatch by-product, and the sampled DCG.
    """
    name, size, vm_name, hot = cell
    stride, samples = CBS_PARAMS[vm_name]
    program = program_for(name, size)
    config = config_named(vm_name)
    cache = jit_only_cache(program, config.cost_model, level=0)
    vm = Interpreter(program, config, cache)
    profiler = CBSProfiler(stride=stride, samples_per_tick=samples)
    vm.attach_profiler(profiler)
    vm.run()
    exact = ReceiverProfile.from_cache(cache)
    rows = []
    for (caller, pc), total in exact.hot_sites(hot):
        counts = exact.site_counts(caller, pc)
        rows.append(
            ReceiverSiteRow(
                benchmark=name,
                site=f"{program.functions[caller].qualified_name}@{pc}",
                classes=len(counts),
                calls=int(total),
                overlap=exact.site_overlap(program, profiler.dcg, caller, pc),
            )
        )
    return rows


def compute_receiver_accuracy(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    size: str = "small",
    hot_sites: int = 5,
    jobs: int = 1,
) -> list[ReceiverSiteRow]:
    """Per-hot-site receiver-distribution accuracy of CBS, across the
    steady-state suite.  Cells are independent single runs, so they fan
    out over processes; results are identical for any ``jobs``."""
    names = benchmarks if benchmarks is not None else STEADY_BENCHMARKS
    cells = [(name, size, vm_name, hot_sites) for name in names]
    return [row for rows in pmap(_receiver_cell, cells, jobs) for row in rows]


def render_receiver_accuracy(rows: list[ReceiverSiteRow], vm_name: str) -> str:
    table_rows = [
        [r.benchmark, r.site, r.classes, r.calls, r.overlap] for r in rows
    ]
    if rows:
        table_rows.append(
            [
                "Mean",
                "",
                "",
                "",
                sum(r.overlap for r in rows) / len(rows),
            ]
        )
    return render_table(
        ["Benchmark", "Hot virtual site", "classes", "exact calls", "cbs overlap %"],
        table_rows,
        title=(
            f"Receiver-distribution accuracy ({vm_name}): CBS sample vs the "
            f"exact inline-cache profile, per hot site"
        ),
    )


def main(quick: bool = False, vm_name: str = "jikes", jobs: int = 1) -> str:
    if quick:
        rows = compute_figure5(
            vm_name, benchmarks=STEADY_BENCHMARKS[:3], size="tiny", iterations=6
        )
        receiver_rows = compute_receiver_accuracy(
            vm_name, benchmarks=STEADY_BENCHMARKS[:3], size="tiny",
            hot_sites=3, jobs=jobs,
        )
    else:
        rows = compute_figure5(vm_name)
        receiver_rows = compute_receiver_accuracy(vm_name, jobs=jobs)
    return (
        render_figure5(rows, vm_name)
        + "\n\n"
        + render_receiver_accuracy(receiver_rows, vm_name)
    )
