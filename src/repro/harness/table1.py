"""Table 1 — benchmark characteristics.

For each benchmark and input size: running time (virtual seconds),
methods executed, and total executed bytecode size (KB).  The paper's
Table 1 reports the same three columns measured on a production Jikes
RVM build.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import BENCHMARKS
from repro.harness.parallel import pmap
from repro.harness.report import render_table
from repro.harness.runner import measure_baseline

#: Calibration: one virtual-time unit ≈ 0.1 µs (see cost model docs).
SECONDS_PER_UNIT = 1e-7


@dataclass
class Table1Row:
    benchmark: str
    small_time_s: float
    small_methods: int
    small_kb: float
    large_time_s: float
    large_methods: int
    large_kb: float


def _baseline_stats(item: tuple[str, str, str]) -> tuple[int, int, int]:
    """Worker for :func:`pmap`: top-level (picklable), scalars out."""
    name, size, vm_name = item
    result = measure_baseline(name, size, vm_name)
    return result.time, result.methods_executed, result.bytecode_bytes


def compute_table1(
    benchmarks: list[str] | None = None,
    vm_name: str = "jikes",
    sizes: tuple[str, str] = ("small", "large"),
    jobs: int = 1,
) -> list[Table1Row]:
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    items = [(name, size, vm_name) for name in names for size in sizes]
    stats = pmap(_baseline_stats, items, jobs)
    rows: list[Table1Row] = []
    for i, name in enumerate(names):
        small, large = stats[2 * i], stats[2 * i + 1]
        rows.append(
            Table1Row(
                benchmark=name,
                small_time_s=small[0] * SECONDS_PER_UNIT,
                small_methods=small[1],
                small_kb=small[2] / 1024.0,
                large_time_s=large[0] * SECONDS_PER_UNIT,
                large_methods=large[1],
                large_kb=large[2] / 1024.0,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    return render_table(
        ["Benchmark", "T-small(s)", "Meth", "Size(K)", "T-large(s)", "Meth", "Size(K)"],
        [
            [
                r.benchmark,
                r.small_time_s,
                r.small_methods,
                r.small_kb,
                r.large_time_s,
                r.large_methods,
                r.large_kb,
            ]
            for r in rows
        ],
        title="Table 1: Benchmarks used in this study",
    )


def main(quick: bool = False, vm_name: str = "jikes", jobs: int = 1) -> str:
    names = list(BENCHMARKS)[:4] if quick else None
    sizes = ("tiny", "small") if quick else ("small", "large")
    return render_table1(compute_table1(names, vm_name, sizes, jobs=jobs))
