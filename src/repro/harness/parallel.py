"""Parallel fan-out for the experiment harness.

The harness's unit of work is a *cell*: one (benchmark, profiler, seed)
combination run on one VM configuration.  Cells are completely
independent — every run builds its own program, code cache, and
interpreter, and the VM's clock is virtual — so they parallelize
perfectly across host processes.

Two layers:

* :func:`pmap` — a deterministic ordered map.  ``jobs <= 1`` runs the
  function inline in this process (no executor, no pickling, identical
  tracebacks); ``jobs > 1`` fans out over a ``ProcessPoolExecutor``
  using ``executor.map``, which preserves input order regardless of
  completion order.  Results are therefore byte-identical for any job
  count.
* :func:`run_sweep` — maps :func:`run_cell` over :class:`SweepCell`
  descriptions.  Cells and results are plain picklable dataclasses of
  scalars; profilers are named, not passed, and constructed inside the
  worker so nothing stateful crosses the process boundary.

The per-run baseline cache in :mod:`repro.harness.runner` is
per-process; workers each warm their own.  Sweeps are grouped by
benchmark (the executor maps in input order with ``chunksize`` 1, so
adjacent cells of one benchmark tend to land on warm workers).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.harness.runner import measure_profiler
from repro.profiling.cbs import CBSProfiler
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.timer_sampler import TimerProfiler


def pmap(fn, items, jobs: int = 1) -> list:
    """Map ``fn`` over ``items``, in order, optionally across processes.

    With ``jobs == 1`` (or fewer than two items) this is a plain list
    comprehension — no executor is created, so callers pay nothing for
    the parallel capability when they don't use it and ``fn`` need not
    be picklable.  With ``jobs > 1``, ``fn`` and every item must be
    picklable (top-level functions, dataclasses of scalars).
    ``jobs <= 0`` auto-detects the host's CPU count.
    """
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    items = list(items)
    if jobs <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, items, chunksize=1))


#: Profiler factories by name.  Constructed inside the worker process;
#: ``kwargs`` come from ``SweepCell.profiler_args``.
PROFILER_FACTORIES = {
    "exhaustive": ExhaustiveProfiler,
    "timer": TimerProfiler,
    "cbs": CBSProfiler,
}


@dataclass(frozen=True)
class SweepCell:
    """One independent experiment: picklable description, no live objects.

    ``profiler_args`` is a tuple of ``(name, value)`` pairs (not a dict)
    so cells stay hashable and deterministic under pickling.
    """

    benchmark: str
    size: str = "small"
    profiler: str = "cbs"
    profiler_args: tuple = ()
    vm: str = "jikes"
    opt_level: int = 0

    def make_profiler(self):
        factory = PROFILER_FACTORIES.get(self.profiler)
        if factory is None:
            raise ValueError(
                f"unknown profiler {self.profiler!r}; "
                f"expected one of {sorted(PROFILER_FACTORIES)}"
            )
        return factory(**dict(self.profiler_args))


@dataclass(frozen=True)
class SweepResult:
    """Scalars only — crosses the process boundary without surprises."""

    cell: SweepCell
    accuracy: float
    overhead_percent: float
    samples: int
    time: int


def run_cell(cell: SweepCell) -> SweepResult:
    """Execute one cell.  Top-level so it pickles for worker processes."""
    run = measure_profiler(
        cell.benchmark,
        cell.size,
        cell.make_profiler(),
        vm_name=cell.vm,
        opt_level=cell.opt_level,
    )
    return SweepResult(
        cell=cell,
        accuracy=run.accuracy,
        overhead_percent=run.overhead_percent,
        samples=run.samples,
        time=run.time,
    )


def run_sweep(cells: list[SweepCell], jobs: int = 1) -> list[SweepResult]:
    """Run every cell; results are in cell order for any ``jobs``."""
    return pmap(run_cell, cells, jobs)
