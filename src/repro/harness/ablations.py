"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one knob:

* :func:`stride_vs_samples` — which parameter buys the accuracy (the
  paper: javac's gain was "mostly due to increasing Samples"),
* :func:`skip_policy_comparison` — random vs round-robin initial skip,
* :func:`entry_check_cost` — overloaded flag vs dedicated 3-instruction
  check (paper §4 "Implementation Options"),
* :func:`inliner_comparison` — old vs new Jikes inliner under the same
  profile (paper §5.1: the new inliner won ~3% even with timer data),
* :func:`context_sensitivity_cost` — what deeper stack walks buy and
  cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import program_for
from repro.harness.runner import (
    measure_baseline,
    measure_profiler,
    run_steady_state,
)
from repro.profiling.cbs import CBSProfiler
from repro.profiling.cct import context_overlap
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.timer_sampler import TimerProfiler
from repro.adaptive.modes import jit_only_cache
from repro.inlining.new_inliner import NewJikesInliner
from repro.inlining.old_inliner import OldJikesInliner
from repro.vm.config import config_named
from repro.vm.interpreter import Interpreter


@dataclass
class AblationPoint:
    label: str
    accuracy: float = 0.0
    overhead_percent: float = 0.0
    extra: float = 0.0


def _average_accuracy(benchmarks, size, profiler_factory, vm_name="jikes"):
    accuracies = []
    overheads = []
    for name in benchmarks:
        run = measure_profiler(name, size, profiler_factory(), vm_name=vm_name)
        accuracies.append(run.accuracy)
        overheads.append(run.overhead_percent)
    count = len(benchmarks)
    return sum(accuracies) / count, sum(overheads) / count


def stride_vs_samples(
    benchmarks: list[str], size: str = "small", budget: int = 64
) -> list[AblationPoint]:
    """Hold the per-tick *sampling budget* fixed and trade stride against
    samples: (stride, samples) pairs with samples <= budget."""
    points = []
    configurations = [
        ("samples-only", 1, budget),
        ("balanced", 7, budget // 8),
        ("stride-heavy", 31, max(budget // 32, 1)),
        ("stride-only", budget, 1),
    ]
    for label, stride, samples in configurations:
        acc, ovh = _average_accuracy(
            benchmarks,
            size,
            lambda s=stride, n=samples: CBSProfiler(stride=s, samples_per_tick=n),
        )
        points.append(AblationPoint(f"{label} (S={stride},N={samples})", acc, ovh))
    return points


def skip_policy_comparison(
    benchmarks: list[str], size: str = "small", stride: int = 15, samples: int = 16
) -> list[AblationPoint]:
    points = []
    for policy in ("random", "roundrobin"):
        acc, ovh = _average_accuracy(
            benchmarks,
            size,
            lambda p=policy: CBSProfiler(
                stride=stride, samples_per_tick=samples, skip_policy=p
            ),
        )
        points.append(AblationPoint(policy, acc, ovh))
    return points


def entry_check_cost(name: str, size: str = "small") -> list[AblationPoint]:
    """Overloaded flag (zero idle cost) vs dedicated 3-instruction check."""
    points = []
    for label, overloaded in (("overloaded-flag", True), ("dedicated-check", False)):
        config = config_named("jikes", overloaded_entry_check=overloaded)
        program = program_for(name, size)
        vm = Interpreter(
            program, config, jit_only_cache(program, config.cost_model, 0)
        )
        vm.run()
        points.append(AblationPoint(label, extra=float(vm.time)))
    base = points[0].extra
    for point in points:
        point.overhead_percent = 100.0 * (point.extra - base) / base
    return points


def inliner_comparison(
    benchmarks: list[str], size: str = "small", iterations: int = 8
) -> list[AblationPoint]:
    """Old vs new Jikes inliner, both fed the same CBS profile; speedups
    are relative to the old inliner with timer profiles (the pre-paper
    production configuration)."""
    points = []
    reference = {}
    for name in benchmarks:
        program = program_for(name, size)
        reference[name] = run_steady_state(
            name, size, "jikes", OldJikesInliner(program),
            profiler=TimerProfiler(), iterations=iterations,
        ).steady_time
    configurations = [
        ("old+timer", OldJikesInliner, TimerProfiler),
        ("old+cbs", OldJikesInliner,
         lambda: CBSProfiler(stride=3, samples_per_tick=16)),
        ("new+timer", NewJikesInliner, TimerProfiler),
        ("new+cbs", NewJikesInliner,
         lambda: CBSProfiler(stride=3, samples_per_tick=16)),
    ]
    for label, policy_class, profiler_factory in configurations:
        speedups = []
        for name in benchmarks:
            program = program_for(name, size)
            result = run_steady_state(
                name, size, "jikes", policy_class(program),
                profiler=profiler_factory(), iterations=iterations,
            )
            speedups.append(
                100.0 * (reference[name] - result.steady_time) / result.steady_time
            )
        points.append(
            AblationPoint(label, extra=sum(speedups) / len(speedups))
        )
    return points


def context_sensitivity_cost(
    name: str = "kawa", size: str = "small", depths: tuple[int, ...] = (1, 2, 4, 8)
) -> list[AblationPoint]:
    """Cost and payoff of deeper stack walks per sample.

    Accuracy column: plain context-insensitive overlap (unchanged by the
    extension).  ``extra``: number of distinct contexts observed — what
    the deeper walk buys.
    """
    points = []
    baseline = measure_baseline(name, size)
    for depth in depths:
        profiler = CBSProfiler(stride=3, samples_per_tick=16, context_depth=depth)
        run = measure_profiler(name, size, profiler)
        contexts = (
            profiler.cct.node_count() if profiler.cct is not None else len(
                profiler.dcg.edges())
        )
        points.append(
            AblationPoint(
                f"depth={depth}", run.accuracy, run.overhead_percent, float(contexts)
            )
        )
    del baseline
    return points


def context_profile_agreement(
    name: str = "kawa", size: str = "small", depth: int = 4
) -> float:
    """Overlap between two independently seeded context-sensitive CBS
    profiles — a stability measure for the CCT extension."""
    program = program_for(name, size)
    profiles = []
    for seed in (11, 17):
        config = config_named("jikes")
        vm = Interpreter(
            program, config, jit_only_cache(program, config.cost_model, 0)
        )
        profiler = CBSProfiler(
            stride=3, samples_per_tick=16, context_depth=depth, seed=seed
        )
        vm.attach_profiler(profiler)
        perfect = ExhaustiveProfiler()
        perfect.install(vm)
        vm.run()
        profiles.append(profiler.cct.context_profile())
    return context_overlap(profiles[0], profiles[1])
