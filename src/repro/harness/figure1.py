"""Figure 1 — the timer-sampling pathology, demonstrated.

Runs the paper's adversarial program (a long non-call sequence followed
by two short calls) under the timer profiler, the Whaley sampler, and
CBS, and reports each profiler's view of the ``call_1``/``call_2`` edge
split against the exhaustive truth (exactly 50/50).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import ADVERSARIAL, program_for
from repro.harness.report import render_table
from repro.harness.runner import measure_profiler
from repro.profiling.cbs import CBSProfiler
from repro.profiling.timer_sampler import TimerProfiler
from repro.profiling.whaley import WhaleyProfiler


@dataclass
class Figure1Row:
    profiler: str
    call_1_percent: float
    call_2_percent: float
    accuracy: float
    samples: int


def _edge_split(dcg, program) -> tuple[float, float]:
    """Percent of DCG weight on call_1 vs call_2 edges."""
    call_1 = program.function_index("Worker.call_1")
    call_2 = program.function_index("Worker.call_2")
    w1 = w2 = 0.0
    for (unused_caller, unused_pc, callee), weight in dcg.edges().items():
        if callee == call_1:
            w1 += weight
        elif callee == call_2:
            w2 += weight
    total = dcg.total_weight
    if total == 0:
        return 0.0, 0.0
    return 100.0 * w1 / total, 100.0 * w2 / total


def compute_figure1(
    size: str = "small", vm_name: str = "jikes", stride: int = 7, samples: int = 32
) -> list[Figure1Row]:
    program = program_for(ADVERSARIAL.name, size)
    profilers = [
        ("timer", TimerProfiler()),
        ("whaley", WhaleyProfiler()),
        ("cbs", CBSProfiler(stride=stride, samples_per_tick=samples)),
    ]
    rows = []
    for label, profiler in profilers:
        run = measure_profiler(ADVERSARIAL.name, size, profiler, vm_name=vm_name)
        p1, p2 = _edge_split(profiler.dcg, program)
        rows.append(
            Figure1Row(
                profiler=label,
                call_1_percent=p1,
                call_2_percent=p2,
                accuracy=run.accuracy,
                samples=run.samples,
            )
        )
    rows.append(Figure1Row("perfect", 50.0, 50.0, 100.0, 0))
    return rows


def render_figure1(rows: list[Figure1Row]) -> str:
    return render_table(
        ["Profiler", "call_1 %", "call_2 %", "Accuracy", "Samples"],
        [
            [r.profiler, r.call_1_percent, r.call_2_percent, r.accuracy, r.samples]
            for r in rows
        ],
        title="Figure 1 claim: edge split on the adversarial program (truth: 50/50)",
    )


def main(quick: bool = False, vm_name: str = "jikes") -> str:
    size = "tiny" if quick else "small"
    return render_figure1(compute_figure1(size=size, vm_name=vm_name))
