"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.harness table1 [--quick] [--vm jikes|j9] [--jobs N]
    python -m repro.harness table2a [--quick]
    python -m repro.harness table2b [--quick]
    python -m repro.harness table3 [--vm jikes|j9] [--quick]
    python -m repro.harness figure1 [--quick]
    python -m repro.harness figure5-jikes [--quick]
    python -m repro.harness figure5-j9 [--quick]
    python -m repro.harness fleet [--quick]
    python -m repro.harness paths [--quick] [--vm jikes|j9]
    python -m repro.harness all [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import figure1, figure5, fleet, table1, table2, table3
from repro.harness import paths as paths_experiment
from repro.harness.convergence import (
    compare_convergence,
    phase_change_study,
    render_curves,
)


def _convergence(quick, vm, jobs):
    name = "jess" if quick else "javac"
    curves = compare_convergence(name, size="tiny" if quick else "small", vm_name=vm)
    return f"Convergence on {name} ({vm}):\n" + render_curves(curves)


def _phase(quick, vm, jobs):
    results = phase_change_study("jbb", size="tiny" if quick else "small", vm_name=vm)
    lines = ["Phase-change tracking on jbb (late-phase accuracy vs whole-run):"]
    for r in results:
        lines.append(
            f"  {r.label:20s} overall={r.overall_accuracy:5.1f}%  "
            f"late-phase={r.late_phase_accuracy:5.1f}%"
        )
    return "\n".join(lines)

#: Every experiment takes (quick, vm, jobs); those whose work is not a
#: flat cell sweep (figures, fleet, convergence) ignore ``jobs``.
_EXPERIMENTS = {
    "table1": lambda quick, vm, jobs: table1.main(quick, vm, jobs=jobs),
    "table2a": lambda quick, vm, jobs: table2.main(quick, "jikes", jobs=jobs),
    "table2b": lambda quick, vm, jobs: table2.main(quick, "j9", jobs=jobs),
    "table3": lambda quick, vm, jobs: table3.main(quick, vm, jobs=jobs),
    "table3-j9": lambda quick, vm, jobs: table3.main(quick, "j9", jobs=jobs),
    "figure1": lambda quick, vm, jobs: figure1.main(quick, vm),
    "figure5-jikes": lambda quick, vm, jobs: figure5.main(quick, "jikes", jobs=jobs),
    "figure5-j9": lambda quick, vm, jobs: figure5.main(quick, "j9", jobs=jobs),
    "fleet": lambda quick, vm, jobs: fleet.main(quick, vm),
    "paths": lambda quick, vm, jobs: paths_experiment.main(quick, vm, jobs=jobs),
    "convergence": _convergence,
    "phase-change": _phase,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced benchmark set / sizes, for smoke-testing",
    )
    parser.add_argument(
        "--vm",
        choices=["jikes", "j9"],
        default="jikes",
        help="VM configuration (for experiments that take one)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell sweeps (tables); results are "
        "identical for any value",
    )
    args = parser.parse_args(argv)

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(_EXPERIMENTS[name](args.quick, args.vm, args.jobs))
        print(f"[{name} completed in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
