"""Shared experiment plumbing for the table/figure harnesses.

Key invariant: profiling never changes *what* a benchmark executes, only
when the virtual timer fires, so the perfect (exhaustive, zero-cost) DCG
collected alongside a sampling profiler is identical to the baseline's.
Accuracy is therefore computed within a single run, and overhead against
a cached unprofiled baseline — exactly the paper's methodology with the
run-to-run noise removed by determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptive.controller import AdaptiveConfig, AdaptiveSystem
from repro.adaptive.modes import jit_only_cache
from repro.benchsuite.suite import program_for
from repro.profiling.dcg import DCG
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.metrics import accuracy
from repro.telemetry.scopes import trace_scope
from repro.vm.config import VMConfig, config_named
from repro.vm.interpreter import Interpreter


@dataclass
class BaselineResult:
    """One unprofiled, JIT-only run."""

    time: int
    steps: int
    calls: int
    methods_executed: int
    bytecode_bytes: int
    perfect_dcg: DCG
    output: list[int]


@dataclass
class ProfiledRun:
    """One run with a sampling profiler attached."""

    accuracy: float
    overhead_percent: float
    samples: int
    time: int
    profiler: object
    perfect_dcg: DCG


_baseline_cache: dict[tuple, BaselineResult] = {}


def _make_vm(name: str, size: str, config: VMConfig, opt_level: int) -> Interpreter:
    program = program_for(name, size)
    cache = jit_only_cache(program, config.cost_model, level=opt_level)
    return Interpreter(program, config, cache)


def measure_baseline(
    name: str, size: str, vm_name: str = "jikes", opt_level: int = 0
) -> BaselineResult:
    """Unprofiled JIT-only run (cached); includes the perfect DCG."""
    key = (name, size, vm_name, opt_level)
    cached = _baseline_cache.get(key)
    if cached is not None:
        return cached
    config = config_named(vm_name)
    vm = _make_vm(name, size, config, opt_level)
    perfect = ExhaustiveProfiler()
    perfect.install(vm)
    vm.run()
    result = BaselineResult(
        time=vm.time,
        steps=vm.steps,
        calls=vm.call_count,
        methods_executed=vm.methods_executed,
        bytecode_bytes=vm.program.total_bytecode_size(),
        perfect_dcg=perfect.dcg,
        output=list(vm.output),
    )
    _baseline_cache[key] = result
    return result


def measure_profiler(
    name: str,
    size: str,
    profiler,
    vm_name: str = "jikes",
    opt_level: int = 0,
    tracer=None,
) -> ProfiledRun:
    """Run once with ``profiler`` attached; report accuracy and overhead.

    An optional telemetry ``tracer`` is attached to the profiled VM and
    the run is bracketed in a ``profiled-run`` scope; tracing never
    changes virtual time, so overhead numbers are unaffected.
    """
    baseline = measure_baseline(name, size, vm_name, opt_level)
    config = config_named(vm_name)
    vm = _make_vm(name, size, config, opt_level)
    perfect = ExhaustiveProfiler()
    perfect.install(vm)
    vm.attach_profiler(profiler)
    if tracer is not None:
        vm.attach_telemetry(tracer)
    with trace_scope(tracer, "profiled-run", benchmark=name, size=size, vm=vm_name):
        vm.run()
    overhead = 100.0 * (vm.time - baseline.time) / baseline.time
    return ProfiledRun(
        accuracy=accuracy(profiler.dcg, perfect.dcg),
        overhead_percent=overhead,
        samples=getattr(profiler, "samples_taken", len(profiler.dcg.edges())),
        time=vm.time,
        profiler=profiler,
        perfect_dcg=perfect.dcg,
    )


@dataclass
class SteadyStateResult:
    """Adaptive run measured over warmup + steady iterations."""

    iteration_times: list[int]
    steady_time: int
    compile_time: int
    compile_count: int
    events: list = field(default_factory=list)


def run_steady_state(
    name: str,
    size: str,
    vm_name: str,
    policy,
    profiler=None,
    iterations: int = 10,
    steady_window: int = 3,
    use_profile: bool = True,
    adaptive_config: AdaptiveConfig | None = None,
    tracer=None,
) -> SteadyStateResult:
    """Figure 5 methodology: iterate the benchmark under the adaptive
    system; report the mean of the last ``steady_window`` iterations
    (the paper's "second minute")."""
    program = program_for(name, size)
    config = config_named(vm_name)
    cache = jit_only_cache(program, config.cost_model, level=0)
    vm = Interpreter(program, config, cache)
    if profiler is not None:
        vm.attach_profiler(profiler)
    if tracer is not None:
        vm.attach_telemetry(tracer)
    adaptive_config = adaptive_config or AdaptiveConfig()
    adaptive_config.use_profile = use_profile
    adaptive = AdaptiveSystem(program, policy, adaptive_config)
    adaptive.install(vm)

    times: list[int] = []
    previous = 0
    for iteration in range(iterations):
        with trace_scope(tracer, f"iteration-{iteration}", benchmark=name):
            vm.run()
        times.append(vm.time - previous)
        previous = vm.time
    steady = sum(times[-steady_window:]) // steady_window
    return SteadyStateResult(
        iteration_times=times,
        steady_time=steady,
        compile_time=vm.code_cache.compile_time,
        compile_count=vm.code_cache.compile_count,
        events=adaptive.events,
    )


def clear_baseline_cache() -> None:
    _baseline_cache.clear()
