"""The fleet warm-start experiment: closing the startup gap.

The paper's motivating failure mode for sampled profiles is the short
run: the program exits before the adaptive optimizer has collected
enough samples to promote anything.  This experiment shows the fleet
loop (docs/FLEET.md) closing that gap:

1. **Fleet phase** — several independent profiling runs of a benchmark
   publish their DCG deltas (the exact wire shape the fleet client
   sends) into one :class:`~repro.fleet.merge.AggregateProfile` with
   per-epoch decay, in-process stand-ins for a fleet of VMs feeding
   ``repro-mini serve``.
2. **Cold run** — a fresh adaptive VM iterates the benchmark and we
   record the virtual-time tick at which its hottest method first
   reaches opt level 2 the usual way (online samples).
3. **Warm run** — an identical VM is warm-started from the aggregate
   before execution; the hottest method is already at level 2 at tick 0.

The table reports ticks-to-level-2 and first-iteration virtual time for
both; warm-started runs reach level 2 in strictly fewer ticks and start
faster.  Run with ``python -m repro.harness fleet``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.controller import AdaptiveSystem
from repro.adaptive.modes import jit_only_cache
from repro.benchsuite.suite import program_for
from repro.fleet.merge import AggregateProfile, MergePolicy
from repro.inlining.new_inliner import NewJikesInliner
from repro.profiling.cbs import CBSProfiler
from repro.profiling.serialize import dcg_from_dict
from repro.telemetry import Tracer
from repro.vm.config import config_named
from repro.vm.interpreter import Interpreter

#: Short-running benchmarks: the workloads where cold starts hurt most.
BENCHMARKS = ("jess", "db", "compress", "jack")

FLEET_RUNS = 3
MAX_COLD_ITERATIONS = 60


@dataclass
class FleetResult:
    """Warm vs cold startup for one benchmark."""

    benchmark: str
    hot_method: str
    fleet_runs: int
    aggregate_edges: int
    cold_ticks_to_l2: int | None
    warm_ticks_to_l2: int
    cold_first_time: int
    warm_first_time: int
    outputs_match: bool


def _fresh_vm(program, vm_name: str) -> Interpreter:
    config = config_named(vm_name)
    cache = jit_only_cache(program, config.cost_model, level=0)
    return Interpreter(program, config, cache)


def _collect_fleet_profile(
    program, vm_name: str, runs: int
) -> AggregateProfile:
    """Simulate ``runs`` fleet members publishing deltas for ``program``."""
    names = [f.qualified_name for f in program.functions]
    aggregate = AggregateProfile(
        program.fingerprint(), MergePolicy(decay=0.5)
    )
    for run in range(runs):
        vm = _fresh_vm(program, vm_name)
        profiler = CBSProfiler(seed=1000 + run)
        vm.attach_profiler(profiler)
        vm.run()
        delta = [
            [names[caller], pc, names[callee], weight]
            for (caller, pc, callee), weight in sorted(profiler.dcg.edges().items())
        ]
        aggregate.merge_delta(delta, epoch=run, run_id=f"run-{run}")
    return aggregate


def _ticks_to_level2(adaptive: AdaptiveSystem, hot: int) -> int | None:
    for event in adaptive.events:
        if event.function_index == hot and event.level == 2:
            return event.tick
    return None


def run_benchmark(
    name: str, size: str, vm_name: str = "jikes"
) -> FleetResult:
    program = program_for(name, size)
    aggregate = _collect_fleet_profile(program, vm_name, FLEET_RUNS)
    warm_dcg = dcg_from_dict(aggregate.to_dict(), program)
    hot, hot_weight = max(
        warm_dcg.callee_weights().items(), key=lambda item: (item[1], -item[0])
    )
    # Aggregate weights are cross-run sample counts; promote anything
    # within 2x of the hottest method (always includes it).
    threshold = max(1.0, 0.5 * hot_weight)

    # Cold: iterate until the hottest method reaches level 2 online.
    cold_vm = _fresh_vm(program, vm_name)
    cold_vm.attach_profiler(CBSProfiler(seed=77))
    cold_adaptive = AdaptiveSystem(program, NewJikesInliner(program))
    cold_adaptive.install(cold_vm)
    cold_ticks = None
    cold_first_time = None
    cold_first_output = None
    for _ in range(MAX_COLD_ITERATIONS):
        cold_vm.run()
        if cold_first_time is None:
            cold_first_time = cold_vm.time
            cold_first_output = list(cold_vm.output)
        cold_ticks = _ticks_to_level2(cold_adaptive, hot)
        if cold_ticks is not None:
            break

    # Warm: identical VM, seeded from the fleet aggregate before tick 1.
    warm_vm = _fresh_vm(program, vm_name)
    warm_vm.attach_profiler(CBSProfiler(seed=77))
    tracer = Tracer()
    warm_vm.attach_telemetry(tracer)
    warm_adaptive = AdaptiveSystem(program, NewJikesInliner(program))
    warm_adaptive.install(warm_vm)
    promoted = warm_adaptive.warm_start(warm_vm, warm_dcg, threshold=threshold)
    assert hot in promoted, "hottest method must warm-start to level 2"
    warm_vm.run()
    warm_ticks = _ticks_to_level2(warm_adaptive, hot)

    return FleetResult(
        benchmark=name,
        hot_method=program.functions[hot].qualified_name,
        fleet_runs=FLEET_RUNS,
        aggregate_edges=len(aggregate),
        cold_ticks_to_l2=cold_ticks,
        warm_ticks_to_l2=warm_ticks if warm_ticks is not None else 0,
        cold_first_time=cold_first_time,
        warm_first_time=warm_vm.time,
        outputs_match=list(warm_vm.output) == cold_first_output,
    )


def main(quick: bool = False, vm_name: str = "jikes") -> str:
    size = "tiny"
    benchmarks = BENCHMARKS[:3] if quick else BENCHMARKS
    lines = [
        f"Fleet warm-start vs cold start ({vm_name}, {size} inputs, "
        f"{FLEET_RUNS} fleet runs per program):",
        f"  {'benchmark':10s} {'hottest method':24s} "
        f"{'cold L2 tick':>12s} {'warm L2 tick':>12s} "
        f"{'cold vtime':>11s} {'warm vtime':>11s}",
    ]
    for name in benchmarks:
        result = run_benchmark(name, size, vm_name)
        cold = (
            str(result.cold_ticks_to_l2)
            if result.cold_ticks_to_l2 is not None
            else f"never(<{MAX_COLD_ITERATIONS} runs)"
        )
        lines.append(
            f"  {result.benchmark:10s} {result.hot_method:24s} "
            f"{cold:>12s} {result.warm_ticks_to_l2:>12d} "
            f"{result.cold_first_time:>11d} {result.warm_first_time:>11d}"
            + ("" if result.outputs_match else "  OUTPUT MISMATCH!")
        )
        if (
            result.cold_ticks_to_l2 is not None
            and result.warm_ticks_to_l2 >= result.cold_ticks_to_l2
        ):
            lines.append(
                f"  !! warm start did not beat cold start on {name}"
            )
    lines.append(
        "  (warm runs hit opt level 2 at tick 0 — before the first sample; "
        "cold runs wait for online promotion)"
    )
    return "\n".join(lines)
