"""Plain-text table rendering for harness output."""

from __future__ import annotations


def render_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a fixed-width text table.

    Floats are shown with sensible precision; everything else via str().
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_bars(
    labels: list[str],
    series: dict[str, list[float]],
    width: int = 40,
    unit: str = "%",
) -> str:
    """ASCII grouped bar chart (one row group per label, one bar per
    series) — the terminal rendering of the paper's figures."""
    all_values = [value for values in series.values() for value in values]
    if not all_values:
        return "(no data)"
    span = max(abs(v) for v in all_values) or 1.0
    label_width = max(len(label) for label in labels)
    series_width = max(len(name) for name in series)

    lines = []
    for index, label in enumerate(labels):
        for series_index, (name, values) in enumerate(series.items()):
            value = values[index]
            bar_length = int(round(abs(value) / span * width))
            bar = ("█" * bar_length) if value >= 0 else ("▒" * bar_length)
            sign = "" if value >= 0 else "-"
            row_label = label if series_index == 0 else ""
            lines.append(
                f"{row_label:{label_width}s}  {name:{series_width}s} "
                f"|{bar}{' ' * (width - bar_length)}| {sign}{abs(value):.1f}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_grid(
    row_label: str,
    row_values: list[object],
    col_label: str,
    col_values: list[object],
    cells: dict[tuple, str],
    title: str | None = None,
) -> str:
    """Render a 2-D grid (Table 2 style): rows × columns of cell text."""
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_values]
    rows = []
    for r in row_values:
        rows.append([str(r)] + [cells.get((r, c), "-") for c in col_values])
    return render_table(headers, rows, title)
