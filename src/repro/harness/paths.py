"""Path-profiling experiments: overhead row and hot-path agreement.

Two tables in the spirit of the paper's measurement sections, applied
to the Ball-Larus path subsystem (:mod:`repro.profiling.paths`):

* **Overhead row (Table-2 style).**  For each collection mode —
  exhaustive instrumentation, minimum-coverage counter placement, and
  CBS-windowed sampling — the percentage virtual-time overhead over an
  unprofiled run, averaged across the benchmark suite, alongside the
  record/increment volumes that drive it.  Minimum coverage must come
  out strictly cheaper than exhaustive (same path ids, increments only
  on spanning-tree chords); CBS cheaper still.

* **Agreement table (Figure-5 style).**  Per benchmark, how well the
  sampled CBS path profile tracks the exhaustive one: distribution
  overlap (``Σ min(p, q)``, the paper's accuracy metric, over
  (function, path) keys) and hot-path agreement (size of the
  intersection of the top-10 hottest paths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.suite import BENCHMARKS, program_for
from repro.harness.report import render_table
from repro.profiling.paths import PATH_MODES, PathTracker
from repro.vm.config import config_named
from repro.vm.interpreter import Interpreter

#: Fixed row order of the overhead table (and the schema tests).
OVERHEAD_HEADERS = ["Mode", "Ovhd%", "Records", "Distinct", "Increments", "Windows"]
AGREEMENT_HEADERS = ["Benchmark", "ExhPaths", "CbsPaths", "Overlap%", "HotAgree"]

#: Top-N window for the hot-path agreement column.
HOT_WINDOW = 10


@dataclass
class PathsOverheadRow:
    """One collection mode's suite-averaged overhead numbers."""

    mode: str
    overhead_percent: float
    records: int
    distinct: int
    increments: int
    windows: int

    def as_list(self) -> list:
        return [
            self.mode,
            self.overhead_percent,
            self.records,
            self.distinct,
            self.increments,
            self.windows,
        ]


@dataclass
class PathAgreementRow:
    """One benchmark's CBS-vs-exhaustive path agreement."""

    benchmark: str
    exhaustive_distinct: int
    cbs_distinct: int
    overlap_percent: float
    hot_agreement: int

    def as_list(self) -> list:
        return [
            self.benchmark,
            self.exhaustive_distinct,
            self.cbs_distinct,
            self.overlap_percent,
            self.hot_agreement,
        ]


def compute_paths(
    vm_name: str = "jikes",
    benchmarks: list[str] | None = None,
    size: str = "small",
    stride: int = 1,
    samples: int = 32,
) -> tuple[list[PathsOverheadRow], list[PathAgreementRow]]:
    """Run every (benchmark × mode) cell once; return both tables.

    Overhead rows come back in :data:`repro.profiling.paths.PATH_MODES`
    order (exhaustive, mincov, cbs); agreement rows in benchmark order.
    Every instrumented run is checked bit-identical in guest output to
    the unprofiled baseline before its numbers are admitted.
    """
    names = benchmarks if benchmarks is not None else list(BENCHMARKS)
    config = config_named(vm_name, paths=True)
    sums = {
        mode: {"overhead": 0.0, "records": 0, "distinct": 0, "increments": 0, "windows": 0}
        for mode in PATH_MODES
    }
    agreement: list[PathAgreementRow] = []
    for name in names:
        program = program_for(name, size)
        base = Interpreter(program, config)
        base.run()
        profiles = {}
        for mode in PATH_MODES:
            vm = Interpreter(program, config)
            tracker = PathTracker(
                mode=mode, charge=True, stride=stride, samples_per_tick=samples
            )
            vm.attach_paths(tracker)
            vm.run()
            if vm.output != base.output:
                raise AssertionError(
                    f"{name}: {mode} path instrumentation changed guest output"
                )
            summary = tracker.summary()
            entry = sums[mode]
            entry["overhead"] += 100.0 * (vm.time - base.time) / base.time
            entry["records"] += summary["total"]
            entry["distinct"] += summary["distinct"]
            entry["increments"] += summary["increments"]
            entry["windows"] += summary["windows"]
            profiles[mode] = tracker.profile
        exhaustive, cbs = profiles["exhaustive"], profiles["cbs"]
        hot = {key for key, _ in exhaustive.hot_paths(HOT_WINDOW)}
        hot_cbs = {key for key, _ in cbs.hot_paths(HOT_WINDOW)}
        agreement.append(
            PathAgreementRow(
                benchmark=name,
                exhaustive_distinct=exhaustive.distinct(),
                cbs_distinct=cbs.distinct(),
                overlap_percent=exhaustive.overlap(cbs),
                hot_agreement=len(hot & hot_cbs),
            )
        )
    count = len(names)
    overhead = [
        PathsOverheadRow(
            mode=mode,
            overhead_percent=sums[mode]["overhead"] / count,
            records=sums[mode]["records"],
            distinct=sums[mode]["distinct"],
            increments=sums[mode]["increments"],
            windows=sums[mode]["windows"],
        )
        for mode in PATH_MODES
    ]
    return overhead, agreement


def render_paths(
    overhead: list[PathsOverheadRow],
    agreement: list[PathAgreementRow],
    vm_name: str,
) -> str:
    blocks = [
        render_table(
            OVERHEAD_HEADERS,
            [row.as_list() for row in overhead],
            title=(
                f"Path profiling overhead ({vm_name}): "
                "exhaustive vs minimum-coverage vs CBS"
            ),
        ),
        render_table(
            AGREEMENT_HEADERS,
            [row.as_list() for row in agreement],
            title=(
                f"CBS path agreement vs exhaustive ({vm_name}): "
                f"distribution overlap and top-{HOT_WINDOW} hot paths shared"
            ),
        ),
    ]
    return "\n\n".join(blocks)


def main(quick: bool = False, vm_name: str = "jikes", jobs: int = 1) -> str:
    if quick:
        overhead, agreement = compute_paths(
            vm_name, benchmarks=list(BENCHMARKS)[:4], size="tiny"
        )
    else:
        overhead, agreement = compute_paths(vm_name)
    return render_paths(overhead, agreement, vm_name)
