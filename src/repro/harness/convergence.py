"""Convergence-rate experiment: accuracy as a function of elapsed time.

The paper's second constraint (§2) is that profile accuracy must
*rapidly converge* so online optimizations can consume it early.  This
harness snapshots each profiler's DCG at every timer tick and scores it
against the full-run exhaustive profile, yielding accuracy-vs-ticks
curves for the timer baseline and CBS — the quantitative version of the
paper's "rapidly collects fairly accurate profiles" claim.

Also used by the phase-change experiment: benchmarks with shifting
behavior (jbb's transaction mix) show why *continuous* profiling beats
one-shot bursts (§3.2's criticism of code patching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adaptive.modes import jit_only_cache
from repro.benchsuite.suite import program_for
from repro.profiling.cbs import CBSProfiler
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.metrics import accuracy
from repro.profiling.patching import CodePatchingProfiler
from repro.profiling.timer_sampler import TimerProfiler
from repro.vm.config import config_named
from repro.vm.interpreter import Interpreter


@dataclass
class ConvergenceCurve:
    """Accuracy snapshots for one profiler over one run."""

    label: str
    ticks: list[int] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0

    def ticks_to_reach(self, threshold: float) -> int | None:
        """First tick at which accuracy reached ``threshold`` percent."""
        for tick, value in zip(self.ticks, self.accuracies):
            if value >= threshold:
                return tick
        return None


class _SnapshottingHook:
    """Tick hook that records accuracy-so-far against the final truth.

    Snapshots are scored *after* the run (we keep copies), because the
    ground truth is only complete at the end.
    """

    def __init__(self, profiler, every: int = 1):
        self.profiler = profiler
        self.every = every
        self.snapshots: list[tuple[int, dict]] = []

    def __call__(self, vm) -> None:
        if vm.ticks % self.every == 0:
            self.snapshots.append((vm.ticks, dict(self.profiler.dcg.edges())))


def convergence_curve(
    name: str,
    profiler,
    label: str,
    size: str = "small",
    vm_name: str = "jikes",
    snapshot_every: int = 1,
) -> ConvergenceCurve:
    """Run once, snapshotting the profile at ticks; score afterwards."""
    program = program_for(name, size)
    config = config_named(vm_name)
    vm = Interpreter(program, config, jit_only_cache(program, config.cost_model, 0))
    perfect = ExhaustiveProfiler()
    perfect.install(vm)
    if isinstance(profiler, CodePatchingProfiler):
        profiler.install(vm)
        hook_profiler = profiler
    else:
        vm.attach_profiler(profiler)
        hook_profiler = profiler
    hook = _SnapshottingHook(hook_profiler, snapshot_every)
    vm.tick_hook = hook
    vm.run()

    from repro.profiling.dcg import DCG

    curve = ConvergenceCurve(label=label)
    for tick, edges in hook.snapshots:
        snapshot = DCG()
        for edge, weight in edges.items():
            snapshot.record_edge(edge, weight)
        curve.ticks.append(tick)
        curve.accuracies.append(accuracy(snapshot, perfect.dcg))
    # Final point: the completed profile.
    curve.ticks.append(vm.ticks)
    curve.accuracies.append(accuracy(hook_profiler.dcg, perfect.dcg))
    return curve


def compare_convergence(
    name: str,
    size: str = "small",
    vm_name: str = "jikes",
    stride: int = 3,
    samples: int = 16,
) -> list[ConvergenceCurve]:
    """Timer vs CBS convergence on one benchmark."""
    return [
        convergence_curve(name, TimerProfiler(), "timer", size, vm_name),
        convergence_curve(
            name,
            CBSProfiler(stride=1, samples_per_tick=1),
            "cbs S=1 N=1",
            size,
            vm_name,
        ),
        convergence_curve(
            name,
            CBSProfiler(stride=stride, samples_per_tick=samples),
            f"cbs S={stride} N={samples}",
            size,
            vm_name,
        ),
    ]


# -- phase-change experiment -----------------------------------------------------


@dataclass
class PhaseResult:
    """How well each profiling strategy tracks a phase change."""

    label: str
    #: Accuracy of the final profile against the *whole-run* truth.
    overall_accuracy: float
    #: Accuracy against the truth restricted to the second half of the
    #: run (the post-phase-change behavior an optimizer should track).
    late_phase_accuracy: float


def phase_change_study(
    name: str = "jbb", size: str = "small", vm_name: str = "jikes"
) -> list[PhaseResult]:
    """Continuous sampling vs one-burst code patching across a phase
    change.  ``jbb``'s transaction mix shifts halfway through the run;
    the patching profiler collects all its samples in early bursts and
    never sees phase two."""
    program = program_for(name, size)
    config = config_named(vm_name)

    def run_with(profiler):
        vm = Interpreter(
            program, config, jit_only_cache(program, config.cost_model, 0)
        )
        whole = ExhaustiveProfiler()
        whole.install(vm)
        late = ExhaustiveProfiler()
        late.install(vm)
        # The "late" truth only counts calls from the second half on;
        # reset it at half time via a tick hook.
        reset_state = {"done": False}

        if isinstance(profiler, CodePatchingProfiler):
            profiler.install(vm)
        else:
            vm.attach_profiler(profiler)

        half_time = _estimated_half_time(name, size, config)

        def hook(vm_inner):
            if not reset_state["done"] and vm_inner.time >= half_time:
                late.dcg.clear()
                reset_state["done"] = True

        vm.tick_hook = hook
        vm.run()
        return whole.dcg, late.dcg, profiler

    strategies = [
        ("cbs continuous", CBSProfiler(stride=3, samples_per_tick=16)),
        ("timer continuous", TimerProfiler()),
        (
            "patching one-burst",
            CodePatchingProfiler(warmup_invocations=100, samples_per_method=200),
        ),
    ]
    results = []
    for label, profiler in strategies:
        whole_dcg, late_dcg, used = run_with(profiler)
        results.append(
            PhaseResult(
                label=label,
                overall_accuracy=accuracy(used.dcg, whole_dcg),
                late_phase_accuracy=accuracy(used.dcg, late_dcg),
            )
        )
    return results


def _estimated_half_time(name: str, size: str, config) -> int:
    """Virtual time at the midpoint of an unprofiled run."""
    program = program_for(name, size)
    vm = Interpreter(program, config, jit_only_cache(program, config.cost_model, 0))
    vm.run()
    return vm.time // 2


def render_curves(curves: list[ConvergenceCurve], width: int = 60) -> str:
    """Simple textual rendering of convergence curves."""
    lines = ["accuracy (%) by tick:"]
    for curve in curves:
        points = ", ".join(
            f"{tick}:{value:.0f}"
            for tick, value in list(zip(curve.ticks, curve.accuracies))[
                :: max(1, len(curve.ticks) // 10)
            ]
        )
        lines.append(f"  {curve.label:16s} {points}")
        half = curve.ticks_to_reach(curve.final_accuracy() * 0.9)
        lines.append(
            f"  {'':16s} final={curve.final_accuracy():.1f}%, "
            f"90%-of-final reached at tick {half}"
        )
    return "\n".join(lines)
