"""The fuzzing campaign engine behind ``repro-mini fuzz``.

A campaign is a seed range fanned out over
:func:`repro.harness.parallel.pmap`: each worker generates the program
for its seed (Mini source on even seeds, hand-assembled bytecode on odd
seeds), runs the full differential matrix, and reports violations as
plain picklable dicts.  The parent buckets violating seeds by triage
key and shrinks one representative per bucket to a minimal reproducer.

``replay_corpus`` re-checks the committed reproducers under
``tests/fuzz/corpus/`` — the permanent regression suite every past
violation leaves behind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.bytecode.assembler import assemble
from repro.frontend.codegen import compile_source
from repro.fuzz.differential import MatrixCell, check_program, run_cell
from repro.fuzz.genasm import generate_asm
from repro.fuzz.genprog import generate_mini
from repro.fuzz.shrink import shrink_lines
from repro.fuzz.triage import invariant_key, triage_key
from repro.harness.parallel import pmap
from repro.telemetry.ring import FlightRecorder

#: Matrix overrides every campaign run uses: a small timer interval so
#: even short programs cross several tick boundaries (stressing the
#: de-quicken and leaf-template bailout paths), and a step budget that
#: turns runaway subjects into StepLimitExceeded transcripts.
CAMPAIGN_OVERRIDES = {"timer_interval": 1900, "max_steps": 400_000}

#: File extensions and comment leaders for the two program kinds.
EXTENSIONS = {"mini": ".mini", "asm": ".asm"}
COMMENT = {"mini": "//", "asm": "#"}


@dataclass(frozen=True)
class FuzzSpec:
    """Picklable description of one fuzzing job (one seed)."""

    seed: int
    kind: str  # "mini" | "asm"
    vm_name: str = "jikes"


def build_program(kind: str, text: str):
    """Compile (Mini) or assemble (bytecode) a subject's text."""
    if kind == "mini":
        return compile_source(text, filename="<fuzz>")
    if kind == "asm":
        return assemble(text)
    raise ValueError(f"unknown program kind {kind!r}")


def generate(spec: FuzzSpec) -> str:
    return generate_mini(spec.seed) if spec.kind == "mini" else generate_asm(spec.seed)


def fuzz_one(spec: FuzzSpec) -> dict:
    """Worker entry point: generate, run the matrix, report.

    Returns a plain dict (pmap workers must produce picklable values):
    ``{"seed", "kind", "status", "violations", "triage", "source"}``
    where status is ``"ok"`` or ``"violations"``.  A generator or
    frontend bug (the subject fails to build) is reported as a
    violation too — the generators promise valid programs.
    """
    text = generate(spec)
    try:
        program = build_program(spec.kind, text)
    except Exception as error:
        return {
            "seed": spec.seed,
            "kind": spec.kind,
            "status": "violations",
            "violations": [
                {
                    "invariant": "generator",
                    "cell": "build",
                    "reference": "build",
                    "detail": f"{type(error).__name__}: {error}",
                    "error_type": type(error).__name__,
                }
            ],
            "triage": f"generator|{type(error).__name__}",
            "invariants": f"generator|{type(error).__name__}",
            "source": text,
        }
    violations = check_program(program, spec.vm_name, **CAMPAIGN_OVERRIDES)
    if not violations:
        return {"seed": spec.seed, "kind": spec.kind, "status": "ok"}
    return {
        "seed": spec.seed,
        "kind": spec.kind,
        "status": "violations",
        "violations": [v.as_dict() for v in violations],
        "triage": triage_key(violations, program),
        "invariants": invariant_key(violations),
        "source": text,
    }


def spec_for_seed(seed: int, vm_name: str = "jikes") -> FuzzSpec:
    """Even seeds fuzz the frontend path, odd seeds the assembler path."""
    return FuzzSpec(seed=seed, kind="mini" if seed % 2 == 0 else "asm", vm_name=vm_name)


@dataclass
class CampaignResult:
    """Everything ``repro-mini fuzz`` reports."""

    checked: int = 0
    ok: int = 0
    #: triage key → list of result dicts (all violating seeds).
    buckets: dict = field(default_factory=dict)
    #: triage key → shrunk reproducer info for the bucket representative.
    reproducers: dict = field(default_factory=dict)

    @property
    def violations(self) -> int:
        return sum(len(results) for results in self.buckets.values())


def make_predicate(kind: str, vm_name: str, target_invariants: str, extra_checks=None):
    """The shrinker predicate: does this candidate still break the same
    invariants with the same error types?  (Opcode signature is *not*
    preserved — a minimal reproducer may drop opcodes the violation
    never needed.)  Anything that fails to build or runs clean is a
    ``False`` — the shrinker only keeps candidates that reproduce."""

    def predicate(lines) -> bool:
        text = "\n".join(lines)
        try:
            program = build_program(kind, text)
            violations = check_program(
                program, vm_name, extra_checks=extra_checks, **CAMPAIGN_OVERRIDES
            )
        except Exception:
            return False
        if not violations:
            return False
        return invariant_key(violations) == target_invariants

    return predicate


def shrink_result(result: dict, extra_checks=None) -> dict | None:
    """Shrink one violating campaign result to a minimal reproducer.
    Returns ``{"kind", "triage", "source", "lines"}`` or None when the
    violation does not reproduce in-process (flaky host crash)."""
    lines = result["source"].splitlines()
    target = result.get("invariants") or result["triage"].rsplit("|", 1)[0]
    predicate = make_predicate(
        result["kind"], result.get("vm_name", "jikes"), target, extra_checks
    )
    if not predicate(lines):
        return None
    shrunk = shrink_lines(lines, predicate)
    return {
        "kind": result["kind"],
        "triage": result["triage"],
        "source": "\n".join(shrunk) + "\n",
        "lines": len(shrunk),
    }


def run_campaign(
    seeds: int,
    jobs: int = 1,
    start: int = 0,
    vm_name: str = "jikes",
    shrink: bool = True,
    progress=None,
) -> CampaignResult:
    """Run ``seeds`` differential jobs (seed values ``start .. start +
    seeds - 1``) across ``jobs`` workers and triage the fallout."""
    specs = [spec_for_seed(start + i, vm_name) for i in range(seeds)]
    result = CampaignResult()
    for report in pmap(fuzz_one, specs, jobs=jobs):
        result.checked += 1
        if report["status"] == "ok":
            result.ok += 1
        else:
            result.buckets.setdefault(report["triage"], []).append(report)
        if progress is not None:
            progress(result)
    if shrink:
        for key, reports in result.buckets.items():
            representative = min(reports, key=lambda r: len(r["source"]))
            shrunk = shrink_result(representative)
            if shrunk is not None:
                result.reproducers[key] = shrunk
    return result


def record_flight(
    kind: str, source: str, triage: str, vm_name: str = "jikes"
) -> FlightRecorder:
    """Re-run a reproducer's fully-featured cell with a flight recorder
    attached and return the recorder, primed with the triage context.

    This is the post-mortem view of the violation: the heartbeats and
    the fault transcript from the moments before the reproducer died,
    ready to dump as the ``.flight.jsonl`` artifact beside it.
    """
    recorder = FlightRecorder()
    recorder.record("triage", key=triage, program_kind=kind, vm=vm_name)
    try:
        program = build_program(kind, source)
    except Exception as error:
        recorder.record(
            "build-error", error=type(error).__name__, message=str(error)
        )
        return recorder
    cell = MatrixCell(True, True, "cbs", True, flight=True)
    record = run_cell(
        program, cell, vm_name, flight_recorder=recorder, **CAMPAIGN_OVERRIDES
    )
    if record.outcome == "host-crash":
        recorder.record("host-crash", traceback=record.host_error)
    return recorder


def save_reproducers(
    result: CampaignResult, directory: str, vm_name: str = "jikes"
) -> list[str]:
    """Write each bucket's shrunk reproducer under ``directory`` with a
    commented triage header, plus a ``.flight.jsonl`` post-mortem from
    re-running it with the flight recorder on; returns the reproducer
    paths (artifacts ride along unreturned)."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, (key, repro) in enumerate(sorted(result.reproducers.items())):
        name = f"repro_{index:03d}{EXTENSIONS[repro['kind']]}"
        path = os.path.join(directory, name)
        leader = COMMENT[repro["kind"]]
        with open(path, "w") as handle:
            handle.write(f"{leader} kind: {repro['kind']}\n")
            handle.write(f"{leader} triage: {key}\n")
            handle.write(repro["source"])
        recorder = record_flight(repro["kind"], repro["source"], key, vm_name)
        recorder.dump(os.path.join(directory, f"repro_{index:03d}.flight.jsonl"))
        paths.append(path)
    return paths


def replay_corpus(directory: str, vm_name: str = "jikes") -> list[tuple[str, list]]:
    """Re-run every committed reproducer; returns ``(path, violations)``
    pairs.  A healthy tree returns an empty violation list for every
    file — each entry documents a bug that is now fixed."""
    results = []
    for name in sorted(os.listdir(directory)):
        extension = os.path.splitext(name)[1]
        kinds = {v: k for k, v in EXTENSIONS.items()}
        if extension not in kinds:
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            text = handle.read()
        program = build_program(kinds[extension], text)
        violations = check_program(program, vm_name, **CAMPAIGN_OVERRIDES)
        results.append((path, violations))
    return results
