"""Crash-triage bucketing: one root cause, one report.

A fuzzing campaign that finds a real bug typically finds it hundreds of
times.  Violations are bucketed by a *triage key* combining the set of
broken invariants, the guest-error types involved, and the program's
opcode signature (the sorted set of distinct opcodes it contains) — a
cheap stand-in for "which handler paths can this program reach".  The
campaign shrinks and reports one representative per bucket.
"""

from __future__ import annotations


def opcode_signature(program) -> str:
    """Sorted distinct opcode mnemonics across all functions, joined
    with commas — e.g. ``"ADD,CALL_VIRTUAL,LOAD,PUSH,RETURN"``."""
    names = {
        instr.op.name
        for function in program.functions
        for instr in function.code
    }
    return ",".join(sorted(names))


def invariant_key(violations) -> str:
    """Just the behavioral part of the key: broken invariants + error
    types.  This is what the shrinker preserves — a minimal reproducer
    may legitimately drop opcodes the violation never needed."""
    invariants = sorted({v.invariant for v in violations})
    errors = sorted({v.error_type for v in violations if v.error_type})
    parts = ["+".join(invariants)]
    if errors:
        parts.append("+".join(errors))
    return "|".join(parts)


def triage_key(violations, program=None) -> str:
    """The bucket key for a violating program: the invariant key plus
    the opcode signature (so campaigns dedup by reachable handler set,
    not just by symptom)."""
    parts = [invariant_key(violations)]
    if program is not None:
        parts.append(opcode_signature(program))
    return "|".join(parts)
