"""Differential fuzzing for the VM configuration matrix.

The paper's central claim — counter-based sampling is *non-perturbing*
— was hardened by PRs 3–4 into hard identity invariants: fused, IC, and
telemetry-instrumented runs must be bit-identical to a bare run in
output, virtual time, steps, ticks, DCG weights, and telemetry event
streams.  This package machine-checks those invariants over randomly
generated programs instead of a handful of hand-picked benchmarks:

* :mod:`repro.fuzz.genprog` — seeded well-typed Mini program generator
  (dispatch webs, bounded recursion, tight loops, accessor leaves).
* :mod:`repro.fuzz.genasm` — hand-assembled-bytecode generator for
  shapes the frontend cannot emit (interior jump targets inside fusable
  windows, megamorphic sites, missing-selector traps, guest faults).
* :mod:`repro.fuzz.differential` — runs one program across the
  ``fuse × ic × profiler × telemetry`` matrix and checks the invariants.
* :mod:`repro.fuzz.shrink` — deterministic delta-debugging minimizer
  for violating program/config pairs.
* :mod:`repro.fuzz.triage` — buckets violations by invariant + opcode
  signature so one root cause produces one report.
* :mod:`repro.fuzz.campaign` — the ``repro-mini fuzz`` engine: seed
  fan-out over :func:`repro.harness.parallel.pmap`, triage, shrinking,
  and regression-corpus replay.

Shrunk reproducers for every violation found live under
``tests/fuzz/corpus/`` and are replayed by CI on every push.
"""

from repro.fuzz.campaign import FuzzSpec, fuzz_one, replay_corpus, run_campaign
from repro.fuzz.differential import MatrixCell, RunRecord, Violation, check_program
from repro.fuzz.genasm import generate_asm
from repro.fuzz.genprog import generate_mini
from repro.fuzz.shrink import shrink_lines
from repro.fuzz.triage import opcode_signature, triage_key

__all__ = [
    "FuzzSpec",
    "MatrixCell",
    "RunRecord",
    "Violation",
    "check_program",
    "fuzz_one",
    "generate_asm",
    "generate_mini",
    "opcode_signature",
    "replay_corpus",
    "run_campaign",
    "shrink_lines",
    "triage_key",
]
