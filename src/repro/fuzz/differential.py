"""Differential execution across the VM configuration matrix.

One program is run under every cell of the ``fuse × ic × jit ×
profiler × telemetry`` matrix and the runs are compared against a
per-profiler reference (``fuse=False, ic=False, jit off, telemetry
off``).

Comparisons are grouped by profiler because profilers are *allowed* to
cost virtual time (the paper measures exactly that overhead): within a
profiler group every observable — output, time, steps, ticks, calls,
methods, DCG edge weights, guest-error transcript, telemetry event
stream — must match bit-for-bit.  Across profiler groups only the
time-independent observables must match: printed output, step count,
call count, methods executed, and the guest-error transcript.

Charge-free rider cells (the flight recorder, the Ball-Larus path
tracker) claim zero virtual-time cost, so they must match their group
reference bit-for-bit too; additionally the ``none`` group runs all
three path-collection modes and checks the subsystem's own invariants
(exhaustive == minimum-coverage exactly; CBS counts never exceed
exhaustive's).

A host-level Python exception escaping the interpreter (anything that
is not a ``VMError``) is a violation by definition, whatever the cell.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field

from repro.profiling.cbs import CBSProfiler
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.paths import PathTracker
from repro.profiling.timer_sampler import TimerProfiler
from repro.telemetry.exporters import jsonl_lines
from repro.telemetry.ring import FlightRecorder
from repro.telemetry.tracer import Tracer
from repro.fuzz.specexec import (
    SpecConformanceError,
    run_spec_reference,
    verify_cost_views,
)
from repro.vm.config import config_named
from repro.vm.errors import VMError
from repro.vm.interpreter import Interpreter

#: Profiler groups, in comparison order ("none" is the cross-group
#: baseline).  Factories return a fresh profiler (or None) per run.
PROFILERS = {
    "none": lambda: None,
    "exhaustive": ExhaustiveProfiler,
    "timer": TimerProfiler,
    "cbs": lambda: CBSProfiler(stride=3, samples_per_tick=16, seed=7),
}

#: Fields that must be identical *within* a profiler group.
GROUP_FIELDS = ("output", "time", "steps", "ticks", "calls", "methods", "dcg", "error")

#: Fields that must also be identical *across* profiler groups
#: (everything virtual-time-dependent excluded).
CROSS_FIELDS = ("output", "steps", "calls", "methods", "error")

#: Fields the spec-driven reference executor (repro.fuzz.specexec) must
#: reproduce bit-for-bit against the ``none`` group's reference cell.
#: It models no profiler/yieldpoint dynamics, so only the unprofiled
#: observables are in scope — which is everything, since without a
#: profiler no yieldpoint is ever taken.
SPEC_FIELDS = ("output", "time", "steps", "ticks", "calls", "methods", "error")


@dataclass(frozen=True)
class MatrixCell:
    """One configuration of the differential matrix."""

    fuse: bool
    ic: bool
    profiler: str
    telemetry: bool
    flight: bool = False
    #: Ball-Larus path collection mode riding along charge-free
    #: (``None`` = no path tracker).  A charge-free tracker claims zero
    #: virtual-time cost, so its cell must match the group reference
    #: bit-for-bit like the flight recorder's.
    paths: str | None = None
    #: Template JIT on: hot bodies run as generated host code that must
    #: de-optimize back to bit-identical interpreter state, so a jit
    #: cell must match the group reference exactly like any other
    #: host-level rewrite (fusion, ICs).
    jit: bool = False

    def describe(self) -> str:
        parts = [
            "fuse" if self.fuse else "no-fuse",
            "ic" if self.ic else "no-ic",
            self.profiler,
        ]
        if self.telemetry:
            parts.append("telemetry")
        if self.flight:
            parts.append("flight")
        if self.paths:
            parts.append(f"paths-{self.paths}")
        if self.jit:
            parts.append("jit")
        return "+".join(parts)


def matrix_cells(profiler: str) -> list[MatrixCell]:
    """The cells run for one profiler group: the full ``fuse × ic``
    square without telemetry, the two corners with telemetry on (enough
    to compare event streams), the fully-featured corner again with
    the flight recorder attached — the recorder claims zero virtual-time
    cost, so that cell must match the others bit-for-bit, event lines
    included — and a charge-free Ball-Larus path-tracker cell (same
    zero-cost claim).  The ``none`` group carries all three path modes
    so the exhaustive == mincov and CBS-subset invariants are checked
    per program.  The template JIT joins as two more cells per group —
    the fully-featured corner with the JIT on, silent and with
    telemetry (generated code must neither perturb observables nor
    emit events) — plus a JIT×paths cell in the ``none`` group for the
    path-instrumented code templates.  Ten runs per group (thirteen
    for ``none``)."""
    cells = [
        MatrixCell(fuse, ic, profiler, False)
        for fuse in (False, True)
        for ic in (False, True)
    ]
    cells.append(MatrixCell(False, False, profiler, True))
    cells.append(MatrixCell(True, True, profiler, True))
    cells.append(MatrixCell(True, True, profiler, True, flight=True))
    cells.append(MatrixCell(True, True, profiler, False, paths="exhaustive"))
    cells.append(MatrixCell(True, True, profiler, False, jit=True))
    cells.append(MatrixCell(True, True, profiler, True, jit=True))
    if profiler == "none":
        cells.append(MatrixCell(True, True, profiler, False, paths="mincov"))
        cells.append(MatrixCell(True, True, profiler, False, paths="cbs"))
        cells.append(
            MatrixCell(True, True, profiler, False, paths="cbs", jit=True)
        )
    return cells


@dataclass
class RunRecord:
    """Everything observable about one run of one cell."""

    cell: MatrixCell
    outcome: str  # "ok" | "error" | "host-crash"
    output: list = field(default_factory=list)
    time: int = 0
    steps: int = 0
    ticks: int = 0
    calls: int = 0
    methods: int = 0
    dcg: object = None
    #: (type name, message, function, pc) for guest VMErrors.
    error: tuple | None = None
    #: JSONL lines (header + events, metrics footer excluded) when the
    #: cell has telemetry on.
    event_lines: list | None = None
    #: Metrics snapshot with the host-bookkeeping keys stripped.
    metrics: dict | None = None
    #: Formatted traceback when the host interpreter itself blew up.
    host_error: str | None = None
    #: The flight recorder that rode along, when the cell had one.
    flight: object = None
    #: ``{(function, path_id): count}`` when the cell had a path tracker.
    paths: dict | None = None


@dataclass
class Violation:
    """One invariant breach for one (program, cell) pair."""

    invariant: str  # e.g. "steps", "error", "events", "host-crash"
    cell: str  # MatrixCell.describe() of the offending cell
    reference: str  # describe() of the cell it was compared against
    detail: str
    error_type: str | None = None

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "cell": self.cell,
            "reference": self.reference,
            "detail": self.detail,
            "error_type": self.error_type,
        }


def _strip_host_metrics(snapshot: dict) -> dict:
    """Drop the metric keys host-level optimizations are allowed to
    differ on (the same exemption the identity test suites grant)."""
    return {
        k: v
        for k, v in snapshot.items()
        if not (
            k.startswith("fusion.")
            or k.startswith("ic.")
            or k.startswith("jit.")
        )
    }


def run_cell(
    program,
    cell: MatrixCell,
    vm_name: str = "jikes",
    flight_recorder=None,
    **overrides,
) -> RunRecord:
    """Execute ``program`` under one matrix cell and record everything.

    ``flight_recorder`` lets a caller (the campaign's artifact writer)
    supply its own recorder instead of the cell-default fresh one.
    """
    record = RunRecord(cell=cell, outcome="ok")
    flight = flight_recorder
    if flight is None and cell.flight:
        flight = FlightRecorder()
    record.flight = flight
    try:
        # Construction is inside the net too: a program that blows up
        # the code cache at compile time is a host crash, not a test
        # harness error.
        if cell.paths:
            overrides = dict(overrides, paths=True)
        if cell.jit:
            overrides = dict(overrides, jit=True)
        config = config_named(vm_name, fuse=cell.fuse, ic=cell.ic, **overrides)
        vm = Interpreter(program, config)
        profiler = PROFILERS[cell.profiler]()
        if isinstance(profiler, ExhaustiveProfiler):
            profiler.install(vm)
        elif profiler is not None:
            vm.attach_profiler(profiler)
        tracker = None
        if cell.paths:
            tracker = PathTracker(
                mode=cell.paths, charge=False, stride=3, samples_per_tick=16
            )
            vm.attach_paths(tracker)
        tracer = Tracer() if cell.telemetry else None
        if tracer is not None:
            vm.attach_telemetry(tracer)
        if flight is not None:
            vm.attach_flight(flight)
        vm.run()
    except VMError as error:
        record.outcome = "error"
        record.error = (type(error).__name__, str(error), error.function, error.pc)
    except Exception:
        record.outcome = "host-crash"
        record.host_error = traceback.format_exc(limit=8)
        return record

    record.output = list(vm.output)
    record.time = vm.time
    record.steps = vm.steps
    record.ticks = vm.ticks
    record.calls = vm.call_count
    record.methods = vm.methods_executed
    record.dcg = profiler.dcg.edges() if profiler is not None else None
    if tracker is not None:
        record.paths = dict(tracker.profile.counts)
    if tracer is not None:
        lines = jsonl_lines(tracer)
        record.event_lines = lines[:-1]
        record.metrics = _strip_host_metrics(tracer.metrics.snapshot())
    return record


def _diff(name: str, ref_value, got_value) -> str:
    return f"{name}: reference={ref_value!r} got={got_value!r}"


def _compare(record: RunRecord, reference: RunRecord, fields) -> list[Violation]:
    violations = []
    for name in fields:
        ref_value = getattr(reference, name)
        got_value = getattr(record, name)
        if ref_value != got_value:
            violations.append(
                Violation(
                    invariant=name,
                    cell=record.cell.describe(),
                    reference=reference.cell.describe(),
                    detail=_diff(name, ref_value, got_value),
                    error_type=(record.error or reference.error or (None,))[0],
                )
            )
    return violations


def _check_spec_reference(
    program, reference: RunRecord, vm_name: str, overrides: dict
) -> list[Violation]:
    """Compare the ``none`` reference cell against the spec executor."""
    violations: list[Violation] = []
    config = config_named(vm_name, fuse=False, ic=False, **overrides)
    try:
        verify_cost_views(program, config)
        transcript = run_spec_reference(program, config)
    except SpecConformanceError as breach:
        return [
            Violation(
                invariant="spec-conformance",
                cell="spec-reference",
                reference=reference.cell.describe(),
                detail=str(breach),
            )
        ]
    except Exception:
        return [
            Violation(
                invariant="host-crash",
                cell="spec-reference",
                reference=reference.cell.describe(),
                detail=traceback.format_exc(limit=8),
                error_type="host-crash",
            )
        ]
    for name in SPEC_FIELDS:
        ref_value = getattr(reference, name)
        got_value = transcript[name]
        if ref_value != got_value:
            violations.append(
                Violation(
                    invariant=f"spec-{name}",
                    cell="spec-reference",
                    reference=reference.cell.describe(),
                    detail=_diff(name, ref_value, got_value),
                    error_type=(reference.error or (None,))[0],
                )
            )
    return violations


def check_program(
    program,
    vm_name: str = "jikes",
    extra_checks=None,
    **overrides,
) -> list[Violation]:
    """Run ``program`` across the full matrix and return all invariant
    violations (empty list = the program is clean).

    ``extra_checks``, if given, is called with the mapping of
    :class:`MatrixCell` → :class:`RunRecord` after each profiler group
    and must return a list of invariant-name strings to report as
    synthetic violations — the hook exists for testing the shrinker and
    triage machinery against known-bad invariants.
    """
    violations: list[Violation] = []
    group_references: dict[str, RunRecord] = {}

    for profiler in PROFILERS:
        records: dict[MatrixCell, RunRecord] = {}
        for cell in matrix_cells(profiler):
            records[cell] = run_cell(program, cell, vm_name, **overrides)

        for cell, record in records.items():
            if record.outcome == "host-crash":
                violations.append(
                    Violation(
                        invariant="host-crash",
                        cell=cell.describe(),
                        reference=cell.describe(),
                        detail=record.host_error or "host exception",
                        error_type="host-crash",
                    )
                )
            elif record.outcome == "error" and (record.steps <= 0 or record.time <= 0):
                # Absolute invariant, not a cross-config one: a guest
                # fault always follows at least one charged instruction,
                # so a zero counter means the raise site skipped the
                # loop-local → VM sync.  Cross-config comparison alone
                # cannot see this — stale counters are stale *the same
                # way* in every cell.
                violations.append(
                    Violation(
                        invariant="error-sync",
                        cell=cell.describe(),
                        reference=cell.describe(),
                        detail=(
                            f"faulting run has steps={record.steps} "
                            f"time={record.time} (raise site lost the "
                            f"loop-local counters)"
                        ),
                        error_type=record.error[0] if record.error else None,
                    )
                )
        if any(r.outcome == "host-crash" for r in records.values()):
            continue  # per-field comparisons are meaningless past this

        reference = records[MatrixCell(False, False, profiler, False)]
        group_references[profiler] = reference
        for cell, record in records.items():
            if cell == reference.cell:
                continue
            violations.extend(_compare(record, reference, GROUP_FIELDS))

        if profiler == "none":
            # Spec-conformance invariant: an independent executor built
            # from nothing but the declarative opcode specs must
            # reproduce the unprofiled reference cell bit-for-bit, and
            # every executed op's stack delta / every charged cost must
            # match its spec row (asserted inside the executor / the
            # cost-view check).  This is what catches a dispatch arm and
            # its spec drifting apart *together* — identical in every
            # cell, wrong against the table.
            violations.extend(
                _check_spec_reference(program, reference, vm_name, overrides)
            )

        path_records = {c.paths: r for c, r in records.items() if c.paths}
        exhaustive = path_records.get("exhaustive")
        mincov = path_records.get("mincov")
        cbs_paths = path_records.get("cbs")
        if exhaustive is not None and mincov is not None:
            # Minimum-coverage placement recovers the *same* path ids
            # with the same counts — not approximately, exactly.
            if exhaustive.paths != mincov.paths:
                violations.append(
                    Violation(
                        invariant="path-ids",
                        cell=mincov.cell.describe(),
                        reference=exhaustive.cell.describe(),
                        detail=_diff("paths", exhaustive.paths, mincov.paths),
                    )
                )
        if exhaustive is not None and cbs_paths is not None:
            # Windowed sampling records a subset of what exhaustive saw.
            excess = {
                key: count
                for key, count in (cbs_paths.paths or {}).items()
                if count > (exhaustive.paths or {}).get(key, 0)
            }
            if excess:
                violations.append(
                    Violation(
                        invariant="path-sampling",
                        cell=cbs_paths.cell.describe(),
                        reference=exhaustive.cell.describe(),
                        detail=f"CBS path counts exceed exhaustive: {excess!r}",
                    )
                )

        telemetry_cells = [c for c in records if c.telemetry]
        if len(telemetry_cells) >= 2:
            base = records[telemetry_cells[0]]
            for other_cell in telemetry_cells[1:]:
                other = records[other_cell]
                if base.event_lines != other.event_lines:
                    violations.append(
                        Violation(
                            invariant="events",
                            cell=other.cell.describe(),
                            reference=base.cell.describe(),
                            detail=_first_line_diff(
                                base.event_lines, other.event_lines
                            ),
                        )
                    )
                if base.metrics != other.metrics:
                    violations.append(
                        Violation(
                            invariant="metrics",
                            cell=other.cell.describe(),
                            reference=base.cell.describe(),
                            detail=_diff("metrics", base.metrics, other.metrics),
                        )
                    )

        if extra_checks is not None:
            for invariant in extra_checks(records):
                violations.append(
                    Violation(
                        invariant=invariant,
                        cell=f"synthetic+{profiler}",
                        reference=reference.cell.describe(),
                        detail="synthetic invariant injected via extra_checks",
                    )
                )

    baseline = group_references.get("none")
    if baseline is not None:
        for profiler, reference in group_references.items():
            if profiler == "none":
                continue
            violations.extend(_compare(reference, baseline, CROSS_FIELDS))
    return violations


def _first_line_diff(base_lines, other_lines) -> str:
    base_lines = base_lines or []
    other_lines = other_lines or []
    if len(base_lines) != len(other_lines):
        return f"event count: reference={len(base_lines)} got={len(other_lines)}"
    for index, (a, b) in enumerate(zip(base_lines, other_lines)):
        if a != b:
            return f"event line {index}: reference={a!r} got={b!r}"
    return "event streams differ"
