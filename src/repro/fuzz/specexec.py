"""Spec-driven reference executor for conformance fuzzing.

A second, independent implementation of the Mini VM's raw semantics,
driven directly by the declarative opcode specs
(:data:`repro.bytecode.opcodes.OPCODE_SPECS`) and the cost model — no
code cache views, no fusion, no inline caches, no JIT, no profiler.
It exists to be *compared against* the real interpreter: if the real
VM's charged costs, stack discipline, counter sync at fault sites, or
tick placement ever drift from what the specs declare, this executor's
transcript diverges and the fuzz matrix reports it.

Two layers of checking:

* **per-op conformance** — while executing, every opcode's observed
  stack delta is asserted against its spec's ``pushes - pops`` (frame
  switches excepted), and the independently compiled code-cache cost
  views are asserted against the cost model per spec
  (:func:`verify_cost_views`).  A failure raises
  :class:`SpecConformanceError` — the spec table itself is inconsistent
  or the cache charges something the spec doesn't say.
* **differential** — :func:`run_spec_reference` returns the same
  transcript shape as a matrix cell; ``differential.check_program``
  compares it bit-for-bit against the ``none``-profiler reference cell.

The executor is deliberately *slow and obvious*: one dict-dispatched
step function, no caching, no quickening.  Clarity is the point — it
is the executable form of the spec table.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op, spec_of
from repro.vm.errors import (
    ArrayBoundsError,
    DivisionByZeroError,
    NullPointerError,
    StackOverflowError_,
    StepLimitExceeded,
    VMError,
)
from repro.vm.values import HeapArray, HeapObject


class SpecConformanceError(AssertionError):
    """An executed op disagreed with its declarative spec."""


class _Frame:
    __slots__ = ("function", "pc", "stack", "locals", "return_pc")

    def __init__(self, function, locals_):
        self.function = function
        self.pc = 0
        self.stack = []
        self.locals = locals_
        self.return_pc = 0


_ERRORS = {
    "NullPointerError": NullPointerError,
    "DivisionByZeroError": DivisionByZeroError,
    "ArrayBoundsError": ArrayBoundsError,
    "StackOverflowError_": StackOverflowError_,
    "VMError": VMError,
}


class SpecExecutor:
    """Execute a program per the opcode specs (profiler-none raw mode)."""

    def __init__(self, program, config):
        self.program = program
        self.config = config
        self.cost_model = config.cost_model
        self.vtables = [cls.vtable for cls in program.classes]
        self.field_defaults = program.field_default_templates()
        self.op_costs = config.cost_model.op_costs

        entry_extra = (
            0
            if config.overloaded_entry_check
            else self.cost_model.dedicated_entry_check_cost
        )
        self.call_static_cost = self.cost_model.call_static_cost + entry_extra
        self.call_virtual_cost = self.cost_model.call_virtual_cost + entry_extra

        self.time = 0
        self.steps = 0
        self.ticks = 0
        self.call_count = 0
        self.next_tick = config.timer_interval
        self.output = []
        self.frames: list[_Frame] = []
        self._seen = [False] * len(program.functions)
        self.methods_executed = 0

    # -- spec-conformance assertions ------------------------------------------

    def _check_delta(self, op: Op, before: int, after: int, pc: int, fn) -> None:
        spec = spec_of(op)
        if spec.pops is None:  # calls: argc-dependent, frame switch
            return
        expected = spec.pushes - spec.pops
        if after - before != expected:
            raise SpecConformanceError(
                f"{op.name} at {fn.qualified_name}@{pc}: observed stack "
                f"delta {after - before}, spec says {expected}"
            )

    # -- the step loop ---------------------------------------------------------

    def _fault(self, error_name: str, message: str, frame: _Frame, pc: int):
        exc = _ERRORS[error_name]
        return exc(message, frame.function.qualified_name, pc)

    def _step_limit(self, frame: _Frame, pc: int):
        return StepLimitExceeded(
            f"exceeded {self.config.max_steps} interpreted instructions",
            frame.function.qualified_name,
            pc,
        )

    def run(self):
        program = self.program
        config = self.config
        max_steps = config.max_steps
        max_frames = config.max_frames
        interval = config.timer_interval
        service = self.cost_model.timer_service_cost
        return_cost = self.cost_model.return_cost
        op_costs = self.op_costs

        entry = program.entry_function()
        if not self._seen[entry.index]:
            self._seen[entry.index] = True
            self.methods_executed += 1
        frame = _Frame(entry, [0] * entry.num_locals)
        self.frames.append(frame)

        while True:
            code = frame.function.code
            pc = frame.pc
            instr = code[pc]
            op = instr.op
            stack = frame.stack
            locals_ = frame.locals
            depth_before = len(stack)

            # Head: charge the spec cost, count the step, fire ticks.
            self.time += op_costs[op]
            self.steps += 1
            if self.time >= self.next_tick:
                while self.time >= self.next_tick:
                    self.next_tick += interval
                    self.ticks += 1
                    self.time += service
                if self.steps >= max_steps:
                    raise self._step_limit(frame, pc)

            spec = spec_of(op)
            kind = spec.kind

            if kind == "load":
                stack.append(locals_[instr.a])
            elif kind == "push_const":
                stack.append(instr.a)
            elif kind == "push_null":
                stack.append(None)
            elif kind == "store":
                locals_[instr.a] = stack.pop()
            elif kind == "pop":
                stack.pop()
            elif kind == "dup":
                stack.append(stack[-1])
            elif kind == "binop":
                right = stack.pop()
                left = stack.pop()
                if spec.arg == "+":
                    stack.append(left + right)
                elif spec.arg == "-":
                    stack.append(left - right)
                else:
                    stack.append(left * right)
            elif kind == "divmod":
                right = stack.pop()
                left = stack.pop()
                if right == 0:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                quotient = abs(left) // abs(right)
                if (left < 0) != (right < 0):
                    quotient = -quotient
                stack.append(quotient if spec.arg == "div" else left - quotient * right)
            elif kind == "neg":
                stack.append(-stack.pop())
            elif kind == "not":
                stack.append(0 if stack.pop() != 0 else 1)
            elif kind == "cmp":
                right = stack.pop()
                left = stack.pop()
                taken = {
                    "<": left < right,
                    "<=": left <= right,
                    ">": left > right,
                    ">=": left >= right,
                }[spec.arg]
                stack.append(1 if taken else 0)
            elif kind == "eqcmp":
                right = stack.pop()
                left = stack.pop()
                if isinstance(left, int) and isinstance(right, int):
                    equal = left == right
                else:
                    equal = left is right
                stack.append(1 if (equal == (spec.arg == "==")) else 0)
            elif kind == "jump":
                target = instr.a
                if target <= pc and self.steps >= max_steps:
                    raise self._step_limit(frame, pc)
                self._check_delta(op, depth_before, len(stack), pc, frame.function)
                frame.pc = target
                continue
            elif kind == "branch":
                value = stack.pop()
                taken = (value == 0) if spec.arg == "false" else (value != 0)
                if taken:
                    target = instr.a
                    if target <= pc and self.steps >= max_steps:
                        raise self._step_limit(frame, pc)
                    self._check_delta(
                        op, depth_before, len(stack), pc, frame.function
                    )
                    frame.pc = target
                    continue
            elif kind == "call":
                if self.steps >= max_steps:
                    raise self._step_limit(frame, pc)
                if spec.arg == "virtual":
                    argc = instr.b
                    receiver = stack[-argc - 1]
                    if receiver is None:
                        fault = spec.faults[0]
                        raise self._fault(fault.error, fault.message, frame, pc)
                    callee_index = self.vtables[receiver.class_index].get(instr.a)
                    if callee_index is None:
                        name, argn = program.selectors[instr.a]
                        cls = program.classes[receiver.class_index].name
                        fault = spec.faults[1]  # missing_selector
                        raise self._fault(
                            fault.error,
                            fault.message.format(cls=cls, name=name, argc=argn),
                            frame,
                            pc,
                        )
                    nargs = argc + 1
                    self.time += self.call_virtual_cost
                else:
                    callee_index = instr.a
                    nargs = instr.b
                    self.time += self.call_static_cost
                callee = program.functions[callee_index]
                self.call_count += 1
                if not self._seen[callee_index]:
                    self._seen[callee_index] = True
                    self.methods_executed += 1
                if len(self.frames) >= max_frames:
                    for fault in spec.faults:
                        if fault.kind == "stack_overflow":
                            raise self._fault(
                                fault.error,
                                fault.message.format(max_frames=max_frames),
                                frame,
                                pc,
                            )
                base = len(stack) - nargs
                new_locals = stack[base:]
                del stack[base:]
                if callee.num_locals > nargs:
                    new_locals.extend([0] * (callee.num_locals - nargs))
                frame.pc = pc + 1
                frame = _Frame(callee, new_locals)
                self.frames.append(frame)
                continue
            elif kind == "return":
                self.time += return_cost
                value = stack.pop() if spec.arg == "value" else None
                self.frames.pop()
                if not self.frames:
                    return value
                frame = self.frames[-1]
                if value is not None or spec.arg == "value":
                    frame.stack.append(value)
                continue
            elif kind == "new":
                class_index = instr.a
                stack.append(
                    HeapObject(class_index, self.field_defaults[class_index])
                )
            elif kind == "getfield":
                obj = stack.pop()
                if obj is None:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                stack.append(obj.fields[instr.a])
            elif kind == "putfield":
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                obj.fields[instr.a] = value
            elif kind == "is_exact":
                obj = stack.pop()
                stack.append(
                    1 if obj is not None and obj.class_index == instr.a else 0
                )
            elif kind == "guard_method":
                obj = stack.pop()
                if obj is None:
                    stack.append(0)
                else:
                    target = self.vtables[obj.class_index].get(instr.a)
                    stack.append(1 if target == instr.b else 0)
            elif kind == "new_array":
                length = stack.pop()
                if length < 0:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                self.time += length  # spec dyn_cost: scales with size
                stack.append(HeapArray(length))
            elif kind == "aload":
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                elements = array.elements
                if index < 0 or index >= len(elements):
                    fault = spec.faults[1]
                    raise self._fault(
                        fault.error,
                        fault.message.format(index=index, length=len(elements)),
                        frame,
                        pc,
                    )
                stack.append(elements[index])
            elif kind == "astore":
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                elements = array.elements
                if index < 0 or index >= len(elements):
                    fault = spec.faults[1]
                    raise self._fault(
                        fault.error,
                        fault.message.format(index=index, length=len(elements)),
                        frame,
                        pc,
                    )
                elements[index] = value
            elif kind == "array_len":
                array = stack.pop()
                if array is None:
                    fault = spec.faults[0]
                    raise self._fault(fault.error, fault.message, frame, pc)
                stack.append(len(array.elements))
            elif kind == "print":
                self.output.append(stack.pop())
            elif kind == "nop":
                pass
            else:  # pragma: no cover - spec table audit
                raise SpecConformanceError(f"unhandled spec kind {kind!r}")

            self._check_delta(op, depth_before, len(stack), pc, frame.function)
            frame.pc = pc + 1


def run_spec_reference(program, config) -> dict:
    """Execute ``program`` on the spec executor and return a transcript
    with the same observable fields as a matrix cell's
    :class:`repro.fuzz.differential.RunRecord` — compared bit-for-bit
    against the ``none``-profiler reference cell (no profiler means no
    yieldpoint ever fires, the one interpreter feature the spec table
    deliberately does not model dynamics for)."""
    executor = SpecExecutor(program, config)
    error = None
    try:
        executor.run()
    except VMError as exc:
        error = (type(exc).__name__, str(exc), exc.function, exc.pc)
    return {
        "output": executor.output,
        "time": executor.time,
        "steps": executor.steps,
        "ticks": executor.ticks,
        "calls": executor.call_count,
        "methods": executor.methods_executed,
        "error": error,
    }


def verify_cost_views(program, config) -> None:
    """Assert the code cache's raw cost views equal the cost model's
    per-spec prices — the independent 'charged cost matches its spec'
    half of the conformance cell."""
    from repro.vm.runtime import CodeCache

    cache = CodeCache(program, config.cost_model, fuse=False, ic=False)
    op_costs = config.cost_model.op_costs
    for function in program.functions:
        method = cache.current(function.index)
        for pc, instr in enumerate(function.code):
            declared = op_costs[instr.op]
            charged = method.costs[pc]
            if charged != declared:
                raise SpecConformanceError(
                    f"{function.qualified_name}@{pc}: cache charges "
                    f"{charged} for {instr.op.name}, cost model says {declared}"
                )
