"""Seeded generator of hand-assembled bytecode subjects.

The Mini frontend only emits structured code, so several interesting
shapes can never reach the interpreter through :mod:`repro.fuzz.genprog`:

* **interior jump targets inside fusable windows** — a branch landing
  in the middle of what would otherwise quicken into one
  superinstruction (fusion must refuse the window; the differential
  checker proves the refusal is transcript-neutral);
* **megamorphic sites over unrelated classes** — the frontend requires
  a common supertype, the assembler does not;
* **missing-selector traps** — a receiver class that simply lacks the
  method, after the site has been quickened by well-behaved receivers;
* **raw guest faults with hand-placed pcs** — ``PUSH 0; MOD`` (the
  fuse-time guard must keep it unfused and the raw handler must fault),
  null field reads, out-of-range array indexing, unbounded recursion
  into the frame limit, and runaway loops into the step budget.

Each generated program is a ``func main/0`` whose body concatenates a
few randomly chosen *shapes*.  Every shape is stack-neutral, owns its
label namespace, and allocates its locals from a shared counter, so any
combination assembles.  At most one *faulting* shape is emitted, always
last — everything before it is ordinary transcript the configurations
must agree on.
"""

from __future__ import annotations

import random

#: Non-faulting building blocks.
QUIET_SHAPES = (
    "fusable_loop",
    "interior_jump",
    "mega_dispatch",
    "accessor_leaf",
    "static_chain",
)

#: Shapes that end the run with a guest error (at most one, last).
FAULT_SHAPES = (
    "push_zero_mod",
    "div_zero",
    "null_getfield",
    "array_oob",
    "missing_selector",
    "deep_recursion",
    "runaway_loop",
)


def generate_asm(seed: int) -> str:
    """Generate assembly text for one random fuzzing subject."""
    rng = random.Random(seed)
    gen = _AsmGen(rng)
    shapes = [rng.choice(QUIET_SHAPES) for _ in range(rng.randint(1, 3))]
    if rng.random() < 0.5:
        shapes.append(rng.choice(FAULT_SHAPES))
    return gen.build(shapes)


class _AsmGen:
    """Accumulates classes, helper functions, and main-body lines."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.decls: list[str] = []
        self.body: list[str] = []
        self.next_local = 0
        self.next_label = 0
        self.uniq = 0

    def local(self) -> int:
        slot = self.next_local
        self.next_local += 1
        return slot

    def label(self, stem: str) -> str:
        self.next_label += 1
        return f"{stem}{self.next_label}"

    def build(self, shapes: list[str]) -> str:
        for shape in shapes:
            getattr(self, "_" + shape)()
        lines = list(self.decls)
        lines.append(f"func main/0 locals={max(self.next_local, 1)} void")
        lines.extend("  " + line for line in self.body)
        lines.append("  RETURN")
        lines.append("end")
        return "\n".join(lines)

    # -- quiet shapes ---------------------------------------------------------

    def _fusable_loop(self) -> None:
        """A counting loop made of back-to-back fusable windows
        (LOAD/PUSH/ADD/STORE, LOAD/PUSH/compare/JUMP_IF_FALSE)."""
        i, acc = self.local(), self.local()
        top = self.label("loop")
        n = self.rng.randint(150, 500)
        step = self.rng.randint(1, 7)
        self.body += [
            "PUSH 0", f"STORE {i}",
            "PUSH 0", f"STORE {acc}",
            f"label {top}",
            f"LOAD {acc}", f"PUSH {step}", "ADD", f"STORE {acc}",
            f"LOAD {i}", "PUSH 1", "ADD", f"STORE {i}",
            f"LOAD {i}", f"PUSH {n}", "LT", f"JUMP_IF_TRUE {top}",
            f"LOAD {acc}", "PRINT",
        ]

    def _interior_jump(self) -> None:
        """A branch target landing between ``LOAD`` and ``PUSH`` of what
        would otherwise fuse into LOAD_PUSH_ADD_STORE.  Fusion must not
        quicken across the interior target, and the split window must
        stay transcript-identical to the unfused run."""
        i, acc = self.local(), self.local()
        mid, done = self.label("mid"), self.label("done")
        n = self.rng.randint(120, 400)
        k = self.rng.randint(1, 9)
        self.body += [
            "PUSH 0", f"STORE {i}",
            f"PUSH {k}", f"STORE {acc}",
            # Straight-line entry seeds the stack with acc, exactly as
            # the back-edge below does, then falls into the window.
            f"LOAD {acc}",
            # pc of `mid` is the PUSH — the *interior* of the fusable
            # run [LOAD acc; PUSH 3; ADD; STORE acc] in the raw stream.
            f"label {mid}",
            "PUSH 3", "ADD", f"STORE {acc}",
            f"LOAD {i}", "PUSH 1", "ADD", f"STORE {i}",
            f"LOAD {i}", f"PUSH {n}", "LT", f"JUMP_IF_FALSE {done}",
            f"LOAD {acc}", f"JUMP {mid}",
            f"label {done}",
            f"LOAD {acc}", "PRINT",
        ]

    def _mega_dispatch(self) -> None:
        """One CALL_VIRTUAL site rotated over N unrelated classes —
        monomorphic to megamorphic depending on N."""
        n = self.rng.choice([2, 3, 4, 9, 12])
        base = self.uniq
        self.uniq += n
        sel = f"g{base}"
        for k in range(n):
            cls = f"M{base + k}"
            self.decls += [
                f"class {cls}",
                f"method {cls}.{sel}/1",
                f"  PUSH {k + 1}",
                "  RETURN_VAL",
                "end",
            ]
        arr, i, acc = self.local(), self.local(), self.local()
        top = self.label("mega")
        rounds = n * self.rng.randint(8, 24)
        self.body += [f"PUSH {n}", "NEW_ARRAY", f"STORE {arr}"]
        for k in range(n):
            self.body += [f"LOAD {arr}", f"PUSH {k}", f"NEW M{base + k}", "ASTORE"]
        self.body += [
            "PUSH 0", f"STORE {i}",
            "PUSH 0", f"STORE {acc}",
            f"label {top}",
            f"LOAD {arr}", f"LOAD {i}", f"PUSH {n}", "MOD", "ALOAD",
            f"CALL_VIRTUAL {sel} 0",
            f"LOAD {acc}", "ADD", f"STORE {acc}",
            f"LOAD {i}", "PUSH 1", "ADD", f"STORE {i}",
            f"LOAD {i}", f"PUSH {rounds}", "LT", f"JUMP_IF_TRUE {top}",
            f"LOAD {acc}", "PRINT",
        ]

    def _accessor_leaf(self) -> None:
        """A getter-shaped method driven hot: LOAD 0; GETFIELD; RETURN_VAL
        is the canonical IC leaf-template pattern."""
        cls = f"A{self.uniq}"
        self.uniq += 1
        self.decls += [
            f"class {cls} fields v",
            f"method {cls}.get/1",
            "  LOAD 0",
            f"  GETFIELD {cls}.v",
            "  RETURN_VAL",
            "end",
            f"method {cls}.set/2",
            "  LOAD 0",
            "  LOAD 1",
            f"  PUTFIELD {cls}.v",
            "  RETURN",
            "end",
        ]
        obj, i, acc = self.local(), self.local(), self.local()
        top = self.label("leaf")
        n = self.rng.randint(120, 450)
        self.body += [
            f"NEW {cls}", f"STORE {obj}",
            f"LOAD {obj}", f"PUSH {self.rng.randint(1, 50)}", "CALL_VIRTUAL set 1",
            "PUSH 0", f"STORE {i}",
            "PUSH 0", f"STORE {acc}",
            f"label {top}",
            f"LOAD {obj}", "CALL_VIRTUAL get 0",
            f"LOAD {acc}", "ADD", f"STORE {acc}",
            f"LOAD {i}", "PUSH 1", "ADD", f"STORE {i}",
            f"LOAD {i}", f"PUSH {n}", "LT", f"JUMP_IF_TRUE {top}",
            f"LOAD {acc}", "PRINT",
        ]

    def _static_chain(self) -> None:
        """A short chain of static calls, the last one self-recursive
        with a bounded countdown."""
        base = self.uniq
        self.uniq += 1
        f1, f2 = f"s{base}a", f"s{base}b"
        depth = self.rng.randint(3, 20)
        self.decls += [
            f"func {f2}/1",
            "  LOAD 0",
            "  PUSH 0",
            "  LE",
            "  JUMP_IF_FALSE recurse",
            "  PUSH 1",
            "  RETURN_VAL",
            "label recurse",
            "  LOAD 0",
            "  PUSH 1",
            "  SUB",
            f"  CALL_STATIC {f2} 1",
            "  LOAD 0",
            "  ADD",
            "  RETURN_VAL",
            "end",
            f"func {f1}/1",
            "  LOAD 0",
            f"  CALL_STATIC {f2} 1",
            "  PUSH 7",
            "  ADD",
            "  RETURN_VAL",
            "end",
        ]
        self.body += [f"PUSH {depth}", f"CALL_STATIC {f1} 1", "PRINT"]

    # -- faulting shapes (always last) ----------------------------------------

    def _push_zero_mod(self) -> None:
        """``PUSH 0; MOD`` — the fuse-time guard must refuse to build
        F_PUSH_MOD, and the raw MOD handler faults at the same pc on
        every configuration."""
        self.body += [f"PUSH {self.rng.randint(1, 99)}", "PUSH 0", "MOD", "PRINT"]

    def _div_zero(self) -> None:
        self.body += [f"PUSH {self.rng.randint(1, 99)}", "PUSH 0", "DIV", "PRINT"]

    def _null_getfield(self) -> None:
        cls = f"N{self.uniq}"
        self.uniq += 1
        self.decls += [f"class {cls} fields v"]
        slot = self.local()
        self.body += [
            "PUSH_NULL", f"STORE {slot}",
            f"LOAD {slot}", f"GETFIELD {cls}.v", "PRINT",
        ]

    def _array_oob(self) -> None:
        size = self.rng.randint(1, 5)
        slot = self.local()
        self.body += [
            f"PUSH {size}", "NEW_ARRAY", f"STORE {slot}",
            f"LOAD {slot}", f"PUSH {size + self.rng.randint(0, 2)}", "ALOAD", "PRINT",
        ]

    def _missing_selector(self) -> None:
        """Quicken a site with a well-behaved receiver, then hand it a
        class that does not implement the selector."""
        base = self.uniq
        self.uniq += 2
        good, bad, sel = f"G{base}", f"B{base}", f"h{base}"
        self.decls += [
            f"class {good}",
            f"method {good}.{sel}/1",
            "  PUSH 11",
            "  RETURN_VAL",
            "end",
            f"class {bad}",
        ]
        obj, i = self.local(), self.local()
        top = self.label("trap")
        self.body += [
            f"NEW {good}", f"STORE {obj}",
            "PUSH 0", f"STORE {i}",
            f"label {top}",
            f"LOAD {obj}", f"CALL_VIRTUAL {sel} 0", "POP",
            f"NEW {bad}", f"STORE {obj}",
            f"LOAD {i}", "PUSH 1", "ADD", f"STORE {i}",
            f"LOAD {i}", "PUSH 3", "LT", f"JUMP_IF_TRUE {top}",
        ]

    def _deep_recursion(self) -> None:
        fn = f"over{self.uniq}"
        self.uniq += 1
        self.decls += [
            f"func {fn}/1",
            "  LOAD 0",
            "  PUSH 1",
            "  ADD",
            f"  CALL_STATIC {fn} 1",
            "  RETURN_VAL",
            "end",
        ]
        self.body += ["PUSH 0", f"CALL_STATIC {fn} 1", "PRINT"]

    def _runaway_loop(self) -> None:
        """An infinite counting loop: terminated only by ``max_steps``
        (StepLimitExceeded is itself a compared transcript)."""
        slot = self.local()
        top = self.label("spin")
        self.body += [
            "PUSH 0", f"STORE {slot}",
            f"label {top}",
            f"LOAD {slot}", "PUSH 1", "ADD", f"STORE {slot}",
            f"JUMP {top}",
        ]
