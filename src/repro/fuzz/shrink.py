"""Deterministic delta-debugging minimizer for violating programs.

Works on *lines of text* (Mini source or assembly — the generators both
emit line-oriented programs) against an arbitrary predicate: "does this
candidate still exhibit the same violation?".  Classic ddmin structure:
remove contiguous blocks of halving size, then single lines, repeated
to a fixpoint.  No randomness anywhere, so a fixed seed's violation
always shrinks to the same reproducer.

The predicate owns all validity checking: a candidate that no longer
parses, assembles, or type-checks must simply return ``False``.
"""

from __future__ import annotations


def shrink_lines(lines, predicate, max_rounds: int = 40):
    """Minimize ``lines`` while ``predicate(candidate)`` stays true.

    ``lines`` must already satisfy the predicate.  Returns the smallest
    list found (1-minimal: removing any single remaining line breaks
    the predicate, unless ``max_rounds`` was exhausted first).
    """
    lines = list(lines)
    if not predicate(lines):
        raise ValueError("shrink_lines needs an initially-violating input")
    for _ in range(max_rounds):
        shrunk = _one_round(lines, predicate)
        if len(shrunk) == len(lines):
            return shrunk
        lines = shrunk
    return lines


def _one_round(lines, predicate):
    size = max(1, len(lines) // 2)
    while True:
        index = 0
        while index < len(lines):
            candidate = lines[:index] + lines[index + size:]
            if candidate and predicate(candidate):
                lines = candidate
                # Same index now points at the next untried block.
            else:
                index += size
        if size == 1:
            return lines
        size = max(1, size // 2)
