"""Seeded generator of random well-typed Mini programs.

Every program this module emits compiles, type-checks, and terminates
within a bounded step budget (possibly by *faulting* — guest errors are
legitimate transcripts for the differential checker, which demands they
be identical across configurations).  The shapes are chosen to stress
the machinery under test:

* virtual-dispatch webs over 2–16 receiver classes rotated through one
  call site (IC transitions: monomorphic → polymorphic → megamorphic);
* accessor-shaped leaf methods (field read + return) that qualify for
  the IC leaf-template fast path;
* tight arithmetic loops built from fusable instruction runs
  (``LOAD/PUSH/ADD/STORE``, compare+branch);
* bounded self-recursion (static and virtual);
* optionally one runtime fault placed after the hot section, so the
  pre-fault transcript is long enough to be interesting: division by a
  value that reaches zero, an out-of-range array read, a null receiver,
  or recursion past the frame limit.
"""

from __future__ import annotations

import random

#: Fault shapes `generate_mini` can append (at most one per program).
FAULTS = ("none", "div_zero", "array_oob", "null_receiver", "deep_recursion")


def generate_mini(seed: int) -> str:
    """Generate Mini source for one random differential-fuzzing subject."""
    rng = random.Random(seed)
    num_classes = rng.choice([2, 2, 3, 3, 4, 6, 8, 12, 16])
    num_methods = rng.randint(2, 4)
    iterations = rng.randint(60, 240)
    lines: list[str] = []

    # A single-chain hierarchy: C0 is the root, each C{i} extends
    # C{i-1} and overrides a subset of the methods, so one call site
    # rotating over the classes exercises every IC state.
    for class_index in range(num_classes):
        extends = f" extends C{class_index - 1}" if class_index else ""
        lines.append(f"class C{class_index}{extends} {{")
        if class_index == 0:
            lines.append("  var v: int;")
            # Accessor-shaped leaves: one getter and one setter-ish
            # method whose bodies match the IC leaf-template patterns.
            lines.append("  def getv(): int { return this.v; }")
            lines.append("  def bump(): int { this.v = this.v + 1; return this.v; }")
        overriding = (
            range(num_methods)
            if class_index == 0
            else sorted(rng.sample(range(num_methods), max(1, num_methods // 2)))
        )
        for m in overriding:
            lines.extend(_method(rng, class_index, m))
        lines.append("}")

    if rng.random() < 0.6:
        depth = rng.randint(4, 24)
        lines.append(
            "def rec(n: int): int {"
            " if (n <= 0) { return 1; }"
            " return (rec(n - 1) + n) % 65521; }"
        )
        recursion = f"  total = (total + rec({depth})) % 1000003;"
    else:
        recursion = None

    fault = rng.choice(FAULTS) if rng.random() < 0.45 else "none"
    lines.append(_main(rng, num_classes, num_methods, iterations, recursion, fault))
    return "\n".join(lines)


def _method(rng: random.Random, class_index: int, method_index: int) -> list[str]:
    lines = [f"  def m{method_index}(x: int): int {{"]
    lines.append(f"    var acc = x + {class_index + 1};")
    for _ in range(rng.randint(1, 4)):
        op = rng.choice(["+", "*", "-"])
        lines.append(f"    acc = (acc {op} {rng.randint(1, 97)}) % 65521;")
    if method_index > 0 and rng.random() < 0.7:
        callee = rng.randint(0, method_index - 1)
        lines.append(f"    acc = (acc + this.m{callee}(acc % 256)) % 65521;")
    if rng.random() < 0.5:
        lines.append("    acc = (acc + this.getv()) % 65521;")
    lines.append("    if (acc < 0) { acc = 0 - acc; }")
    lines.append("    return acc;")
    lines.append("  }")
    return lines


def _main(
    rng: random.Random,
    num_classes: int,
    num_methods: int,
    iterations: int,
    recursion: str | None,
    fault: str,
) -> str:
    top = num_methods - 1
    lines = ["def main() {"]
    lines.append(f"  var objs = new C0[{num_classes}];")
    for i in range(num_classes):
        cls = rng.randint(0, num_classes - 1)
        lines.append(f"  objs[{i}] = new C{cls}();")
    lines.append("  var total = 0;")
    lines.append(f"  for (var i = 0; i < {iterations}; i = i + 1) {{")
    lines.append(
        f"    total = (total + objs[i % {num_classes}].m{top}(i)) % 1000003;"
    )
    if rng.random() < 0.5:
        lines.append(f"    total = (total + objs[0].bump()) % 1000003;")
    lines.append("  }")
    if recursion is not None:
        lines.append(recursion)
    lines.append("  print(total);")
    if fault == "div_zero":
        # The divisor walks down to zero; every config must fault at
        # the same instruction with the same synced counters.
        k = rng.randint(1, 5)
        lines.append(f"  var d = {k};")
        lines.append(f"  for (var j = 0; j < {k + 1}; j = j + 1) {{")
        lines.append("    total = total + 100 / d;")
        lines.append("    d = d - 1;")
        lines.append("  }")
        lines.append("  print(total);")
    elif fault == "array_oob":
        size = rng.randint(1, 4)
        lines.append(f"  var xs = new int[{size}];")
        lines.append(f"  print(xs[{size + rng.randint(0, 3)}]);")
    elif fault == "null_receiver":
        lines.append("  var gone: C0 = null;")
        lines.append("  print(gone.getv());")
    elif fault == "deep_recursion":
        lines.append("  print(rec2(100000));")
    lines.append("}")
    if fault == "deep_recursion":
        lines.append("def rec2(n: int): int {")
        lines.append("  if (n <= 0) { return 0; }")
        lines.append("  return rec2(n - 1) + 1;")
        lines.append("}")
    return "\n".join(lines)
