"""Command-line interface for the Mini toolchain.

Usage::

    repro-mini run program.mini [--vm jikes|j9] [--profile cbs|timer|whaley]
                                [--stride N] [--samples N] [--skip-policy P]
                                [--seed N] [--context-depth N] [--adaptive]
                                [--opt {0,1}] [--stats] [--dcg]
                                [--trace FILE] [--trace-format jsonl|chrome]
    repro-mini report trace_file
    repro-mini disasm program.mini
    repro-mini check program.mini

(or ``python -m repro.cli ...``).  ``--trace`` records the run's
telemetry (ticks, yieldpoint transitions, CBS windows, samples,
recompilations, inlining decisions) to FILE; ``report`` summarizes such
a file as a table.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.adaptive.controller import AdaptiveSystem
from repro.adaptive.modes import jit_only_cache
from repro.bytecode.disassembler import disassemble
from repro.frontend.codegen import compile_source
from repro.lang.errors import MiniError
from repro.inlining.new_inliner import NewJikesInliner
from repro.profiling.cbs import SKIP_POLICIES, CBSProfiler
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.loops import CBSLoopProfiler
from repro.profiling.serialize import ProfileFormatError, load_profile, save_profile
from repro.profiling.timer_sampler import TimerProfiler
from repro.profiling.whaley import WhaleyProfiler
from repro.vm.config import config_named
from repro.vm.errors import VMError
from repro.vm.interpreter import Interpreter


def _load(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    try:
        return compile_source(source, filename=path)
    except MiniError as error:
        raise SystemExit(f"compile error: {error}")


def _profiler_for(args):
    # --seed omitted → keep each profiler class's own default seed.
    seeded = {} if args.seed is None else {"seed": args.seed}
    if args.profile == "cbs":
        return CBSProfiler(
            stride=args.stride,
            samples_per_tick=args.samples,
            skip_policy=args.skip_policy,
            context_depth=args.context_depth,
            **seeded,
        )
    if args.profile == "timer":
        return TimerProfiler()
    if args.profile == "whaley":
        return WhaleyProfiler()
    if args.profile == "loops":
        return CBSLoopProfiler(
            stride=args.stride, samples_per_tick=args.samples, **seeded
        )
    return None


def _cmd_run(args) -> int:
    program = _load(args.file)
    config = config_named(args.vm)
    cache = jit_only_cache(program, config.cost_model, level=args.opt)
    vm = Interpreter(program, config, cache)

    tracer = None
    if args.trace:
        from repro.telemetry import Tracer

        tracer = Tracer()
        vm.attach_telemetry(tracer)

    if args.load_profile:
        # Offline PGO: pre-optimize everything the saved profile justifies.
        from repro.opt.pipeline import optimize_function

        try:
            offline = load_profile(args.load_profile, program)
        except ProfileFormatError as error:
            raise SystemExit(str(error))
        policy = NewJikesInliner(program)
        policy.telemetry = tracer
        for function in program.functions:
            plan = policy.plan_for(function.index, offline)
            if not plan.is_empty():
                vm.code_cache.install(optimize_function(program, plan).function, 2)

    perfect = None
    if args.dcg:
        perfect = ExhaustiveProfiler()
        perfect.install(vm)
    profiler = _profiler_for(args)
    if profiler is not None:
        vm.attach_profiler(profiler)
    if args.adaptive:
        AdaptiveSystem(program, NewJikesInliner(program)).install(vm)
        if profiler is None:
            print(
                "note: --adaptive without --profile never promotes "
                "(no samples); adding cbs",
                file=sys.stderr,
            )
            args.profile = "cbs"
            profiler = _profiler_for(args)
            vm.attach_profiler(profiler)

    try:
        from repro.telemetry.scopes import trace_scope

        with trace_scope(tracer, "run", file=args.file, vm=args.vm):
            vm.run()
    except VMError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 1

    for value in vm.output:
        print(value)
    if tracer is not None:
        from repro.telemetry import export

        try:
            export(tracer, args.trace, args.trace_format)
        except OSError as error:
            print(f"cannot write trace {args.trace}: {error}", file=sys.stderr)
            return 1
        print(
            f"-- trace ({args.trace_format}, {len(tracer.events)} events) "
            f"written to {args.trace}",
            file=sys.stderr,
        )
    if args.save_profile:
        source = profiler if profiler is not None else perfect
        if source is None or isinstance(source, CBSLoopProfiler):
            print(
                "note: --save-profile needs a DCG profiler (cbs/timer) or "
                "--dcg; nothing saved",
                file=sys.stderr,
            )
        else:
            save_profile(source.dcg, program, args.save_profile)
            print(f"-- profile saved to {args.save_profile}", file=sys.stderr)
    if args.stats:
        print(
            f"-- steps={vm.steps} vtime={vm.time} calls={vm.call_count} "
            f"ticks={vm.ticks} methods={vm.methods_executed} "
            f"compile_time={vm.code_cache.compile_time}",
            file=sys.stderr,
        )
    if isinstance(profiler, CBSLoopProfiler):
        print("-- sampled loop profile:", file=sys.stderr)
        print(profiler.describe(program), file=sys.stderr)
    elif profiler is not None and args.dcg:
        from repro.profiling.metrics import accuracy

        print("-- sampled dynamic call graph:", file=sys.stderr)
        print(profiler.dcg.describe(program, limit=12), file=sys.stderr)
        print(
            f"-- accuracy vs exhaustive: "
            f"{accuracy(profiler.dcg, perfect.dcg):.1f}%",
            file=sys.stderr,
        )
    elif args.dcg:
        print("-- exhaustive dynamic call graph:", file=sys.stderr)
        print(perfect.dcg.describe(program, limit=12), file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.telemetry import TraceFormatError, load_trace, summarize_trace

    try:
        trace = load_trace(args.trace_file)
    except TraceFormatError as error:
        raise SystemExit(str(error))
    print(summarize_trace(trace, histograms=not args.no_histograms))
    return 0


def _cmd_disasm(args) -> int:
    print(disassemble(_load(args.file)))
    return 0


def _cmd_check(args) -> int:
    program = _load(args.file)
    print(
        f"{args.file}: OK ({len(program.classes)} classes, "
        f"{len(program.functions)} functions, "
        f"{program.total_bytecode_size()} bytecode bytes)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-mini", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="compile and execute a Mini program")
    run.add_argument("file")
    run.add_argument("--vm", choices=["jikes", "j9"], default="jikes")
    run.add_argument(
        "--profile",
        choices=["cbs", "timer", "whaley", "loops", "none"],
        default="none",
    )
    run.add_argument(
        "--save-profile", metavar="PATH", help="write the collected DCG as JSON"
    )
    run.add_argument(
        "--load-profile",
        metavar="PATH",
        help="pre-optimize using a previously saved profile (offline PGO)",
    )
    run.add_argument("--stride", type=int, default=3)
    run.add_argument("--samples", type=int, default=16)
    run.add_argument(
        "--skip-policy",
        choices=list(SKIP_POLICIES),
        default="random",
        help="CBS initial-skip selection (paper §4)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="PRNG seed for cbs/loops profilers (default: the profiler's own)",
    )
    run.add_argument(
        "--context-depth",
        type=int,
        default=1,
        help="CBS calling-context depth (>1 records a CCT alongside the DCG)",
    )
    run.add_argument("--opt", type=int, choices=[0, 1], default=0)
    run.add_argument(
        "--adaptive", action="store_true", help="enable adaptive recompilation"
    )
    run.add_argument("--stats", action="store_true", help="print VM statistics")
    run.add_argument("--dcg", action="store_true", help="print the call graph")
    run.add_argument(
        "--trace", metavar="FILE", help="record telemetry events/metrics to FILE"
    )
    run.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format (chrome = trace_event JSON for chrome://tracing)",
    )
    run.set_defaults(handler=_cmd_run)

    report = commands.add_parser(
        "report", help="summarize a telemetry trace written by run --trace"
    )
    report.add_argument("trace_file")
    report.add_argument(
        "--no-histograms",
        action="store_true",
        help="omit the per-histogram bucket tables",
    )
    report.set_defaults(handler=_cmd_report)

    disasm = commands.add_parser("disasm", help="print a program's bytecode")
    disasm.add_argument("file")
    disasm.set_defaults(handler=_cmd_disasm)

    check = commands.add_parser("check", help="parse and type check only")
    check.add_argument("file")
    check.set_defaults(handler=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pipe (head, less) closed early; not an error.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
