"""Command-line interface for the Mini toolchain.

Usage::

    repro-mini run program.mini [--vm jikes|j9] [--profile cbs|timer|whaley]
                                [--stride N] [--samples N] [--skip-policy P]
                                [--seed N] [--context-depth N] [--adaptive]
                                [--opt {0,1}] [--no-fuse] [--no-ic] [--no-jit]
                                [--paths exhaustive|mincov|cbs] [--fuse-paths]
                                [--stats] [--dcg]
                                [--trace FILE] [--trace-format jsonl|chrome]
                                [--publish HOST:PORT] [--publish-every K]
                                [--warm-start] [--strict]
                                [--metrics-port P] [--flight-dump PATH]
                                [--no-flight]
    repro-mini serve [--host H] [--port P] [--root DIR] [--decay F]
                     [--workers N] [--coalesce] [--rate R] [--burst B]
                     [--http-port P] [--trace FILE]
    repro-mini fleet-bench [--publishers N] [--batches B] [--edges E]
                           [--workers N] [--jobs J] [--quick] [--json]
                           [--write PATH] [--check PATH]
    repro-mini top HOST:PORT [--interval S] [--once]
    repro-mini report trace_file [--json] [--no-histograms]
    repro-mini bench [--benchmarks a,b] [--profilers cbs,timer] [--seeds 1,2]
                     [--size S] [--vm jikes|j9] [--jobs N] [--json]
    repro-mini disasm program.mini [--fused | --ic | --paths | --jit | --spec]
                                   [--method N]
    repro-mini check program.mini
    repro-mini fuzz [--seeds N] [--jobs K] [--start S] [--vm jikes|j9]
                    [--save-repros DIR] [--replay DIR] [--no-shrink] [--json]

(or ``python -m repro.cli ...``).  ``--trace`` records the run's
telemetry (ticks, yieldpoint transitions, CBS windows, samples,
recompilations, inlining decisions) to FILE; ``report`` summarizes such
a file as a table.  See docs/OBSERVABILITY.md.

``serve`` runs the fleet profile-aggregation service; ``run --publish``
streams DCG deltas to it in the background (never blocking the VM) and
``--warm-start`` seeds the adaptive optimizer from the fleet's
aggregated profile before execution.  See docs/FLEET.md.

``fuzz`` runs the differential fuzzer: random programs executed across
the whole ``fuse × ic × jit × profiler × telemetry`` configuration
matrix,
checking the identity invariants; violations are triaged, shrunk, and
(with ``--save-repros``) written out as reproducers.  ``--replay DIR``
re-checks a committed reproducer corpus instead.  See docs/FUZZING.md.

Hot methods run through the opt-level-3 template JIT by default:
bodies compile to generated host functions that de-optimize back to
the interpreter at tick boundaries and guard failures, keeping every
observable bit-identical.  ``--no-jit`` turns it off, ``--stats``
prints the ``jit:`` counter line, and ``disasm --jit`` shows the
generated code.  See docs/JIT.md.

``run --paths MODE`` attaches the Ball-Larus path profiler: every
acyclic (back-edge-truncated) intraprocedural path is numbered and
counted — exhaustively, with minimum-coverage counter placement
(``mincov``), or sampled in CBS windows (``cbs``).  Path rows ride in
saved profiles; ``--fuse-paths`` re-aims superinstruction fusion at the
recorded hot paths.  See docs/PATHS.md.

Live observability: ``serve --http-port`` and ``run --metrics-port``
expose ``/metrics`` (Prometheus text), ``/healthz``, and ``/status``;
``top`` polls a ``/status`` endpoint into a live terminal view.  Every
``run`` keeps a flight recorder (a bounded in-memory ring; disable with
``--no-flight``) and dumps it as ``PROGRAM.flight.jsonl`` when the run
faults.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.adaptive.controller import AdaptiveSystem
from repro.adaptive.modes import jit_only_cache
from repro.bytecode.disassembler import disassemble
from repro.frontend.codegen import compile_source
from repro.lang.errors import MiniError
from repro.inlining.new_inliner import NewJikesInliner
from repro.profiling.cbs import SKIP_POLICIES, CBSProfiler
from repro.profiling.exhaustive import ExhaustiveProfiler
from repro.profiling.loops import CBSLoopProfiler
from repro.profiling.serialize import ProfileFormatError, load_profile, save_profile
from repro.profiling.timer_sampler import TimerProfiler
from repro.profiling.whaley import WhaleyProfiler
from repro.vm.config import config_named
from repro.vm.errors import VMError
from repro.vm.interpreter import Interpreter


def _load(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    try:
        return compile_source(source, filename=path)
    except MiniError as error:
        raise SystemExit(f"compile error: {error}")


def _profiler_for(args):
    # --seed omitted → keep each profiler class's own default seed.
    seeded = {} if args.seed is None else {"seed": args.seed}
    if args.profile == "cbs":
        return CBSProfiler(
            stride=args.stride,
            samples_per_tick=args.samples,
            skip_policy=args.skip_policy,
            context_depth=args.context_depth,
            **seeded,
        )
    if args.profile == "timer":
        return TimerProfiler()
    if args.profile == "whaley":
        return WhaleyProfiler()
    if args.profile == "loops":
        return CBSLoopProfiler(
            stride=args.stride, samples_per_tick=args.samples, **seeded
        )
    return None


def _cmd_run(args) -> int:
    program = _load(args.file)
    # Adaptive runs promote to the template JIT from the controller
    # (path-hot level-2 methods first) instead of the plain-run eager
    # manager, so the config flag stays off there.
    adaptive_mode = args.adaptive or args.warm_start
    config = config_named(
        args.vm,
        fuse=not args.no_fuse,
        ic=not args.no_ic,
        paths=args.paths is not None,
        jit=not args.no_jit and not adaptive_mode,
    )

    path_heat = None
    if args.fuse_paths:
        # Path-guided fusion consumes the path rows of a saved profile
        # (collect one with ``run --paths MODE --save-profile``).
        if not args.load_profile:
            raise SystemExit(
                "--fuse-paths needs --load-profile PATH (a profile saved "
                "by a run with --paths)"
            )
        from repro.profiling.paths import PathHeat
        from repro.profiling.serialize import load_profile_paths

        try:
            path_profile = load_profile_paths(
                args.load_profile, program, strict=args.strict
            )
        except ProfileFormatError as error:
            raise SystemExit(str(error))
        if not len(path_profile):
            raise SystemExit(
                f"--fuse-paths: {args.load_profile} carries no path rows "
                "(save one with --paths MODE --save-profile)"
            )
        path_heat = PathHeat.from_profile(path_profile, program)

    cache = jit_only_cache(
        program, config.cost_model, level=args.opt, fuse=config.fuse,
        ic=config.ic, paths=config.paths, path_heat=path_heat,
    )
    vm = Interpreter(program, config, cache)

    path_tracker = None
    if args.paths is not None:
        from repro.profiling.paths import PathTracker

        path_tracker = PathTracker(
            mode=args.paths, stride=args.stride, samples_per_tick=args.samples
        )
        vm.attach_paths(path_tracker)

    tracer = None
    if args.trace:
        from repro.telemetry import Tracer

        tracer = Tracer()
        vm.attach_telemetry(tracer)

    if args.load_profile:
        # Offline PGO: pre-optimize everything the saved profile justifies.
        from repro.opt.pipeline import optimize_function

        try:
            offline = load_profile(args.load_profile, program, strict=args.strict)
        except ProfileFormatError as error:
            raise SystemExit(str(error))
        policy = NewJikesInliner(program)
        policy.telemetry = tracer
        for function in program.functions:
            plan = policy.plan_for(function.index, offline)
            if not plan.is_empty():
                vm.code_cache.install(optimize_function(program, plan).function, 2)

    publish_address = None
    if args.publish:
        from repro.fleet.client import parse_address

        try:
            publish_address = parse_address(args.publish)
        except ValueError as error:
            raise SystemExit(str(error))

    if args.warm_start and not args.adaptive:
        print(
            "note: --warm-start seeds the adaptive controller; enabling "
            "--adaptive",
            file=sys.stderr,
        )
        args.adaptive = True

    perfect = None
    if args.dcg:
        perfect = ExhaustiveProfiler()
        perfect.install(vm)
    profiler = _profiler_for(args)
    if profiler is not None:
        vm.attach_profiler(profiler)
    adaptive = None
    if args.adaptive:
        from repro.adaptive.controller import AdaptiveConfig

        adaptive = AdaptiveSystem(
            program,
            NewJikesInliner(program),
            AdaptiveConfig(jit=not args.no_jit),
        )
        adaptive.install(vm)
        if profiler is None:
            print(
                "note: --adaptive without --profile never promotes "
                "(no samples); adding cbs",
                file=sys.stderr,
            )
            args.profile = "cbs"
            profiler = _profiler_for(args)
            vm.attach_profiler(profiler)

    if args.warm_start:
        # Best-effort: an unreachable server or unusable snapshot means
        # a cold start, never a failed run (strict mode excepted).
        if publish_address is None:
            raise SystemExit("--warm-start needs --publish HOST:PORT to fetch from")
        from repro.fleet.client import fetch_snapshot
        from repro.profiling.serialize import dcg_from_dict

        snapshot = fetch_snapshot(publish_address, program.fingerprint())
        if snapshot is None:
            print(
                "note: no fleet profile available; starting cold",
                file=sys.stderr,
            )
        else:
            try:
                warm_dcg = dcg_from_dict(snapshot, program, strict=args.strict)
            except ProfileFormatError as error:
                if args.strict:
                    raise SystemExit(f"warm-start profile rejected: {error}")
                print(
                    f"note: fleet profile unusable ({error}); starting cold",
                    file=sys.stderr,
                )
            else:
                promoted = adaptive.warm_start(vm, warm_dcg)
                print(
                    f"-- warm start: {len(promoted)} methods pre-optimized "
                    f"from fleet profile ({len(warm_dcg)} edges)",
                    file=sys.stderr,
                )

    publisher = None
    if publish_address is not None:
        from repro.fleet.client import FleetPublisher

        # Installed after the adaptive system: the publisher chains onto
        # an existing tick hook, charges no virtual time, and does all
        # socket work on a daemon thread.
        publisher = FleetPublisher(
            publish_address,
            program,
            every_ticks=args.publish_every,
            epoch=args.publish_epoch,
            telemetry=tracer,
        )
        publisher.install(vm)

    flight = None
    if not args.no_flight:
        from repro.telemetry.ring import FlightRecorder

        # Always on: ring-buffer writes only (no I/O, no virtual-time
        # charge); dumped as a post-mortem artifact when the run faults.
        flight = FlightRecorder()
        vm.attach_flight(flight)

    metrics_server = None
    if args.metrics_port is not None:
        from repro.telemetry import Tracer
        from repro.telemetry.httpapi import HttpServerThread, ObservabilityHTTP

        if tracer is None:
            # /metrics needs a registry; attaching a tracer never
            # perturbs the run (same guarantee --trace relies on).
            tracer = Tracer()
            vm.attach_telemetry(tracer)

        def live_status():
            status = {
                "service": "repro-mini run",
                "file": args.file,
                "vm": args.vm,
                "vtime": vm.time,
                "steps": vm.steps,
                "ticks": vm.ticks,
                "calls": vm.call_count,
                "depth": len(vm.frames),
                "finished": vm.finished,
            }
            if flight is not None:
                status["flight"] = flight.stats()
            return status

        metrics_server = HttpServerThread(
            ObservabilityHTTP(registry=tracer.metrics, status_fn=live_status),
            port=args.metrics_port,
        )
        try:
            address = metrics_server.start()
        except OSError as error:
            raise SystemExit(f"cannot start metrics listener: {error}")
        print(
            f"-- metrics listening on http://{address[0]}:{address[1]} "
            f"(/metrics /healthz /status)",
            file=sys.stderr,
            flush=True,
        )

    def dump_flight(reason: str) -> None:
        if flight is None:
            return
        path = args.flight_dump or f"{args.file}.flight.jsonl"
        flight.record("dump", reason=reason)
        if tracer is not None:
            flight.note_metrics(tracer.metrics)
        try:
            flight.dump(path)
        except OSError as error:
            print(f"cannot write flight recording {path}: {error}", file=sys.stderr)
            return
        print(f"-- flight recording written to {path}", file=sys.stderr)

    try:
        from repro.telemetry.scopes import trace_scope

        with trace_scope(tracer, "run", file=args.file, vm=args.vm):
            vm.run()
    except VMError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        if publisher is not None:
            publisher.close()
        dump_flight(f"guest fault: {type(error).__name__}")
        if metrics_server is not None:
            metrics_server.stop()
        return 1
    except Exception:
        # Host crash: this is exactly what the flight recorder is for.
        dump_flight("host crash")
        if metrics_server is not None:
            metrics_server.stop()
        raise

    if publisher is not None:
        publisher.flush(vm)
        publisher.close()
        print(f"-- {publisher.describe()}", file=sys.stderr)

    for value in vm.output:
        print(value)
    if args.flight_dump:
        dump_flight("requested via --flight-dump")
    if metrics_server is not None:
        metrics_server.stop()
    if tracer is not None and args.trace:
        from repro.telemetry import export

        try:
            export(tracer, args.trace, args.trace_format)
        except OSError as error:
            print(f"cannot write trace {args.trace}: {error}", file=sys.stderr)
            return 1
        print(
            f"-- trace ({args.trace_format}, {len(tracer.events)} events) "
            f"written to {args.trace}",
            file=sys.stderr,
        )
    if args.save_profile:
        source = profiler if profiler is not None else perfect
        path_rows = path_tracker.profile if path_tracker is not None else None
        if (source is None or isinstance(source, CBSLoopProfiler)) and (
            path_rows is None
        ):
            print(
                "note: --save-profile needs a DCG profiler (cbs/timer), "
                "--dcg, or --paths; nothing saved",
                file=sys.stderr,
            )
        else:
            from repro.profiling.dcg import DCG

            dcg = (
                source.dcg
                if source is not None and not isinstance(source, CBSLoopProfiler)
                else DCG()
            )
            try:
                save_profile(dcg, program, args.save_profile, paths=path_rows)
            except OSError as error:
                print(
                    f"cannot write profile {args.save_profile}: {error}",
                    file=sys.stderr,
                )
                return 1
            print(f"-- profile saved to {args.save_profile}", file=sys.stderr)
    if args.stats:
        print(
            f"-- steps={vm.steps} vtime={vm.time} calls={vm.call_count} "
            f"ticks={vm.ticks} methods={vm.methods_executed} "
            f"compile_time={vm.code_cache.compile_time}",
            file=sys.stderr,
        )
        print(
            f"-- fusion: sites={vm.code_cache.fused_sites} "
            f"dispatches={vm.fused_dispatches} deopts={vm.fusion_deopts}",
            file=sys.stderr,
        )
        if vm.code_cache.ic:
            print(
                f"-- ic: sites={vm.code_cache.ic_sites} "
                f"static_sites={vm.code_cache.ic_static_sites} "
                f"megamorphic={vm.code_cache.megamorphic_sites} "
                f"misses={vm.ic_misses} transitions={vm.ic_transitions} "
                f"receiver_calls={vm.code_cache.receiver_cell_total()}",
                file=sys.stderr,
            )
        else:
            print("-- ic: disabled (--no-ic)", file=sys.stderr)
        if args.no_jit:
            print("-- jit: disabled (--no-jit)", file=sys.stderr)
        else:
            print(
                f"-- jit: compiles={vm.jit_compiles} "
                f"entries={vm.jit_entries} osr={vm.jit_osr_entries} "
                f"deopts={vm.jit_deopts} guard_exits={vm.jit_guard_exits} "
                f"call_exits={vm.jit_call_exits} "
                f"return_exits={vm.jit_return_exits} "
                f"leaf_calls={vm.jit_leaf_calls}",
                file=sys.stderr,
            )
        if path_tracker is not None:
            s = path_tracker.summary()
            print(
                f"-- paths: mode={s['mode']} total={s['total']} "
                f"distinct={s['distinct']} increments={s['increments']} "
                f"windows={s['windows']}",
                file=sys.stderr,
            )
        if publisher is not None:
            print(
                f"-- fleet: batches_sent={publisher.batches_sent} "
                f"batches_dropped={publisher.batches_dropped} "
                f"edges_sent={publisher.edges_sent} "
                f"server_dead={int(publisher.server_dead)}",
                file=sys.stderr,
            )
    if isinstance(profiler, CBSLoopProfiler):
        print("-- sampled loop profile:", file=sys.stderr)
        print(profiler.describe(program), file=sys.stderr)
    elif profiler is not None and args.dcg:
        from repro.profiling.metrics import accuracy

        print("-- sampled dynamic call graph:", file=sys.stderr)
        print(profiler.dcg.describe(program, limit=12), file=sys.stderr)
        print(
            f"-- accuracy vs exhaustive: "
            f"{accuracy(profiler.dcg, perfect.dcg):.1f}%",
            file=sys.stderr,
        )
    elif args.dcg:
        print("-- exhaustive dynamic call graph:", file=sys.stderr)
        print(perfect.dcg.describe(program, limit=12), file=sys.stderr)
    if path_tracker is not None:
        print("-- path profile:", file=sys.stderr)
        print(path_tracker.profile.describe(program, limit=8), file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import time

    from repro.fleet.repository import RepositoryError
    from repro.fleet.service import run_service

    def ready(address):
        shape = (
            f"{args.workers} shard workers" if args.workers > 1 else "single process"
        )
        print(
            f"-- fleet service listening on {address[0]}:{address[1]} "
            f"(repository {args.root}, {shape})",
            file=sys.stderr,
            flush=True,
        )

    def http_ready(address):
        print(
            f"-- observability on http://{address[0]}:{address[1]} "
            f"(/metrics /healthz /status)",
            file=sys.stderr,
            flush=True,
        )

    tracer = None
    if args.trace:
        from repro.telemetry import Tracer

        # The service has no virtual clock; merge events are stamped
        # with wall-clock microseconds so Chrome traces from a client
        # (virtual time) and the server still stitch by flow id.
        started = time.monotonic_ns()
        tracer = Tracer(clock=lambda: (time.monotonic_ns() - started) // 1000)

    try:
        if args.workers > 1:
            from repro.fleet.shard import run_sharded_service

            serve_coro = run_sharded_service(
                args.root,
                args.workers,
                host=args.host,
                port=args.port,
                decay=args.decay,
                max_edges=args.max_edges,
                persist_every=args.persist_every,
                rate=args.rate,
                burst=args.burst,
                ready=ready,
                http_port=args.http_port,
                http_ready=http_ready if args.http_port is not None else None,
                telemetry=tracer,
            )
        else:
            serve_coro = run_service(
                args.root,
                host=args.host,
                port=args.port,
                decay=args.decay,
                max_edges=args.max_edges,
                persist_every=args.persist_every,
                ready=ready,
                http_port=args.http_port,
                http_ready=http_ready if args.http_port is not None else None,
                telemetry=tracer,
                coalesce=args.coalesce,
                rate=args.rate,
                burst=args.burst,
            )
        asyncio.run(serve_coro)
    except KeyboardInterrupt:
        print("-- fleet service stopped", file=sys.stderr)
    except (OSError, ValueError, RepositoryError) as error:
        raise SystemExit(f"cannot start fleet service: {error}")
    finally:
        if tracer is not None:
            from repro.telemetry import export

            try:
                export(tracer, args.trace, args.trace_format)
            except OSError as error:
                print(f"cannot write trace {args.trace}: {error}", file=sys.stderr)
            else:
                print(
                    f"-- trace ({args.trace_format}, {len(tracer.events)} events) "
                    f"written to {args.trace}",
                    file=sys.stderr,
                )
    return 0


def _cmd_fleet_bench(args) -> int:
    """Load-test the fleet service: single process vs. sharded workers."""
    from repro.fleet.bench import run_fleet_bench

    return run_fleet_bench(args)


def _cmd_top(args) -> int:
    """Poll a fleet service's ``/status`` endpoint into a terminal view."""
    import http.client
    import json as json_module
    import time
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.harness.report import render_table

    url = f"http://{args.address}/status"

    def fetch() -> dict:
        with urlopen(url, timeout=5.0) as response:
            status = json_module.loads(response.read().decode())
        if not isinstance(status, dict):
            raise ValueError("/status did not return a JSON object")
        return status

    def render(status: dict) -> str:
        blocks = []
        totals = status.get("totals", {})
        blocks.append(
            render_table(
                ["Merges", "Rejected", "Connections", "Drops", "Quarantined"],
                [[
                    totals.get("merges", 0),
                    totals.get("rejected", 0),
                    totals.get("connections", 0),
                    totals.get("client_drops", 0),
                    totals.get("quarantined", 0),
                ]],
                title=f"fleet service @ {args.address}",
            )
        )
        shard_rows = [
            [
                entry.get("shard", "-"),
                "up" if entry.get("alive", True) else "DOWN",
                entry.get("routed", 0),
                entry.get("merges", 0),
                entry.get("queue_depth", 0),
                entry.get("coalesce_ratio", 0.0),
                entry.get("busy_rejections", 0),
                entry.get("programs", 0),
            ]
            for entry in status.get("shards", [])
        ]
        if shard_rows:
            blocks.append(
                render_table(
                    [
                        "Shard",
                        "State",
                        "Routed",
                        "Merges",
                        "Queue",
                        "Coalesce",
                        "Busy",
                        "Programs",
                    ],
                    shard_rows,
                    title="shards",
                )
            )
        program_rows = [
            [
                fingerprint[:16],
                entry.get("edges", "-"),
                entry.get("runs", "-"),
                entry.get("total_weight", "-"),
                entry.get("epoch", "-"),
                entry.get("publishes", "-"),
            ]
            for fingerprint, entry in sorted(status.get("programs", {}).items())
        ]
        if program_rows:
            blocks.append(
                render_table(
                    ["Program", "Edges", "Runs", "Weight", "Epoch", "Publishes"],
                    program_rows,
                    title="aggregates",
                )
            )
        client_rows = [
            [
                run_id[:16],
                entry.get("publishes", 0),
                entry.get("edges", 0),
                entry.get("last_seq", "-"),
                entry.get("dropped", 0),
                entry.get("drop_rate", 0.0),
            ]
            for run_id, entry in sorted(status.get("clients", {}).items())
        ]
        if client_rows:
            blocks.append(
                render_table(
                    ["Client", "Publishes", "Edges", "LastSeq", "Dropped", "DropRate"],
                    client_rows,
                    title="publishers",
                )
            )
        return "\n".join(blocks)

    while True:
        try:
            status = fetch()
        except (OSError, URLError, ValueError, http.client.HTTPException) as error:
            raise SystemExit(f"cannot poll {url}: {error}")
        if not args.once:
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
        print(render(status))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_report(args) -> int:
    from repro.telemetry import TraceFormatError, load_trace, summarize_trace

    try:
        trace = load_trace(args.trace_file)
    except TraceFormatError as error:
        raise SystemExit(str(error))
    if args.json:
        import json as json_module

        from repro.telemetry.summary import summary_dict

        print(
            json_module.dumps(
                summary_dict(trace, histograms=not args.no_histograms), indent=2
            )
        )
        return 0
    print(summarize_trace(trace, histograms=not args.no_histograms))
    return 0


def _cmd_bench(args) -> int:
    """Fan a (benchmark × profiler × seed) sweep across worker processes.

    Cell results are deterministic and ordered, so the output is
    identical for any ``--jobs`` value; only the wall-clock line (and
    the ``wall_seconds`` JSON field) varies.
    """
    import json
    import time

    from repro.benchsuite.suite import BENCHMARKS
    from repro.harness.parallel import PROFILER_FACTORIES, SweepCell, run_sweep
    from repro.harness.report import render_table

    names = args.benchmarks.split(",") if args.benchmarks else list(BENCHMARKS)
    unknown = sorted(set(names) - set(BENCHMARKS))
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s): {', '.join(unknown)} "
            f"(available: {', '.join(BENCHMARKS)})"
        )
    profilers = args.profilers.split(",")
    bad = sorted(set(profilers) - set(PROFILER_FACTORIES))
    if bad:
        raise SystemExit(
            f"unknown profiler(s): {', '.join(bad)} "
            f"(available: {', '.join(sorted(PROFILER_FACTORIES))})"
        )
    seeds = [int(s) for s in args.seeds.split(",")]

    cells: list[SweepCell] = []
    for name in names:
        for profiler in profilers:
            if profiler == "cbs":
                # Only CBS consumes a PRNG seed; other profilers get one
                # cell per benchmark regardless of the seed list.
                for seed in seeds:
                    cells.append(
                        SweepCell(
                            benchmark=name,
                            size=args.size,
                            profiler="cbs",
                            profiler_args=(
                                ("stride", args.stride),
                                ("samples_per_tick", args.samples),
                                ("seed", seed),
                            ),
                            vm=args.vm,
                        )
                    )
            else:
                cells.append(
                    SweepCell(
                        benchmark=name, size=args.size, profiler=profiler, vm=args.vm
                    )
                )

    started = time.perf_counter()
    results = run_sweep(cells, args.jobs)
    elapsed = time.perf_counter() - started

    def cell_seed(cell):
        return dict(cell.profiler_args).get("seed")

    if args.json:
        payload = {
            "size": args.size,
            "vm": args.vm,
            "jobs": args.jobs,
            "wall_seconds": round(elapsed, 3),
            "cells": [
                {
                    "benchmark": r.cell.benchmark,
                    "profiler": r.cell.profiler,
                    "seed": cell_seed(r.cell),
                    "accuracy": r.accuracy,
                    "overhead_percent": r.overhead_percent,
                    "samples": r.samples,
                    "vtime": r.time,
                }
                for r in results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [
                r.cell.benchmark,
                r.cell.profiler,
                cell_seed(r.cell) if cell_seed(r.cell) is not None else "-",
                r.accuracy,
                r.overhead_percent,
                r.samples,
                r.time,
            ]
            for r in results
        ]
        print(
            render_table(
                ["Benchmark", "Profiler", "Seed", "Acc", "Ovhd%", "Samples", "VTime"],
                rows,
                title=f"Profiler sweep ({args.size}, {args.vm})",
            )
        )
        print(f"{len(results)} cells in {elapsed:.1f}s (jobs={args.jobs})")
    return 0


def _cmd_disasm(args) -> int:
    program = _load(args.file)
    if sum((args.fused, args.ic, args.paths, args.jit, args.spec)) > 1:
        raise SystemExit(
            "--fused, --ic, --paths, --jit, and --spec are separate views; "
            "pick one"
        )
    if args.method is not None:
        if args.fused or args.ic or args.paths or args.jit or args.spec:
            raise SystemExit("--method applies to the plain bytecode view only")
        count = len(program.functions)
        if not 0 <= args.method < count:
            raise SystemExit(
                f"method index {args.method} out of range "
                f"(program has {count} function{'s' if count != 1 else ''}: "
                f"0..{count - 1})"
            )
        from repro.bytecode.disassembler import (
            describe_method_plan,
            disassemble_function,
        )

        function = program.functions[args.method]
        print(f"-- {describe_method_plan(function, program)}")
        print(disassemble_function(function, program))
        return 0
    if args.fused:
        from repro.bytecode.disassembler import disassemble_fused

        print(disassemble_fused(program), end="")
    elif args.ic:
        from repro.bytecode.disassembler import disassemble_ic

        print(disassemble_ic(program), end="")
    elif args.paths:
        from repro.bytecode.disassembler import disassemble_paths

        print(disassemble_paths(program), end="")
    elif args.jit:
        from repro.bytecode.disassembler import disassemble_jit

        print(disassemble_jit(program), end="")
    elif args.spec:
        from repro.bytecode.disassembler import disassemble_spec

        print(disassemble_spec(program), end="")
    else:
        print(disassemble(program))
    return 0


def _cmd_fuzz(args) -> int:
    import json as json_module
    import time

    from repro.fuzz.campaign import replay_corpus, run_campaign, save_reproducers

    if args.replay:
        if not os.path.isdir(args.replay):
            raise SystemExit(f"corpus directory not found: {args.replay}")
        results = replay_corpus(args.replay, vm_name=args.vm)
        if not results:
            raise SystemExit(f"no .mini/.asm reproducers in {args.replay}")
        failing = [(path, violations) for path, violations in results if violations]
        if args.json:
            print(
                json_module.dumps(
                    {
                        "replayed": len(results),
                        "failing": [
                            {
                                "path": path,
                                "violations": [v.as_dict() for v in violations],
                            }
                            for path, violations in failing
                        ],
                    },
                    indent=2,
                )
            )
        else:
            for path, violations in results:
                status = "FAIL" if violations else "ok"
                print(f"{status:4s} {path}")
                for violation in violations[:3]:
                    print(f"       {violation.invariant} @ {violation.cell}")
        if failing:
            print(
                f"-- {len(failing)}/{len(results)} reproducers regressed",
                file=sys.stderr,
            )
            return 1
        print(f"-- {len(results)} reproducers clean", file=sys.stderr)
        return 0

    if args.seeds <= 0:
        raise SystemExit("--seeds must be positive")
    started = time.perf_counter()

    def progress(partial):
        if partial.checked % 50 == 0:
            print(
                f"-- {partial.checked}/{args.seeds} checked, "
                f"{partial.violations} violations",
                file=sys.stderr,
                flush=True,
            )

    result = run_campaign(
        seeds=args.seeds,
        jobs=args.jobs,
        start=args.start,
        vm_name=args.vm,
        shrink=not args.no_shrink,
        progress=progress,
    )
    elapsed = time.perf_counter() - started

    saved: list[str] = []
    if args.save_repros and result.reproducers:
        saved = save_reproducers(result, args.save_repros)

    if args.json:
        print(
            json_module.dumps(
                {
                    "checked": result.checked,
                    "ok": result.ok,
                    "violations": result.violations,
                    "wall_seconds": round(elapsed, 3),
                    "buckets": {
                        key: {
                            "seeds": [r["seed"] for r in reports],
                            "reproducer": result.reproducers.get(key),
                        }
                        for key, reports in sorted(result.buckets.items())
                    },
                    "saved": saved,
                },
                indent=2,
            )
        )
    else:
        print(
            f"-- fuzz: {result.checked} programs checked "
            f"({result.ok} clean) in {elapsed:.1f}s (jobs={args.jobs})"
        )
        for key, reports in sorted(result.buckets.items()):
            seeds = [r["seed"] for r in reports]
            print(f"BUCKET {key}")
            print(f"  seeds: {seeds[:8]}{'...' if len(seeds) > 8 else ''}")
            repro = result.reproducers.get(key)
            if repro is not None:
                print(f"  shrunk reproducer ({repro['lines']} lines):")
                for line in repro["source"].splitlines():
                    print(f"    {line}")
        for path in saved:
            print(f"-- reproducer written to {path}", file=sys.stderr)
    if result.violations:
        print(
            f"-- {result.violations} invariant violation(s) in "
            f"{len(result.buckets)} bucket(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_check(args) -> int:
    program = _load(args.file)
    print(
        f"{args.file}: OK ({len(program.classes)} classes, "
        f"{len(program.functions)} functions, "
        f"{program.total_bytecode_size()} bytecode bytes)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-mini", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="compile and execute a Mini program")
    run.add_argument("file")
    run.add_argument("--vm", choices=["jikes", "j9"], default="jikes")
    run.add_argument(
        "--profile",
        choices=["cbs", "timer", "whaley", "loops", "none"],
        default="none",
    )
    run.add_argument(
        "--save-profile", metavar="PATH", help="write the collected DCG as JSON"
    )
    run.add_argument(
        "--load-profile",
        metavar="PATH",
        help="pre-optimize using a previously saved profile (offline PGO)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="reject stale/mismatched profiles instead of warning "
        "(applies to --load-profile and --warm-start)",
    )
    run.add_argument(
        "--publish",
        metavar="HOST:PORT",
        help="stream DCG deltas to a fleet profile service (repro-mini serve)",
    )
    run.add_argument(
        "--publish-every",
        type=int,
        default=50,
        metavar="K",
        help="batch a delta every K virtual-timer ticks (default 50)",
    )
    run.add_argument(
        "--publish-epoch",
        type=int,
        default=0,
        metavar="N",
        help="profile age stamp; newer epochs dominate under server decay",
    )
    run.add_argument(
        "--warm-start",
        action="store_true",
        help="seed the adaptive optimizer from the fleet's aggregated "
        "profile before running (implies --adaptive; needs --publish)",
    )
    run.add_argument("--stride", type=int, default=3)
    run.add_argument("--samples", type=int, default=16)
    run.add_argument(
        "--skip-policy",
        choices=list(SKIP_POLICIES),
        default="random",
        help="CBS initial-skip selection (paper §4)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="PRNG seed for cbs/loops profilers (default: the profiler's own)",
    )
    run.add_argument(
        "--context-depth",
        type=int,
        default=1,
        help="CBS calling-context depth (>1 records a CCT alongside the DCG)",
    )
    run.add_argument("--opt", type=int, choices=[0, 1], default=0)
    run.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable superinstruction fusion (classic one-op dispatch; "
        "bit-identical results, slower host execution)",
    )
    run.add_argument(
        "--no-ic",
        action="store_true",
        help="disable polymorphic inline caches (dict-vtable dispatch; "
        "bit-identical results, slower host execution, no exact "
        "receiver profile)",
    )
    run.add_argument(
        "--no-jit",
        action="store_true",
        help="disable the template JIT (interpreter-only dispatch; "
        "bit-identical results, slower host execution)",
    )
    run.add_argument(
        "--paths",
        choices=["exhaustive", "mincov", "cbs"],
        default=None,
        metavar="MODE",
        help="collect Ball-Larus path profiles (exhaustive, mincov, cbs); "
        "bit-identical program results, charged instrumentation overhead",
    )
    run.add_argument(
        "--fuse-paths",
        action="store_true",
        help="pick superinstruction windows from the hottest recorded "
        "paths instead of the greedy fuser (needs --load-profile with "
        "path rows)",
    )
    run.add_argument(
        "--adaptive", action="store_true", help="enable adaptive recompilation"
    )
    run.add_argument("--stats", action="store_true", help="print VM statistics")
    run.add_argument("--dcg", action="store_true", help="print the call graph")
    run.add_argument(
        "--trace", metavar="FILE", help="record telemetry events/metrics to FILE"
    )
    run.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format (chrome = trace_event JSON for chrome://tracing)",
    )
    run.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="P",
        help="serve /metrics, /healthz, and /status on 127.0.0.1:P while "
        "the program runs (0 picks an ephemeral port)",
    )
    run.add_argument(
        "--flight-dump",
        metavar="PATH",
        help="flight-recorder dump path (default PROGRAM.flight.jsonl; "
        "giving it explicitly also dumps on clean exits)",
    )
    run.add_argument(
        "--no-flight",
        action="store_true",
        help="disable the always-on flight recorder",
    )
    run.set_defaults(handler=_cmd_run)

    serve = commands.add_parser(
        "serve", help="run the fleet profile-aggregation service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8957,
        help="TCP port to listen on (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--root",
        default="fleet-profiles",
        metavar="DIR",
        help="snapshot repository directory (created if missing)",
    )
    serve.add_argument(
        "--decay",
        type=float,
        default=1.0,
        help="per-epoch weight decay in (0, 1]; 1.0 disables aging",
    )
    serve.add_argument(
        "--max-edges",
        type=int,
        default=None,
        metavar="N",
        help="prune persisted snapshots to the N heaviest edges",
    )
    serve.add_argument(
        "--persist-every",
        type=int,
        default=1,
        metavar="N",
        help="write a snapshot every N merges per program (default 1)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the repository across N worker processes behind a "
        "routing frontend (default 1: single process)",
    )
    serve.add_argument(
        "--coalesce",
        action="store_true",
        help="stage publishes and merge them in coalesced lumps off the "
        "accept path (always on for --workers > 1)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket limit: R publishes/sec (busy replies "
        "with retry_after above it; coalescing modes only)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="token-bucket burst depth for --rate (default max(2R, 8))",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="P",
        help="also serve /metrics, /healthz, and /status on --host:P "
        "(0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        help="record the service's telemetry (merge events, wall-clock "
        "stamped) to FILE on shutdown",
    )
    serve.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace file format for --trace",
    )
    serve.set_defaults(handler=_cmd_serve)

    top = commands.add_parser(
        "top", help="live terminal view of a fleet service's /status endpoint"
    )
    top.add_argument("address", metavar="HOST:PORT", help="observability address")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    top.set_defaults(handler=_cmd_top)

    fleet_bench = commands.add_parser(
        "fleet-bench",
        help="replay synthetic publishers against single-process and "
        "sharded fleet services; report throughput and latency",
    )
    fleet_bench.add_argument(
        "--publishers", type=int, default=1000, help="synthetic publishers"
    )
    fleet_bench.add_argument(
        "--batches", type=int, default=4, help="delta batches per publisher"
    )
    fleet_bench.add_argument(
        "--edges", type=int, default=20, help="edges per delta batch"
    )
    fleet_bench.add_argument(
        "--programs", type=int, default=32, help="distinct program fingerprints"
    )
    fleet_bench.add_argument(
        "--workers", type=int, default=4, help="shard workers for the scaled mode"
    )
    fleet_bench.add_argument(
        "--jobs", type=int, default=8, help="concurrent load connections"
    )
    fleet_bench.add_argument(
        "--quick", action="store_true", help="small fleet / fewer workers"
    )
    fleet_bench.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    fleet_bench.add_argument(
        "--write", metavar="PATH", help="write the summary JSON to PATH"
    )
    fleet_bench.add_argument(
        "--check", metavar="PATH", help="gate ratios against a baseline JSON"
    )
    fleet_bench.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="allowed fractional ratio regression vs baseline (default 0.15)",
    )
    fleet_bench.set_defaults(handler=_cmd_fleet_bench)

    report = commands.add_parser(
        "report", help="summarize a telemetry trace written by run --trace"
    )
    report.add_argument("trace_file")
    report.add_argument(
        "--no-histograms",
        action="store_true",
        help="omit the per-histogram bucket tables",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON mirroring the table summary",
    )
    report.set_defaults(handler=_cmd_report)

    bench = commands.add_parser(
        "bench", help="run a profiler sweep over the benchmark suite, in parallel"
    )
    bench.add_argument(
        "--benchmarks",
        metavar="A,B,...",
        help="comma-separated benchmark names (default: the whole suite)",
    )
    bench.add_argument(
        "--profilers",
        default="cbs",
        metavar="P,Q,...",
        help="comma-separated profilers: cbs, timer, exhaustive (default cbs)",
    )
    bench.add_argument(
        "--seeds",
        default="1234",
        metavar="S,T,...",
        help="comma-separated CBS seeds; one cell per seed (default 1234)",
    )
    bench.add_argument("--size", default="small")
    bench.add_argument("--vm", choices=["jikes", "j9"], default="jikes")
    bench.add_argument("--stride", type=int, default=3)
    bench.add_argument("--samples", type=int, default=16)
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; results are identical for any value",
    )
    bench.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    bench.set_defaults(handler=_cmd_bench)

    disasm = commands.add_parser("disasm", help="print a program's bytecode")
    disasm.add_argument("file")
    disasm.add_argument(
        "--fused",
        action="store_true",
        help="show the quickened (superinstruction) stream the VM dispatches",
    )
    disasm.add_argument(
        "--ic",
        action="store_true",
        help="show the inline-cache view: quickening call sites, "
        "dispatch-table fan-out, and leaf-template eligibility",
    )
    disasm.add_argument(
        "--method",
        type=int,
        default=None,
        metavar="N",
        help="disassemble only the function with index N",
    )
    disasm.add_argument(
        "--paths",
        action="store_true",
        help="show the Ball-Larus path view: per-method CFG blocks, edge "
        "increments, path counts, and minimum-coverage placement",
    )
    disasm.add_argument(
        "--jit",
        action="store_true",
        help="show the template JIT view: the generated host function "
        "for each compilable method, with entry/OSR arms and inlined "
        "call sites",
    )
    disasm.add_argument(
        "--spec",
        action="store_true",
        help="annotate each instruction with its declarative opcode-spec "
        "row: stack effect, kind, size, fault modes, and site classes "
        "(fusable / quicken / step-limit / yieldpoint)",
    )
    disasm.set_defaults(handler=_cmd_disasm)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential-fuzz the fuse × ic × jit × profiler × telemetry matrix",
    )
    fuzz.add_argument(
        "--seeds",
        type=int,
        default=50,
        metavar="N",
        help="number of generated programs to check (default 50)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="K",
        help="worker processes (0 = one per CPU; results are "
        "identical for any value)",
    )
    fuzz.add_argument(
        "--start",
        type=int,
        default=0,
        metavar="S",
        help="first seed value (campaigns are reproducible: same "
        "seeds, same findings)",
    )
    fuzz.add_argument("--vm", choices=["jikes", "j9"], default="jikes")
    fuzz.add_argument(
        "--save-repros",
        metavar="DIR",
        help="write each bucket's shrunk reproducer into DIR",
    )
    fuzz.add_argument(
        "--replay",
        metavar="DIR",
        help="re-check a committed reproducer corpus instead of generating",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip minimizing violating programs (faster triage-only runs)",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    check = commands.add_parser("check", help="parse and type check only")
    check.add_argument("file")
    check.set_defaults(handler=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pipe (head, less) closed early; not an error.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
