"""The *new* Jikes RVM profile-directed inliner (paper §5.1).

The inliner the authors built to exploit high-accuracy profiles:

* **No sharp hot/non-hot distinction.**  Edge weight feeds a linear
  function computing the size threshold for the call site — the hotter
  the site, the larger the callee it may inline — bounded by a maximum
  allowable size (inlining truly massive methods degrades performance).
* **Distribution shape matters.**  At dynamically polymorphic sites,
  only callees carrying more than 40% of the site's distribution are
  considered for guarded inlining.
* The static oversights of the old inliner are fixed: statically bound
  small callees inline regardless of profile, and CHA-monomorphic
  virtual calls are devirtualized even when too big to inline.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.opt.inline import DEVIRTUALIZE, DIRECT, GUARDED
from repro.inlining.policy import InlinerPolicy, SiteDecision
from repro.profiling.dcg import DCG


class NewJikesInliner(InlinerPolicy):
    """Linear-threshold, distribution-aware profile-directed inlining."""

    name = "new-jikes"

    def __init__(
        self,
        program,
        base_size_threshold: int = 20,
        threshold_slope: float = 3000.0,
        max_size_threshold: int = 120,
        guarded_fraction: float = 0.40,
        hot_path_fraction: float = 0.5,
        hot_path_guarded_fraction: float = 0.25,
        cha=None,
        budget=None,
    ):
        super().__init__(program, cha, budget)
        self.base_size_threshold = base_size_threshold
        self.threshold_slope = threshold_slope
        self.max_size_threshold = max_size_threshold
        self.guarded_fraction = guarded_fraction
        #: Path-hotness signal (needs ``self.path_heat``): a call site
        #: covered by at least ``hot_path_fraction`` of its caller's
        #: recorded Ball-Larus paths relaxes the guarded-inlining
        #: distribution bar to ``hot_path_guarded_fraction`` — the site
        #: is on the method's hot path, so a 30% receiver still pays.
        self.hot_path_fraction = hot_path_fraction
        self.hot_path_guarded_fraction = hot_path_guarded_fraction

    def size_threshold(self, edge_weight_fraction: float) -> int:
        """The paper's linear function of edge hotness, bounded above."""
        threshold = self.base_size_threshold + int(
            self.threshold_slope * edge_weight_fraction
        )
        return min(threshold, self.max_size_threshold)

    def _trace(self, caller, pc, callee, action, accepted, reason) -> None:
        if self.telemetry is not None:
            self.telemetry.on_inline_decision(caller, pc, callee, action, accepted, reason)

    def decide_site(self, caller_index, pc, instr, dcg: DCG | None, depth):
        static_target = self.static_callee(instr)

        if static_target is not None:
            fraction = self.edge_fraction(caller_index, pc, static_target, dcg)
            if self.callee_size(static_target) <= self.size_threshold(fraction):
                self._trace(
                    caller_index, pc, static_target, "direct", True,
                    "within-linear-threshold",
                )
                return SiteDecision(DIRECT, static_target)
            if instr.op is Op.CALL_VIRTUAL:
                self._trace(
                    caller_index, pc, static_target, "devirtualize", True,
                    "monomorphic-but-exceeds-threshold",
                )
                return SiteDecision(DEVIRTUALIZE, static_target)
            self._trace(
                caller_index, pc, static_target, "direct", False,
                "exceeds-size-threshold",
            )
            return None

        # Distribution-aware guarded inlining needs *some* profile of
        # the site's receivers: the exact IC receiver profile when the
        # VM collected one, else a sampled DCG.
        if instr.op is not Op.CALL_VIRTUAL or (
            dcg is None and self.receiver_profile is None
        ):
            return None
        distribution = self.site_distribution(caller_index, pc, dcg)
        site_weight = sum(distribution.values())
        if site_weight == 0:
            self._trace(caller_index, pc, -1, "guarded", False, "no-site-samples")
            return None
        # Every callee carrying >40% of this site's distribution is a
        # guarded-inline candidate (at most two can qualify); they form
        # a guard chain, dominant first.  A site on the caller's hot
        # observed path (path profile attached, coverage >= the hot
        # fraction) uses the relaxed bar instead.
        bar = self.guarded_fraction
        on_hot_path = (
            self.site_path_fraction(caller_index, pc) >= self.hot_path_fraction
        )
        if on_hot_path:
            bar = self.hot_path_guarded_fraction
        qualified = [
            callee
            for callee, weight in sorted(
                distribution.items(), key=lambda item: -item[1]
            )
            if weight / site_weight > bar
        ]
        eligible = []
        for callee in qualified:
            edge_fraction = self.edge_fraction(caller_index, pc, callee, dcg)
            if self.callee_size(callee) <= self.size_threshold(edge_fraction):
                eligible.append(callee)
        if not eligible:
            rejected = qualified[0] if qualified else -1
            reason = (
                "exceeds-size-threshold" if qualified else "no-dominant-callee"
            )
            self._trace(caller_index, pc, rejected, "guarded", False, reason)
            return None
        reason = f"distribution-dominant-{len(eligible)}-targets"
        if on_hot_path:
            reason += "-hot-path"
        self._trace(caller_index, pc, eligible[0], "guarded", True, reason)
        return SiteDecision(GUARDED, eligible[0], tuple(eligible[1:]))
