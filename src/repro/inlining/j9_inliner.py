"""The J9-style inliner (paper §5.2).

J9's static heuristics are much more aggressive than Jikes RVM's; its
dynamic heuristics *modulate* them using the profiled call graph:

* **cold call site** → the static heuristics are overridden and
  inlining is not performed (this is what reduces total inlining and
  compile time by ~9%),
* **hot call site** → the static size thresholds are increased,
* the profile weight required for inlining is a linear function of the
  callee's size — bigger methods need hotter sites.

With an *inaccurate* profile the cold test misfires: genuinely hot
sites that the profiler never sampled get their inlining suppressed,
which is why timer-only profiles degrade J9's performance on most
benchmarks (Figure 5, right).
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.opt.inline import DEVIRTUALIZE, DIRECT, GUARDED
from repro.inlining.policy import InlinerPolicy, SiteDecision
from repro.profiling.dcg import DCG


class J9Inliner(InlinerPolicy):
    """Aggressive static heuristics modulated by dynamic cold/hot tests."""

    name = "j9"

    def __init__(
        self,
        program,
        static_size_threshold: int = 70,
        hot_size_threshold: int = 90,
        always_inline_size: int = 10,
        cold_fraction: float = 0.0005,
        hot_fraction: float = 0.01,
        required_fraction_per_byte: float = 0.00002,
        guarded_fraction: float = 0.40,
        use_dynamic: bool = True,
        cha=None,
        budget=None,
    ):
        super().__init__(program, cha, budget)
        self.static_size_threshold = static_size_threshold
        self.hot_size_threshold = hot_size_threshold
        self.always_inline_size = always_inline_size
        self.cold_fraction = cold_fraction
        self.hot_fraction = hot_fraction
        self.required_fraction_per_byte = required_fraction_per_byte
        self.guarded_fraction = guarded_fraction
        self.use_dynamic = use_dynamic

    # -- dynamic modulation -------------------------------------------------------

    def _site_fraction(self, caller_index, pc, dcg: DCG | None) -> float | None:
        """Total profiled weight fraction of a site; None without profile."""
        if dcg is None or dcg.total_weight == 0:
            return None
        distribution = dcg.callsite_distribution(caller_index, pc)
        return sum(distribution.values()) / dcg.total_weight

    def _dynamic_allows(
        self, caller_index, pc, callee_index, dcg: DCG | None
    ) -> tuple[bool, int]:
        """(allowed?, size threshold) after dynamic modulation."""
        size = self.callee_size(callee_index)
        if not self.use_dynamic or dcg is None or dcg.total_weight == 0:
            return True, self.static_size_threshold
        if size <= self.always_inline_size:
            return True, self.static_size_threshold
        fraction = self._site_fraction(caller_index, pc, dcg) or 0.0
        if fraction < self.cold_fraction:
            return False, 0  # cold: static heuristics overridden
        # Hotness required grows linearly with callee size.
        required = self.required_fraction_per_byte * size
        if fraction < required:
            return False, 0
        if fraction >= self.hot_fraction:
            return True, self.hot_size_threshold
        return True, self.static_size_threshold

    # -- policy --------------------------------------------------------------------

    def decide_site(self, caller_index, pc, instr, dcg: DCG | None, depth):
        static_target = self.static_callee(instr)

        if static_target is not None:
            allowed, threshold = self._dynamic_allows(
                caller_index, pc, static_target, dcg
            )
            if allowed and self.callee_size(static_target) <= threshold:
                return SiteDecision(DIRECT, static_target)
            if instr.op is Op.CALL_VIRTUAL:
                return SiteDecision(DEVIRTUALIZE, static_target)
            return None

        if instr.op is not Op.CALL_VIRTUAL:
            return None
        if dcg is None or dcg.total_weight == 0 or not self.use_dynamic:
            # Aggressive static speculation: with no profile, J9 still
            # guard-inlines moderately polymorphic sites on a CHA-chosen
            # target (the shallowest implementation).  This is the
            # inlining volume the dynamic cold test later trims back.
            targets = self.cha.possible_targets(instr.a)
            if 2 <= len(targets) <= 4:
                eligible = [
                    t for t in sorted(targets)
                    if self.callee_size(t) <= self.static_size_threshold
                ]
                if eligible:
                    chosen = max(eligible, key=self.callee_size)
                    return SiteDecision(GUARDED, chosen)
            return None
        distribution = self.site_distribution(caller_index, pc, dcg)
        site_weight = sum(distribution.values())
        if site_weight == 0:
            return None
        dominant = max(distribution, key=distribution.get)
        if distribution[dominant] / site_weight <= self.guarded_fraction:
            return None
        allowed, threshold = self._dynamic_allows(caller_index, pc, dominant, dcg)
        if allowed and self.callee_size(dominant) <= threshold:
            return SiteDecision(GUARDED, dominant)
        return None
