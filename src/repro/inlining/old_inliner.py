"""The *old* Jikes RVM profile-directed inliner (paper §5.1).

Designed to compensate for inaccurate profiles by being conservative:

* Profile data is used only to classify an edge as **hot** — carrying
  more than 1% of the total DCG weight.
* A hot edge raises the size threshold at its call site; everything
  else falls back to the static rules.
* Profile data for non-hot edges is *completely ignored* — in
  particular a non-hot virtual call site observed to reach only a
  single small target is never guarded-inlined.  This is the missed
  opportunity that motivated the new inliner.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.opt.inline import DEVIRTUALIZE, DIRECT, GUARDED
from repro.inlining.policy import InlinerPolicy, SiteDecision
from repro.profiling.dcg import DCG


class OldJikesInliner(InlinerPolicy):
    """Hot-edge-or-nothing profile consumption."""

    name = "old-jikes"

    def __init__(
        self,
        program,
        hot_edge_percent: float = 1.0,
        static_size_threshold: int = 14,
        hot_size_threshold: int = 70,
        cha=None,
        budget=None,
    ):
        super().__init__(program, cha, budget)
        self.hot_edge_percent = hot_edge_percent
        self.static_size_threshold = static_size_threshold
        self.hot_size_threshold = hot_size_threshold

    def _is_hot(self, caller_index, pc, callee_index, dcg: DCG | None) -> bool:
        if dcg is None or dcg.total_weight == 0:
            return False
        fraction = dcg.weight_fraction((caller_index, pc, callee_index))
        return fraction * 100.0 > self.hot_edge_percent

    def decide_site(self, caller_index, pc, instr, dcg: DCG | None, depth):
        static_target = self.static_callee(instr)

        if static_target is not None:
            threshold = self.static_size_threshold
            if self._is_hot(caller_index, pc, static_target, dcg):
                threshold = self.hot_size_threshold
            if self.callee_size(static_target) <= threshold:
                return SiteDecision(DIRECT, static_target)
            if instr.op is Op.CALL_VIRTUAL:
                return SiteDecision(DEVIRTUALIZE, static_target)
            return None

        # Truly polymorphic virtual site: only a hot edge can justify a
        # guarded inline; non-hot profile data is ignored by design.
        if instr.op is Op.CALL_VIRTUAL and dcg is not None:
            distribution = self.site_distribution(caller_index, pc, dcg)
            for callee_index in sorted(
                distribution, key=distribution.get, reverse=True
            ):
                if not self._is_hot(caller_index, pc, callee_index, dcg):
                    continue
                if self.callee_size(callee_index) <= self.hot_size_threshold:
                    return SiteDecision(GUARDED, callee_index)
        return None
