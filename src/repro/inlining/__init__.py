"""Inlining policies: static, old Jikes, new Jikes, and J9."""

from repro.inlining.j9_inliner import J9Inliner
from repro.inlining.new_inliner import NewJikesInliner
from repro.inlining.old_inliner import OldJikesInliner
from repro.inlining.policy import BudgetConfig, InlinerPolicy, SiteDecision
from repro.inlining.static_heur import StaticSizePolicy, TRIVIAL_SIZE, TrivialOnlyPolicy

__all__ = [
    "BudgetConfig",
    "InlinerPolicy",
    "J9Inliner",
    "NewJikesInliner",
    "OldJikesInliner",
    "SiteDecision",
    "StaticSizePolicy",
    "TRIVIAL_SIZE",
    "TrivialOnlyPolicy",
]
