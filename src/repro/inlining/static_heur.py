"""Purely static inlining heuristics (no profile input).

Used for opt level 1 everywhere, for the "static heuristics only" J9
baseline in Figure 5 (right), and for trivial inlining at level 0.
Statically bound calls (including CHA-monomorphic virtual calls) whose
callee is small enough are inlined; CHA-monomorphic virtual calls that
are too big to inline are still devirtualized.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.opt.inline import DEVIRTUALIZE, DIRECT
from repro.inlining.policy import InlinerPolicy, SiteDecision
from repro.profiling.dcg import DCG

#: Size (bytes) below which a method is "trivial": its body is no bigger
#: than the calling sequence it replaces.  Baseline-compiled functions
#: carry a 3-byte unreachable safety epilogue, which this accounts for.
TRIVIAL_SIZE = 12


class StaticSizePolicy(InlinerPolicy):
    """Inline statically bound callees up to a size threshold."""

    name = "static"

    def __init__(
        self,
        program,
        size_threshold: int = 40,
        devirtualize: bool = True,
        cha=None,
        budget=None,
    ):
        super().__init__(program, cha, budget)
        self.size_threshold = size_threshold
        self.devirtualize = devirtualize

    def decide_site(self, caller_index, pc, instr, dcg: DCG | None, depth):
        callee_index = self.static_callee(instr)
        if callee_index is None:
            return None
        if self.callee_size(callee_index) <= self.size_threshold:
            return SiteDecision(DIRECT, callee_index)
        if self.devirtualize and instr.op is Op.CALL_VIRTUAL:
            return SiteDecision(DEVIRTUALIZE, callee_index)
        return None


class TrivialOnlyPolicy(StaticSizePolicy):
    """Opt level 0: inline only trivial bodies (getters/setters)."""

    name = "trivial"

    def __init__(self, program, cha=None, budget=None):
        super().__init__(
            program,
            size_threshold=TRIVIAL_SIZE,
            devirtualize=False,
            cha=cha,
            budget=budget,
        )
