"""Shared machinery for inlining policies.

A *policy* turns (program, optional DCG profile) into an
:class:`~repro.opt.inline.InlinePlan` for a function.  The base class
walks the function's baseline call sites, asks the concrete policy for a
per-site decision, applies a size budget and depth limit, and recurses
into inlined callees so plans are fully nested.

The concrete policies (old/new Jikes, J9) implement only
:meth:`decide_site`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Program
from repro.opt.cha import ClassHierarchyAnalysis
from repro.opt.inline import DEVIRTUALIZE, DIRECT, GUARDED, InlineDecision, InlinePlan
from repro.profiling.dcg import DCG


@dataclass(frozen=True)
class SiteDecision:
    """What a policy wants done at one call site.

    ``extra_callees`` (GUARDED only) names additional guard-chain
    targets, tried in order after ``callee_index`` (polymorphic inline
    cache; paper §5.1's >40% rule can admit two targets).
    """

    kind: str  # DIRECT | GUARDED | DEVIRTUALIZE
    callee_index: int
    extra_callees: tuple[int, ...] = ()


@dataclass
class BudgetConfig:
    """Limits shared by every policy."""

    #: Maximum nesting depth of inlined bodies.
    max_depth: int = 4
    #: A function may grow by at most this many bytecode bytes.
    max_growth_bytes: int = 600
    #: Never inline a callee larger than this, whatever the heuristics say
    #: (the paper's "maximum allowable size" bound on the linear function).
    absolute_callee_limit: int = 200


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, limit: int):
        self.remaining = limit

    def try_spend(self, amount: int) -> bool:
        if amount > self.remaining:
            return False
        self.remaining -= amount
        return True


class InlinerPolicy:
    """Base class: budgeted, depth-limited, recursive plan construction."""

    name = "abstract"

    def __init__(
        self,
        program: Program,
        cha: ClassHierarchyAnalysis | None = None,
        budget: BudgetConfig | None = None,
    ):
        self.program = program
        self.cha = cha if cha is not None else ClassHierarchyAnalysis(program)
        self.budget_config = budget if budget is not None else BudgetConfig()
        #: Optional telemetry tracer; policies that explain their
        #: per-site decisions emit InlineDecisionEvent through it.
        self.telemetry = None
        #: Optional exact receiver-type profile from the inline caches
        #: (:class:`repro.profiling.receivers.ReceiverProfile`).  When
        #: set, per-site distributions come from it — exact counts —
        #: in preference to the sampled DCG, and distribution-aware
        #: policies can decide sites even with no DCG at all.
        self.receiver_profile = None
        #: Optional per-pc path heat decoded from a Ball-Larus path
        #: profile (:class:`repro.profiling.paths.PathHeat`).  When set,
        #: path-aware policies can tell call sites on the hot observed
        #: paths of their caller from sites on cold ones.
        self.path_heat = None

    # -- to be implemented by concrete policies ---------------------------------

    def decide_site(
        self,
        caller_index: int,
        pc: int,
        instr,
        dcg: DCG | None,
        depth: int,
    ) -> SiteDecision | None:
        """Return the desired action at one call site, or ``None``."""
        raise NotImplementedError

    # -- plan construction --------------------------------------------------------

    def plan_for(self, function_index: int, dcg: DCG | None = None) -> InlinePlan:
        """Build a nested inline plan for one function."""
        budget = _Budget(self.budget_config.max_growth_bytes)
        decisions = self._plan_sites(
            function_index, dcg, depth=0, chain={function_index}, budget=budget
        )
        return InlinePlan(function_index=function_index, decisions=decisions)

    def _plan_sites(
        self,
        function_index: int,
        dcg: DCG | None,
        depth: int,
        chain: set[int],
        budget: _Budget,
    ) -> list[InlineDecision]:
        if depth >= self.budget_config.max_depth:
            return []
        function = self.program.functions[function_index]
        decisions: list[InlineDecision] = []
        for pc, instr in enumerate(function.code):
            if instr.op is not Op.CALL_STATIC and instr.op is not Op.CALL_VIRTUAL:
                continue
            decision = self.decide_site(function_index, pc, instr, dcg, depth)
            if decision is None:
                continue
            callee_index = decision.callee_index
            if decision.kind == DEVIRTUALIZE:
                decisions.append(
                    InlineDecision(pc, callee_index, DEVIRTUALIZE)
                )
                continue
            if callee_index in chain:
                continue  # no recursive inlining cycles
            callee = self.program.functions[callee_index]
            size = callee.bytecode_size()
            if size > self.budget_config.absolute_callee_limit:
                continue
            if not budget.try_spend(size):
                continue
            nested = self._plan_sites(
                callee_index, dcg, depth + 1, chain | {callee_index}, budget
            )
            extras: list[InlineDecision] = []
            for extra_index in decision.extra_callees:
                if extra_index in chain or extra_index == callee_index:
                    continue
                extra_size = self.program.functions[extra_index].bytecode_size()
                if extra_size > self.budget_config.absolute_callee_limit:
                    continue
                if not budget.try_spend(extra_size):
                    continue
                extras.append(
                    InlineDecision(
                        pc,
                        extra_index,
                        GUARDED,
                        self._plan_sites(
                            extra_index, dcg, depth + 1, chain | {extra_index}, budget
                        ),
                    )
                )
            decisions.append(
                InlineDecision(pc, callee_index, decision.kind, nested, extras)
            )
        return decisions

    # -- helpers shared by concrete policies -----------------------------------------

    def static_callee(self, instr) -> int | None:
        """Statically bound target of a site, if any: the callee of a
        CALL_STATIC, or the unique CHA target of a CALL_VIRTUAL."""
        if instr.op is Op.CALL_STATIC:
            return instr.a
        return self.cha.monomorphic_target(instr.a)

    def site_distribution(
        self, caller_index: int, pc: int, dcg: DCG | None
    ) -> dict[int, float]:
        receivers = self.receiver_profile
        if receivers is not None:
            distribution = receivers.callee_distribution(
                self.program, caller_index, pc
            )
            if distribution:
                return distribution
        if dcg is None:
            return {}
        return dcg.callsite_distribution(caller_index, pc)

    def edge_fraction(
        self, caller_index: int, pc: int, callee_index: int, dcg: DCG | None
    ) -> float:
        """The edge's share of all observed calls: exact (receiver
        profile) when available, sampled (DCG) otherwise."""
        receivers = self.receiver_profile
        if receivers is not None:
            fraction = receivers.edge_weight_fraction(
                self.program, caller_index, pc, callee_index
            )
            if fraction > 0.0:
                return fraction
        if dcg is None:
            return 0.0
        return dcg.weight_fraction((caller_index, pc, callee_index))

    def site_path_fraction(self, caller_index: int, pc: int) -> float:
        """Fraction of the caller's recorded Ball-Larus paths covering
        this call site (0.0 with no path profile attached)."""
        heat = self.path_heat
        if heat is None:
            return 0.0
        return heat.pc_fraction(caller_index, pc)

    def callee_size(self, callee_index: int) -> int:
        return self.program.functions[callee_index].bytecode_size()
