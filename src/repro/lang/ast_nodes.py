"""Abstract syntax tree for the Mini language.

The AST is deliberately plain: frozen-ish dataclasses with a ``location``
for error reporting.  Type information is attached by the type checker
(see :mod:`repro.frontend.typecheck`) via the mutable ``inferred_type``
slot on expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import SourceLocation

# ---------------------------------------------------------------------------
# Types (as written in source; resolution happens in the frontend)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeExpr:
    """Base class for syntactic type expressions."""


@dataclass(frozen=True)
class IntType(TypeExpr):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BoolType(TypeExpr):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType(TypeExpr):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ClassType(TypeExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(TypeExpr):
    element: TypeExpr

    def __str__(self) -> str:
        return f"{self.element}[]"


@dataclass(frozen=True)
class NullType(TypeExpr):
    """The type of the ``null`` literal; assignable to any class/array type."""

    def __str__(self) -> str:
        return "null"


INT = IntType()
BOOL = BoolType()
VOID = VoidType()
NULL = NullType()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions.  ``inferred_type`` is set by typecheck."""

    location: SourceLocation
    inferred_type: TypeExpr | None = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class NameExpr(Expr):
    """A bare identifier: a local variable, parameter, or implicit field."""

    name: str = ""


@dataclass
class FieldAccess(Expr):
    receiver: Expr = None  # type: ignore[assignment]
    field_name: str = ""


@dataclass
class IndexExpr(Expr):
    array: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class UnaryOp(Expr):
    op: str = ""  # "-" or "!"
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    op: str = ""  # + - * / % == != < <= > >= && ||
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    """A call to a top-level function or a builtin (``print``, ``len``)."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    """A virtual call ``receiver.method(args)``."""

    receiver: Expr = None  # type: ignore[assignment]
    method_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    element_type: TypeExpr = None  # type: ignore[assignment]
    length: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared_type: TypeExpr | None = None
    initializer: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Stmt):
    target: Expr = None  # type: ignore[assignment]  # NameExpr | FieldAccess | IndexExpr
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    type: TypeExpr
    location: SourceLocation


@dataclass
class MethodDecl:
    name: str
    params: list[Param]
    return_type: TypeExpr
    body: list[Stmt]
    location: SourceLocation


@dataclass
class FieldDecl:
    name: str
    type: TypeExpr
    location: SourceLocation


@dataclass
class ClassDecl:
    name: str
    superclass: str | None
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    location: SourceLocation


@dataclass
class FunctionDecl:
    """A top-level (static) function."""

    name: str
    params: list[Param]
    return_type: TypeExpr
    body: list[Stmt]
    location: SourceLocation


@dataclass
class Program:
    classes: list[ClassDecl]
    functions: list[FunctionDecl]
