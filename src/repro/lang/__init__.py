"""Front end of the Mini language: lexer, parser, and AST."""

from repro.lang.errors import LexError, MiniError, ParseError, SourceLocation, TypeError_
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.printer import print_expr, print_program

__all__ = [
    "Lexer",
    "LexError",
    "MiniError",
    "ParseError",
    "Parser",
    "SourceLocation",
    "TypeError_",
    "parse",
    "print_expr",
    "print_program",
    "tokenize",
]
