"""Recursive-descent parser for the Mini language.

Grammar (EBNF):

    program     := (classdecl | funcdecl)* EOF
    classdecl   := 'class' IDENT ('extends' IDENT)? '{' member* '}'
    member      := fielddecl | methoddecl
    fielddecl   := 'var' IDENT ':' type ';'
    methoddecl  := 'def' IDENT '(' params? ')' (':' type)? block
    funcdecl    := 'def' IDENT '(' params? ')' (':' type)? block
    params      := param (',' param)*
    param       := IDENT ':' type
    type        := ('int' | 'bool' | IDENT) ('[' ']')*
    block       := '{' stmt* '}'
    stmt        := vardecl | ifstmt | whilestmt | forstmt | returnstmt
                 | block | simple ';'
    vardecl     := 'var' IDENT (':' type)? '=' expr ';'
    ifstmt      := 'if' '(' expr ')' stmt ('else' stmt)?
    whilestmt   := 'while' '(' expr ')' stmt
    forstmt     := 'for' '(' (vardecl-no-semi|simple)? ';' expr? ';' simple? ')' stmt
    returnstmt  := 'return' expr? ';'
    simple      := assignment | expr          -- expression or lvalue '=' expr
    expr        := or
    or          := and ('||' and)*
    and         := equality ('&&' equality)*
    equality    := relational (('=='|'!=') relational)*
    relational  := additive (('<'|'<='|'>'|'>=') additive)*
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'!') unary | postfix
    postfix     := primary (('.' IDENT ('(' args? ')')?) | '[' expr ']')*
    primary     := INT | 'true' | 'false' | 'null' | 'this'
                 | IDENT ('(' args? ')')? | 'new' newtail | '(' expr ')'
    newtail     := IDENT '(' args? ')' | ('int'|'bool'|IDENT) '[' expr ']'

``for`` loops are desugared into ``while`` loops during parsing so the
rest of the pipeline only sees the core statement forms.
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError, SourceLocation
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind


class Parser:
    """Recursive-descent parser over a pre-lexed token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token}", token.location
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes: list[ast.ClassDecl] = []
        functions: list[ast.FunctionDecl] = []
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.KW_CLASS):
                classes.append(self._parse_class())
            elif self._at(TokenKind.KW_DEF):
                functions.append(self._parse_function())
            else:
                raise ParseError(
                    f"expected 'class' or 'def' at top level, found {self._peek()}",
                    self._loc(),
                )
        return ast.Program(classes=classes, functions=functions)

    def _parse_class(self) -> ast.ClassDecl:
        location = self._loc()
        self._expect(TokenKind.KW_CLASS)
        name = self._expect(TokenKind.IDENT).value
        superclass = None
        if self._match(TokenKind.KW_EXTENDS):
            superclass = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.LBRACE)
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._match(TokenKind.RBRACE):
            if self._at(TokenKind.KW_VAR):
                fields.append(self._parse_field())
            elif self._at(TokenKind.KW_DEF):
                methods.append(self._parse_method())
            else:
                raise ParseError(
                    f"expected 'var' or 'def' in class body, found {self._peek()}",
                    self._loc(),
                )
        return ast.ClassDecl(
            name=name,
            superclass=superclass,
            fields=fields,
            methods=methods,
            location=location,
        )

    def _parse_field(self) -> ast.FieldDecl:
        location = self._loc()
        self._expect(TokenKind.KW_VAR)
        name = self._expect(TokenKind.IDENT).value
        self._expect(TokenKind.COLON)
        type_ = self._parse_type()
        self._expect(TokenKind.SEMI)
        return ast.FieldDecl(name=name, type=type_, location=location)

    def _parse_method(self) -> ast.MethodDecl:
        location = self._loc()
        self._expect(TokenKind.KW_DEF)
        name = self._expect(TokenKind.IDENT).value
        params = self._parse_params()
        return_type: ast.TypeExpr = ast.VOID
        if self._match(TokenKind.COLON):
            return_type = self._parse_type(allow_void=True)
        body = self._parse_block_body()
        return ast.MethodDecl(
            name=name,
            params=params,
            return_type=return_type,
            body=body,
            location=location,
        )

    def _parse_function(self) -> ast.FunctionDecl:
        method = self._parse_method()
        return ast.FunctionDecl(
            name=method.name,
            params=method.params,
            return_type=method.return_type,
            body=method.body,
            location=method.location,
        )

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                location = self._loc()
                name = self._expect(TokenKind.IDENT).value
                self._expect(TokenKind.COLON)
                type_ = self._parse_type()
                params.append(ast.Param(name=name, type=type_, location=location))
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_type(self, allow_void: bool = False) -> ast.TypeExpr:
        token = self._advance()
        base: ast.TypeExpr
        if token.kind is TokenKind.KW_INT:
            base = ast.INT
        elif token.kind is TokenKind.KW_BOOL:
            base = ast.BOOL
        elif token.kind is TokenKind.KW_VOID:
            if not allow_void:
                raise ParseError("'void' is only valid as a return type", token.location)
            base = ast.VOID
        elif token.kind is TokenKind.IDENT:
            base = ast.ClassType(token.value)
        else:
            raise ParseError(f"expected a type, found {token}", token.location)
        while self._at(TokenKind.LBRACKET) and self._peek(1).kind is TokenKind.RBRACKET:
            self._advance()
            self._advance()
            if base is ast.VOID:
                raise ParseError("array of void is not a type", token.location)
            base = ast.ArrayType(base)
        return base

    # -- statements ---------------------------------------------------------

    def _parse_block_body(self) -> list[ast.Stmt]:
        self._expect(TokenKind.LBRACE)
        body: list[ast.Stmt] = []
        while not self._match(TokenKind.RBRACE):
            body.append(self._parse_stmt())
        return body

    def _parse_stmt(self) -> ast.Stmt:
        if self._at(TokenKind.KW_VAR):
            return self._parse_vardecl()
        if self._at(TokenKind.KW_IF):
            return self._parse_if()
        if self._at(TokenKind.KW_WHILE):
            return self._parse_while()
        if self._at(TokenKind.KW_FOR):
            return self._parse_for()
        if self._at(TokenKind.KW_RETURN):
            return self._parse_return()
        if self._at(TokenKind.LBRACE):
            location = self._loc()
            return ast.Block(location=location, body=self._parse_block_body())
        stmt = self._parse_simple()
        self._expect(TokenKind.SEMI)
        return stmt

    def _parse_vardecl(self) -> ast.VarDecl:
        location = self._loc()
        self._expect(TokenKind.KW_VAR)
        name = self._expect(TokenKind.IDENT).value
        declared_type = None
        if self._match(TokenKind.COLON):
            declared_type = self._parse_type()
        self._expect(TokenKind.ASSIGN)
        initializer = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.VarDecl(
            location=location,
            name=name,
            declared_type=declared_type,
            initializer=initializer,
        )

    def _parse_if(self) -> ast.If:
        location = self._loc()
        self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        condition = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self._stmt_as_body()
        else_body: list[ast.Stmt] = []
        if self._match(TokenKind.KW_ELSE):
            else_body = self._stmt_as_body()
        return ast.If(
            location=location,
            condition=condition,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_while(self) -> ast.While:
        location = self._loc()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        condition = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._stmt_as_body()
        return ast.While(location=location, condition=condition, body=body)

    def _parse_for(self) -> ast.Stmt:
        """Parse a C-style ``for`` and desugar to a block + while loop."""
        location = self._loc()
        self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)

        init: ast.Stmt | None = None
        if not self._at(TokenKind.SEMI):
            if self._at(TokenKind.KW_VAR):
                init = self._parse_vardecl()  # consumes the ';'
            else:
                init = self._parse_simple()
                self._expect(TokenKind.SEMI)
        else:
            self._expect(TokenKind.SEMI)

        if self._at(TokenKind.SEMI):
            condition: ast.Expr = ast.BoolLiteral(location=self._loc(), value=True)
        else:
            condition = self.parse_expr()
        self._expect(TokenKind.SEMI)

        update: ast.Stmt | None = None
        if not self._at(TokenKind.RPAREN):
            update = self._parse_simple()
        self._expect(TokenKind.RPAREN)

        body = self._stmt_as_body()
        if update is not None:
            body = body + [update]
        loop = ast.While(location=location, condition=condition, body=body)
        if init is not None:
            return ast.Block(location=location, body=[init, loop])
        return loop

    def _parse_return(self) -> ast.Return:
        location = self._loc()
        self._expect(TokenKind.KW_RETURN)
        value = None
        if not self._at(TokenKind.SEMI):
            value = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.Return(location=location, value=value)

    def _stmt_as_body(self) -> list[ast.Stmt]:
        """Parse one statement; flatten a braced block into its statements."""
        stmt = self._parse_stmt()
        if isinstance(stmt, ast.Block):
            return stmt.body
        return [stmt]

    def _parse_simple(self) -> ast.Stmt:
        """Parse an assignment or a bare expression statement (no ';')."""
        location = self._loc()
        expr = self.parse_expr()
        if self._match(TokenKind.ASSIGN):
            if not isinstance(expr, (ast.NameExpr, ast.FieldAccess, ast.IndexExpr)):
                raise ParseError("invalid assignment target", location)
            value = self.parse_expr()
            return ast.Assign(location=location, target=expr, value=value)
        return ast.ExprStmt(location=location, expr=expr)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            location = self._loc()
            self._advance()
            right = self._parse_and()
            left = ast.BinaryOp(location=location, op="||", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AND):
            location = self._loc()
            self._advance()
            right = self._parse_equality()
            left = ast.BinaryOp(location=location, op="&&", left=left, right=right)
        return left

    _EQUALITY_OPS = {TokenKind.EQ: "==", TokenKind.NE: "!="}
    _RELATIONAL_OPS = {
        TokenKind.LT: "<",
        TokenKind.LE: "<=",
        TokenKind.GT: ">",
        TokenKind.GE: ">=",
    }
    _ADDITIVE_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
    _MULTIPLICATIVE_OPS = {
        TokenKind.STAR: "*",
        TokenKind.SLASH: "/",
        TokenKind.PERCENT: "%",
    }

    def _parse_binary_level(self, ops: dict, next_level) -> ast.Expr:
        left = next_level()
        while self._peek().kind in ops:
            location = self._loc()
            op = ops[self._advance().kind]
            right = next_level()
            left = ast.BinaryOp(location=location, op=op, left=left, right=right)
        return left

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(self._EQUALITY_OPS, self._parse_relational)

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(self._RELATIONAL_OPS, self._parse_additive)

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(self._ADDITIVE_OPS, self._parse_multiplicative)

    def _parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_level(self._MULTIPLICATIVE_OPS, self._parse_unary)

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            location = self._loc()
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(location=location, op="-", operand=operand)
        if self._at(TokenKind.NOT):
            location = self._loc()
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(location=location, op="!", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokenKind.DOT):
                location = self._loc()
                self._advance()
                name = self._expect(TokenKind.IDENT).value
                if self._at(TokenKind.LPAREN):
                    args = self._parse_args()
                    expr = ast.MethodCall(
                        location=location,
                        receiver=expr,
                        method_name=name,
                        args=args,
                    )
                else:
                    expr = ast.FieldAccess(
                        location=location, receiver=expr, field_name=name
                    )
            elif self._at(TokenKind.LBRACKET):
                location = self._loc()
                self._advance()
                index = self.parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.IndexExpr(location=location, array=expr, index=index)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self.parse_expr())
                if not self._match(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        location = token.location
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(location=location, value=token.value)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLiteral(location=location, value=True)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLiteral(location=location, value=False)
        if token.kind is TokenKind.KW_NULL:
            self._advance()
            return ast.NullLiteral(location=location)
        if token.kind is TokenKind.KW_THIS:
            self._advance()
            return ast.ThisExpr(location=location)
        if token.kind is TokenKind.KW_NEW:
            return self._parse_new()
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                args = self._parse_args()
                return ast.CallExpr(location=location, name=token.value, args=args)
            return ast.NameExpr(location=location, name=token.value)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"expected an expression, found {token}", location)

    def _parse_new(self) -> ast.Expr:
        location = self._loc()
        self._expect(TokenKind.KW_NEW)
        token = self._peek()
        if token.kind in (TokenKind.KW_INT, TokenKind.KW_BOOL):
            base: ast.TypeExpr = ast.INT if token.kind is TokenKind.KW_INT else ast.BOOL
            self._advance()
            return self._parse_new_array(location, base)
        name = self._expect(TokenKind.IDENT).value
        if self._at(TokenKind.LBRACKET):
            return self._parse_new_array(location, ast.ClassType(name))
        args = self._parse_args()
        return ast.NewObject(location=location, class_name=name, args=args)

    def _parse_new_array(
        self, location: SourceLocation, base: ast.TypeExpr
    ) -> ast.NewArray:
        self._expect(TokenKind.LBRACKET)
        length = self.parse_expr()
        self._expect(TokenKind.RBRACKET)
        element: ast.TypeExpr = base
        while self._at(TokenKind.LBRACKET) and self._peek(1).kind is TokenKind.RBRACKET:
            self._advance()
            self._advance()
            element = ast.ArrayType(element)
        return ast.NewArray(location=location, element_type=element, length=length)


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse Mini source text into an AST :class:`~repro.lang.ast_nodes.Program`."""
    return Parser(tokenize(source, filename)).parse_program()
