"""Hand-written lexer for the Mini language.

The lexer is a simple single-pass scanner.  It supports ``//`` line
comments and ``/* ... */`` block comments (non-nesting), decimal integer
literals, and the operators and keywords listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPS: dict[str, TokenKind] = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Converts Mini source text into a list of tokens."""

    def __init__(self, source: str, filename: str = "<string>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the entire input, returning tokens ending with ``EOF``."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while True:
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, None, location)

        ch = self._peek()
        if ch.isdigit():
            return self._lex_int(location)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(location)

        two = self._source[self._pos : self._pos + 2]
        if two in _TWO_CHAR_OPS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPS[two], None, location)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], None, location)
        raise LexError(f"unexpected character {ch!r}", location)

    def _lex_int(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._pos < len(self._source) and self._peek().isdigit():
            self._advance()
        if self._pos < len(self._source) and (self._peek().isalpha() or self._peek() == "_"):
            raise LexError("identifier may not start with a digit", location)
        text = self._source[start : self._pos]
        return Token(TokenKind.INT, int(text), location)

    def _lex_ident(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._source[start : self._pos]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, None, location)
        return Token(TokenKind.IDENT, text, location)


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
