"""Source-level error types shared by the lexer, parser, and type checker.

Every front-end error carries a :class:`SourceLocation` so that tooling
(and test assertions) can point at the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a source file: 1-based line and column."""

    line: int
    column: int
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MiniError(Exception):
    """Base class for all errors raised by the Mini language toolchain."""


class LexError(MiniError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message: str, location: SourceLocation):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class ParseError(MiniError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, location: SourceLocation):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class TypeError_(MiniError):
    """Raised by semantic analysis for type and resolution errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    def __init__(self, message: str, location: SourceLocation | None = None):
        prefix = f"{location}: " if location is not None else ""
        super().__init__(f"{prefix}{message}")
        self.message = message
        self.location = location
