"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every terminal in the Mini grammar."""

    # Literals and identifiers
    INT = "int-literal"
    IDENT = "identifier"

    # Keywords
    KW_CLASS = "class"
    KW_EXTENDS = "extends"
    KW_DEF = "def"
    KW_VAR = "var"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_NEW = "new"
    KW_THIS = "this"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"
    KW_INT = "int"
    KW_BOOL = "bool"
    KW_VOID = "void"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "<eof>"


KEYWORDS: dict[str, TokenKind] = {
    "class": TokenKind.KW_CLASS,
    "extends": TokenKind.KW_EXTENDS,
    "def": TokenKind.KW_DEF,
    "var": TokenKind.KW_VAR,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "new": TokenKind.KW_NEW,
    "this": TokenKind.KW_THIS,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "null": TokenKind.KW_NULL,
    "int": TokenKind.KW_INT,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    ``value`` holds the identifier text for :data:`TokenKind.IDENT` and the
    integer value (as ``int``) for :data:`TokenKind.INT`; it is ``None`` for
    all other kinds.
    """

    kind: TokenKind
    value: object
    location: SourceLocation

    def __str__(self) -> str:
        if self.value is not None:
            return f"{self.kind.value}({self.value})"
        return self.kind.value
