"""AST pretty-printer: renders a Mini AST back to source text.

``parse(print_program(parse(src)))`` produces an identical AST (modulo
source locations), which the property tests exercise.  Useful for
program generators and for dumping desugared forms (``for`` loops print
as the ``while`` form they desugar to).
"""

from __future__ import annotations

from repro.lang import ast_nodes as ast

_INDENT = "  "

#: Binding strength for parenthesization, mirroring the parser's levels.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_PRECEDENCE = 7


def print_program(program: ast.Program) -> str:
    """Render a whole program."""
    parts: list[str] = []
    for class_decl in program.classes:
        parts.append(_print_class(class_decl))
    for function in program.functions:
        parts.append(_print_callable("def", function.name, function.params,
                                     function.return_type, function.body, 0))
    return "\n\n".join(parts) + "\n"


def _print_class(decl: ast.ClassDecl) -> str:
    header = f"class {decl.name}"
    if decl.superclass is not None:
        header += f" extends {decl.superclass}"
    lines = [header + " {"]
    for field_decl in decl.fields:
        lines.append(f"{_INDENT}var {field_decl.name}: {field_decl.type};")
    for method in decl.methods:
        lines.append(
            _print_callable(
                "def", method.name, method.params, method.return_type, method.body, 1
            )
        )
    lines.append("}")
    return "\n".join(lines)


def _print_callable(keyword, name, params, return_type, body, depth) -> str:
    prefix = _INDENT * depth
    params_text = ", ".join(f"{p.name}: {p.type}" for p in params)
    annotation = "" if return_type == ast.VOID else f": {return_type}"
    lines = [f"{prefix}{keyword} {name}({params_text}){annotation} {{"]
    for stmt in body:
        lines.append(_print_stmt(stmt, depth + 1))
    lines.append(f"{prefix}}}")
    return "\n".join(lines)


def _print_block(body: list[ast.Stmt], depth: int) -> list[str]:
    return [_print_stmt(stmt, depth) for stmt in body]


def _print_stmt(stmt: ast.Stmt, depth: int) -> str:
    prefix = _INDENT * depth
    if isinstance(stmt, ast.VarDecl):
        annotation = (
            f": {stmt.declared_type}" if stmt.declared_type is not None else ""
        )
        return f"{prefix}var {stmt.name}{annotation} = {print_expr(stmt.initializer)};"
    if isinstance(stmt, ast.Assign):
        return f"{prefix}{print_expr(stmt.target)} = {print_expr(stmt.value)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{prefix}{print_expr(stmt.expr)};"
    if isinstance(stmt, ast.If):
        lines = [f"{prefix}if ({print_expr(stmt.condition)}) {{"]
        lines.extend(_print_block(stmt.then_body, depth + 1))
        if stmt.else_body:
            lines.append(f"{prefix}}} else {{")
            lines.extend(_print_block(stmt.else_body, depth + 1))
        lines.append(f"{prefix}}}")
        return "\n".join(lines)
    if isinstance(stmt, ast.While):
        lines = [f"{prefix}while ({print_expr(stmt.condition)}) {{"]
        lines.extend(_print_block(stmt.body, depth + 1))
        lines.append(f"{prefix}}}")
        return "\n".join(lines)
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return f"{prefix}return;"
        return f"{prefix}return {print_expr(stmt.value)};"
    if isinstance(stmt, ast.Block):
        lines = [f"{prefix}{{"]
        lines.extend(_print_block(stmt.body, depth + 1))
        lines.append(f"{prefix}}}")
        return "\n".join(lines)
    raise TypeError(f"cannot print statement {type(stmt).__name__}")


def print_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render one expression, parenthesizing as needed."""
    text, precedence = _expr_parts(expr)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _expr_parts(expr: ast.Expr) -> tuple[str, int]:
    atom = 10
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value), atom
    if isinstance(expr, ast.BoolLiteral):
        return ("true" if expr.value else "false"), atom
    if isinstance(expr, ast.NullLiteral):
        return "null", atom
    if isinstance(expr, ast.ThisExpr):
        return "this", atom
    if isinstance(expr, ast.NameExpr):
        return expr.name, atom
    if isinstance(expr, ast.FieldAccess):
        return f"{print_expr(expr.receiver, atom)}.{expr.field_name}", atom
    if isinstance(expr, ast.IndexExpr):
        return (
            f"{print_expr(expr.array, atom)}[{print_expr(expr.index)}]",
            atom,
        )
    if isinstance(expr, ast.UnaryOp):
        operand = print_expr(expr.operand, _UNARY_PRECEDENCE + 1)
        return f"{expr.op}{operand}", _UNARY_PRECEDENCE
    if isinstance(expr, ast.BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, precedence)
        # Left-associative grammar: the right operand needs one more level.
        right = print_expr(expr.right, precedence + 1)
        return f"{left} {expr.op} {right}", precedence
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})", atom
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        receiver = print_expr(expr.receiver, atom)
        return f"{receiver}.{expr.method_name}({args})", atom
    if isinstance(expr, ast.NewObject):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})", atom
    if isinstance(expr, ast.NewArray):
        # Parser syntax puts extra dimensions after the length:
        # ``new int[3][]`` allocates an int[][] of length 3.
        base = expr.element_type
        suffix = ""
        while isinstance(base, ast.ArrayType):
            base = base.element
            suffix += "[]"
        return f"new {base}[{print_expr(expr.length)}]{suffix}", atom
    raise TypeError(f"cannot print expression {type(expr).__name__}")
