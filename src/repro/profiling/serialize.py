"""DCG serialization: save a profile from one run, reuse it in another.

The paper's comparison point (Suganuma et al.) validated online
profiling against systems using *perfect offline* profiles; this module
provides the offline side: profiles serialize to JSON keyed by qualified
function names (not indices), so a profile collected against one build
of a program can be applied to another as long as the names resolve.

Format (version 3)::

    {
      "version": 3,
      "fingerprint": "<sha256 of the program's code, optional>",
      "edges": [
        {"caller": "Network.assert", "pc": 14,
         "callee": "ModNode.test", "weight": 123.0},
        ...
      ],
      "paths": [
        ["Network.assert", 3, 1200],
        ...
      ]
    }

``paths`` is optional: Ball-Larus path-profile rows
(``[qualified_name, path_id, count]``, see
:mod:`repro.profiling.paths`) collected alongside the DCG.  Version 1
files (no ``fingerprint``) and version 2 files (no ``paths``) still
load.  When a fingerprint is
present and does not match the program the profile is being resolved
against, lenient mode warns (:class:`ProfileMismatchWarning`) and
resolves by name anyway — profiles are allowed to be stale — while
strict mode raises :class:`ProfileFormatError`.

Writes are crash-safe: :func:`save_profile` writes to a temporary file
in the destination directory and atomically renames it into place, so a
reader never observes a half-written profile.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import warnings

from repro.bytecode.program import Program
from repro.profiling.dcg import DCG

FORMAT_VERSION = 3

#: Versions :func:`dcg_from_dict` accepts (v1 predates fingerprints,
#: v2 predates path rows).
SUPPORTED_VERSIONS = (1, 2, 3)


class ProfileFormatError(Exception):
    """Raised when a serialized profile cannot be parsed or resolved."""


class ProfileMismatchWarning(UserWarning):
    """A profile's fingerprint does not match the resolving program."""


def dcg_to_dict(dcg: DCG, program: Program, paths=None) -> dict:
    """Serialize ``dcg`` to a JSON-compatible dict with symbolic names.

    ``paths`` is an optional :class:`repro.profiling.paths.PathProfile`
    serialized alongside the edges as v3 ``[name, path_id, count]``
    rows.
    """
    edges = []
    for (caller, pc, callee), weight in sorted(dcg.edges().items()):
        edges.append(
            {
                "caller": program.functions[caller].qualified_name,
                "pc": pc,
                "callee": program.functions[callee].qualified_name,
                "weight": weight,
            }
        )
    data = {
        "version": FORMAT_VERSION,
        "fingerprint": program.fingerprint(),
        "edges": edges,
    }
    if paths is not None:
        data["paths"] = paths.to_rows(program)
    return data


def dcg_from_dict(
    data: dict, program: Program, strict: bool = False
) -> DCG:
    """Resolve a serialized profile against ``program``.

    Edges naming functions the program does not define are skipped
    (``strict=False``, the default — profiles may be stale) or rejected
    (``strict=True``).  A ``fingerprint`` field, when present, is
    checked against ``program.fingerprint()``: mismatches warn in
    lenient mode and raise in strict mode.
    """
    if not isinstance(data, dict) or data.get("version") not in SUPPORTED_VERSIONS:
        raise ProfileFormatError(
            f"unsupported profile format (expected version in {SUPPORTED_VERSIONS})"
        )
    fingerprint = data.get("fingerprint")
    if fingerprint is not None and fingerprint != program.fingerprint():
        if strict:
            raise ProfileFormatError(
                "profile fingerprint does not match the program "
                f"({fingerprint[:12]}… vs {program.fingerprint()[:12]}…)"
            )
        warnings.warn(
            "profile was collected against a different build of the "
            "program; resolving by name anyway",
            ProfileMismatchWarning,
            stacklevel=2,
        )
    index_by_name = {f.qualified_name: f.index for f in program.functions}
    dcg = DCG()
    for entry in data.get("edges", []):
        try:
            caller_name = entry["caller"]
            callee_name = entry["callee"]
            pc = int(entry["pc"])
            weight = float(entry["weight"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProfileFormatError(f"malformed edge entry {entry!r}") from error
        caller = index_by_name.get(caller_name)
        callee = index_by_name.get(callee_name)
        if caller is None or callee is None:
            if strict:
                missing = caller_name if caller is None else callee_name
                raise ProfileFormatError(f"unknown function {missing!r} in profile")
            continue
        if not math.isfinite(weight):
            raise ProfileFormatError(f"non-finite weight in edge {entry!r}")
        if weight < 0:
            raise ProfileFormatError(f"negative weight in edge {entry!r}")
        dcg.record(caller, pc, callee, weight)
    return dcg


def paths_from_dict(data: dict, program: Program, strict: bool = False):
    """Resolve the optional v3 ``paths`` rows against ``program``.

    Returns a :class:`repro.profiling.paths.PathProfile` (empty when
    the profile predates v3 or carried no rows).  Malformed rows raise
    :class:`ProfileFormatError`; rows naming unknown functions are
    skipped in lenient mode and rejected in strict mode, matching the
    edge-resolution contract.
    """
    from repro.profiling.paths import PathProfile

    if not isinstance(data, dict) or data.get("version") not in SUPPORTED_VERSIONS:
        raise ProfileFormatError(
            f"unsupported profile format (expected version in {SUPPORTED_VERSIONS})"
        )
    rows = data.get("paths", [])
    if not isinstance(rows, list):
        raise ProfileFormatError("profile 'paths' must be a list of rows")
    for row in rows:
        if (
            not isinstance(row, (list, tuple))
            or len(row) != 3
            or not isinstance(row[0], str)
            or isinstance(row[1], bool)
            or not isinstance(row[1], int)
            or row[1] < 0
            or isinstance(row[2], bool)
            or not isinstance(row[2], int)
            or row[2] < 0
        ):
            raise ProfileFormatError(f"malformed path row {row!r}")
    try:
        return PathProfile.from_rows(rows, program, strict=strict)
    except ValueError as error:
        raise ProfileFormatError(str(error)) from error


def save_profile(dcg: DCG, program: Program, path: str, paths=None) -> None:
    """Atomically write ``dcg`` (and optional path rows) to ``path``.

    The profile is written to a temporary file in the same directory
    and renamed into place, so a crash mid-write never leaves a
    truncated profile at ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(dcg_to_dict(dcg, program, paths=paths), handle, indent=1)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_profile(path: str, program: Program, strict: bool = False) -> DCG:
    """Read a profile written by :func:`save_profile`."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ProfileFormatError(f"cannot load profile from {path}: {error}")
    return dcg_from_dict(data, program, strict)


def load_profile_paths(path: str, program: Program, strict: bool = False):
    """Read just the path rows of a profile written by :func:`save_profile`.

    Returns an empty :class:`repro.profiling.paths.PathProfile` for v1/v2
    files, so callers need no version check of their own.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ProfileFormatError(f"cannot load profile from {path}: {error}")
    return paths_from_dict(data, program, strict)
