"""DCG serialization: save a profile from one run, reuse it in another.

The paper's comparison point (Suganuma et al.) validated online
profiling against systems using *perfect offline* profiles; this module
provides the offline side: profiles serialize to JSON keyed by qualified
function names (not indices), so a profile collected against one build
of a program can be applied to another as long as the names resolve.

Format (version 1)::

    {
      "version": 1,
      "edges": [
        {"caller": "Network.assert", "pc": 14,
         "callee": "ModNode.test", "weight": 123.0},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from repro.bytecode.program import Program
from repro.profiling.dcg import DCG

FORMAT_VERSION = 1


class ProfileFormatError(Exception):
    """Raised when a serialized profile cannot be parsed or resolved."""


def dcg_to_dict(dcg: DCG, program: Program) -> dict:
    """Serialize ``dcg`` to a JSON-compatible dict with symbolic names."""
    edges = []
    for (caller, pc, callee), weight in sorted(dcg.edges().items()):
        edges.append(
            {
                "caller": program.functions[caller].qualified_name,
                "pc": pc,
                "callee": program.functions[callee].qualified_name,
                "weight": weight,
            }
        )
    return {"version": FORMAT_VERSION, "edges": edges}


def dcg_from_dict(
    data: dict, program: Program, strict: bool = False
) -> DCG:
    """Resolve a serialized profile against ``program``.

    Edges naming functions the program does not define are skipped
    (``strict=False``, the default — profiles may be stale) or rejected
    (``strict=True``).
    """
    if not isinstance(data, dict) or data.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(
            f"unsupported profile format (expected version {FORMAT_VERSION})"
        )
    index_by_name = {f.qualified_name: f.index for f in program.functions}
    dcg = DCG()
    for entry in data.get("edges", []):
        try:
            caller_name = entry["caller"]
            callee_name = entry["callee"]
            pc = int(entry["pc"])
            weight = float(entry["weight"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProfileFormatError(f"malformed edge entry {entry!r}") from error
        caller = index_by_name.get(caller_name)
        callee = index_by_name.get(callee_name)
        if caller is None or callee is None:
            if strict:
                missing = caller_name if caller is None else callee_name
                raise ProfileFormatError(f"unknown function {missing!r} in profile")
            continue
        if weight < 0:
            raise ProfileFormatError(f"negative weight in edge {entry!r}")
        dcg.record(caller, pc, callee, weight)
    return dcg


def save_profile(dcg: DCG, program: Program, path: str) -> None:
    """Write ``dcg`` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(dcg_to_dict(dcg, program), handle, indent=1)


def load_profile(path: str, program: Program, strict: bool = False) -> DCG:
    """Read a profile written by :func:`save_profile`."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ProfileFormatError(f"cannot load profile from {path}: {error}")
    return dcg_from_dict(data, program, strict)
