"""Timer-based DCG sampling (the baseline mechanism, paper §3.3).

This is Jikes RVM's original scheme: the timer interrupt sets the
yieldpoint control word to "all yieldpoints taken"; the *next* executed
yieldpoint is taken, and if it is a prologue or epilogue the
caller–callee pair at the top of the stack is recorded as a call-edge
sample.  Backedge yieldpoints contribute a method (hotness) sample but
no call edge.  One sample per tick.

The skew the paper demonstrates (Figure 1) arises naturally: the flag is
set wherever *time* accumulates, so the first call executed after a
compute-heavy region absorbs all of that region's ticks.
"""

from __future__ import annotations

from collections import Counter

from repro.profiling.dcg import DCG
from repro.vm.yieldpoint import BACKEDGE, YP_ALL, YP_NONE


class TimerProfiler:
    """One call-stack sample per timer interrupt."""

    def __init__(self) -> None:
        self.dcg = DCG()
        self.method_samples: Counter = Counter()
        self.samples_taken = 0
        self.ticks_seen = 0

    def attach(self, vm) -> None:
        pass

    def handle_timer(self, vm) -> None:
        self.ticks_seen += 1
        vm.yieldpoint_flag = YP_ALL

    def handle_yieldpoint(self, vm, kind: int) -> None:
        vm.yieldpoint_flag = YP_NONE
        frames = vm.frames
        # Method sample for the adaptive system: the method on top.
        if frames:
            self.method_samples[frames[-1].method.index] += 1
        if kind == BACKEDGE:
            return
        edge = vm.current_edge()
        if edge is None:
            return
        if len(frames) > 1:
            # Caller hotness credit (see CBSProfiler._sample).
            self.method_samples[frames[-2].method.index] += 1
        cost_model = vm.config.cost_model
        vm.charge(cost_model.stack_walk_base_cost + 2 * cost_model.stack_walk_frame_cost)
        self.dcg.record_edge(edge)
        self.samples_taken += 1
        if vm.telemetry is not None:
            vm.telemetry.on_sample(vm.time, edge[0], edge[1], edge[2], len(frames))
