"""The dynamic call graph (DCG).

Per the paper (§2): a call graph is a multigraph whose nodes are methods
and whose edges are ``(caller, call site, callee)`` triples; a *dynamic*
call graph associates observed frequencies with those edges.  Here
methods are function indices into a :class:`~repro.bytecode.program.
Program` and call sites are bytecode pcs in the caller.
"""

from __future__ import annotations

from collections import Counter, defaultdict

#: An edge: (caller function index, callsite pc, callee function index).
Edge = tuple[int, int, int]


class DCG:
    """A weighted dynamic call graph."""

    def __init__(self) -> None:
        self._edges: dict[Edge, float] = {}
        self._total: float = 0.0

    # -- recording -------------------------------------------------------------

    def record(self, caller: int, callsite_pc: int, callee: int, weight: float = 1.0) -> None:
        """Add ``weight`` samples to one call edge."""
        edge = (caller, callsite_pc, callee)
        self._edges[edge] = self._edges.get(edge, 0.0) + weight
        self._total += weight

    def record_edge(self, edge: Edge, weight: float = 1.0) -> None:
        self._edges[edge] = self._edges.get(edge, 0.0) + weight
        self._total += weight

    def merge(self, other: "DCG") -> None:
        """Fold another DCG's samples into this one."""
        for edge, weight in other._edges.items():
            self.record_edge(edge, weight)

    # -- queries ------------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        return self._total

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edges

    def edges(self) -> dict[Edge, float]:
        """The raw edge→weight mapping (do not mutate)."""
        return self._edges

    def edge_weight(self, edge: Edge) -> float:
        return self._edges.get(edge, 0.0)

    def weight_fraction(self, edge: Edge) -> float:
        """Edge weight as a fraction (0..1) of total graph weight."""
        if self._total == 0:
            return 0.0
        return self._edges.get(edge, 0.0) / self._total

    def normalized(self) -> dict[Edge, float]:
        """All edges with weights as fractions of the total."""
        if self._total == 0:
            return {}
        total = self._total
        return {edge: weight / total for edge, weight in self._edges.items()}

    def callsite_distribution(self, caller: int, callsite_pc: int) -> dict[int, float]:
        """callee → weight for every observed target of one call site."""
        result: dict[int, float] = {}
        for (edge_caller, pc, callee), weight in self._edges.items():
            if edge_caller == caller and pc == callsite_pc:
                result[callee] = result.get(callee, 0.0) + weight
        return result

    def callsites_in(self, caller: int) -> dict[int, dict[int, float]]:
        """callsite pc → (callee → weight) for every profiled site in ``caller``."""
        result: dict[int, dict[int, float]] = defaultdict(dict)
        for (edge_caller, pc, callee), weight in self._edges.items():
            if edge_caller == caller:
                result[pc][callee] = result[pc].get(callee, 0.0) + weight
        return dict(result)

    def callee_weights(self) -> Counter:
        """Total incoming weight per callee (method hotness)."""
        counter: Counter = Counter()
        for (_, _, callee), weight in self._edges.items():
            counter[callee] += weight
        return counter

    def top_edges(self, count: int) -> list[tuple[Edge, float]]:
        """The ``count`` heaviest edges, heaviest first."""
        ranked = sorted(self._edges.items(), key=lambda item: -item[1])
        return ranked[:count]

    def copy(self) -> "DCG":
        clone = DCG()
        clone._edges = dict(self._edges)
        clone._total = self._total
        return clone

    def clear(self) -> None:
        self._edges.clear()
        self._total = 0.0

    # -- decay (continuous profiling support) ---------------------------------------

    def decay(self, factor: float) -> None:
        """Exponentially decay all edge weights (old-profile aging).

        Jikes RVM's adaptive system periodically decays its DCG so the
        profile tracks phase changes; exposed here for the adaptive mode.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        for edge in self._edges:
            self._edges[edge] *= factor
        self._total *= factor

    def describe(self, program=None, limit: int = 10) -> str:
        """Human-readable dump of the heaviest edges (for debugging)."""
        lines = [f"DCG: {len(self)} edges, total weight {self._total:.0f}"]
        for (caller, pc, callee), weight in self.top_edges(limit):
            if program is not None:
                caller_name = program.functions[caller].qualified_name
                callee_name = program.functions[callee].qualified_name
            else:
                caller_name, callee_name = str(caller), str(callee)
            fraction = 100.0 * weight / self._total if self._total else 0.0
            lines.append(
                f"  {caller_name} @pc={pc} -> {callee_name}: "
                f"{weight:.0f} ({fraction:.1f}%)"
            )
        return "\n".join(lines)
