"""Minimum-coverage counter placement for Ball-Larus path profiles.

Exhaustive Ball-Larus instrumentation adds the edge value at *every*
observable CFG edge.  Following the minimum-coverage instrumentation
line of work (arxiv 2208.13907, which revisits Knuth's classic
spanning-tree argument), the same final path ids can be recovered while
placing counters only on the *chord* edges of a spanning tree of
``CFG ∪ {EXIT→ENTRY}``:

* pick a spanning tree of the undirected CFG (plus the virtual
  ``EXIT→ENTRY`` edge that closes the cycle space),
* assign every node a potential ``θ`` such that tree edges carry a zero
  increment: for a tree edge ``u→v`` with Ball-Larus value ``val``,
  ``θ(v) = θ(u) − val`` (so ``inc(e) = val(e) + θ(v) − θ(u) = 0``),
* chord edges carry ``inc(e) = val(e) + θ(v) − θ(u)``.

Summing increments along any ENTRY→EXIT path telescopes the potentials
away: ``Σ inc = Σ val + θ(EXIT) − θ(ENTRY)``, and because the
``EXIT→ENTRY`` edge is always placed in the tree, ``θ(EXIT) = θ(ENTRY)
= 0`` — the accumulated register equals the exhaustive path id exactly,
with increments executed only on chords.

Two constraints specific to this VM's instrumentation surface:

* **Forced edges.**  Fall-through edges and forward ``JUMP`` edges have
  no interpreter hook site (they are single-successor transfers the
  dispatch loop never announces), so they *must* land in the spanning
  tree.  They always can: every block has at most one forced out-edge,
  forced edges strictly increase pc (no directed cycle), and none enter
  ``EXIT`` or ``ENTRY`` — so the forced set is a forest.
* **Weights.**  The tree is grown greedily (Kruskal) over the remaining
  observable edges in descending static loop depth, so hot in-loop
  edges tend to become free tree edges and chords land on cold ones —
  the optimization the minimum-coverage paper quantifies.
"""

from __future__ import annotations


class Placement:
    """The result of counter placement for one method's numbering."""

    __slots__ = ("theta", "chords", "tree")

    def __init__(self, theta: list, chords: set, tree: set):
        #: Per-node potential; ``θ(ENTRY) = θ(EXIT) = 0``.
        self.theta = theta
        #: Edge ids (into ``numbering.edges``) carrying an increment.
        self.chords = chords
        #: Edge ids placed in the spanning tree (zero increment).
        self.tree = tree


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


#: Edge kinds with no interpreter hook site — must be tree edges.
FORCED_KINDS = frozenset({"fall", "jump"})


def _loop_depth(numbering) -> list:
    """Static loop depth per node: the number of back-edge spans
    ``[target_pc, branch_pc]`` containing the node's start pc."""
    depth = [0] * numbering.n
    spans = [
        (target_pc, branch_pc) for _, _, _, branch_pc, target_pc in numbering.back_edges
    ]
    for index, (start, _end) in enumerate(numbering.blocks):
        node = index + 1
        depth[node] = sum(1 for low, high in spans if low <= start <= high)
    return depth


def place_counters(numbering) -> Placement | None:
    """Compute potentials and chord set for one method.

    Returns ``None`` when the forced edges unexpectedly fail to form a
    forest (cannot happen for CFGs derived from verified bytecode, but
    the caller then falls back to exhaustive placement, which is always
    a valid — if maximal — counter placement).
    """
    n = numbering.n
    entry, exit_node = numbering.entry, numbering.exit
    uf = _UnionFind(n)
    tree: set = set()

    # The virtual EXIT→ENTRY edge is always a tree edge (it is on every
    # cycle, so Kruskal with flow weights would pick it anyway); it is
    # what pins θ(EXIT) = θ(ENTRY) = 0.
    uf.union(exit_node, entry)

    candidates = []
    for edge in numbering.edges:
        if edge.kind in FORCED_KINDS:
            if not uf.union(edge.u, edge.v):
                return None  # forced edges cycled: bail to exhaustive
            tree.add(edge.id)
        else:
            candidates.append(edge)

    depth = _loop_depth(numbering)
    candidates.sort(key=lambda e: (-(depth[e.u] + depth[e.v]), e.id))
    chords: set = set()
    for edge in candidates:
        if uf.union(edge.u, edge.v):
            tree.add(edge.id)
        else:
            chords.add(edge.id)

    # Propagate potentials over the tree from ENTRY (θ = 0).  For a
    # tree edge u→v: θ(v) = θ(u) − val; traversed against the arrow:
    # θ(u) = θ(v) + val.
    adjacency: list = [[] for _ in range(n)]
    for edge in numbering.edges:
        if edge.id in tree:
            adjacency[edge.u].append((edge.v, edge.val, True))
            adjacency[edge.v].append((edge.u, edge.val, False))
    # The virtual loop edge, val 0.
    adjacency[exit_node].append((entry, 0, True))
    adjacency[entry].append((exit_node, 0, False))

    theta = [None] * n
    theta[entry] = 0
    worklist = [entry]
    while worklist:
        u = worklist.pop()
        for v, val, forward in adjacency[u]:
            if theta[v] is None:
                theta[v] = theta[u] - val if forward else theta[u] + val
                worklist.append(v)
    # A spanning tree reaches every node; unreachable-in-tree nodes
    # would mean a bug upstream — treat defensively like a cycle.
    if any(t is None for t in theta):
        return None
    return Placement(theta, chords, tree)
