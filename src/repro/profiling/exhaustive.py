"""Exhaustive (perfect) call-edge profiling.

Observes *every* dynamic call through the interpreter's call-observer
hook.  Two modes:

* ``charge_costs=False`` (default): a free oracle — the perfect profile
  the accuracy experiments compare against; adds no virtual time.
* ``charge_costs=True``: models real exhaustive instrumentation in the
  style of Vortex's PIC counters (paper §3.1), charging a per-call
  instrumentation cost so its overhead can be reported alongside the
  sampling techniques.
"""

from __future__ import annotations

from collections import Counter

from repro.profiling.dcg import DCG

#: Virtual cost of one counter update in instrumented dispatch code.
INSTRUMENTATION_COST = 6


class ExhaustiveProfiler:
    """Records every call edge; optionally charges instrumentation cost."""

    def __init__(self, charge_costs: bool = False):
        self.dcg = DCG()
        self.method_samples: Counter = Counter()
        self.charge_costs = charge_costs
        self._vm = None

    def install(self, vm) -> None:
        """Attach to ``vm``'s call-observer hook (not the profiler slot —
        an exhaustive profiler can run *alongside* a sampling profiler).
        Chains with any observer already installed."""
        self._vm = vm
        observe = self._observe_charged if self.charge_costs else self._observe
        existing = vm.call_observer
        if existing is None:
            vm.call_observer = observe
        else:
            def chained(caller, pc, callee, _first=existing, _second=observe):
                _first(caller, pc, callee)
                _second(caller, pc, callee)

            vm.call_observer = chained

    def _observe(self, caller: int, callsite_pc: int, callee: int) -> None:
        self.dcg.record(caller, callsite_pc, callee)
        self.method_samples[callee] += 1

    def _observe_charged(self, caller: int, callsite_pc: int, callee: int) -> None:
        self.dcg.record(caller, callsite_pc, callee)
        self.method_samples[callee] += 1
        self._vm.time += INSTRUMENTATION_COST
