"""Exact receiver-type profiles from the inline caches.

The polymorphic inline caches (:mod:`repro.vm.ic`) count every virtual
dispatch per (call site, receiver class) as a by-product of caching —
the shared cells survive recompilation because they are keyed by
*baseline* coordinates through the inline map.  A
:class:`ReceiverProfile` snapshots those cells into an immutable,
serializable profile that is **exact**: the counts sum to the number of
virtual calls the run executed, with none of the sampling error the
paper's CBS technique trades for low overhead.

Three consumers:

* the new Jikes inliner's >40% guarded-inlining rule
  (:mod:`repro.inlining.new_inliner`) can draw a call site's receiver
  distribution from here instead of (or in addition to) a sampled DCG,
* the figure-5 harness compares CBS-sampled site distributions against
  these exact ones (per-hot-site overlap),
* the fleet protocol publishes receiver counts alongside DCG deltas so
  aggregated profiles keep distribution shape.

Sites are keyed by baseline ``(function_index, pc)``; receiver classes
by class index.  Callee-level views resolve receivers through the
program's flat dispatch tables, so they agree byte-for-byte with what
the interpreter actually called.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.profiling.dcg import DCG

#: (function_index, pc) of a baseline virtual call site.
Site = tuple  # tuple[int, int]


class ReceiverProfile:
    """Per-call-site receiver-class counts, exact by construction."""

    __slots__ = ("sites",)

    def __init__(self, sites: dict | None = None):
        #: {(caller_index, pc): {class_index: count}}
        self.sites: dict = sites if sites is not None else {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_cache(cls, cache) -> "ReceiverProfile":
        """Snapshot a :class:`repro.vm.runtime.CodeCache`'s receiver
        cells (counts are copied; the live caches keep counting)."""
        sites = {
            site: {rclass: cell[0] for rclass, cell in cells.items() if cell[0]}
            for site, cells in cache.receiver_cells.items()
        }
        return cls({site: counts for site, counts in sites.items() if counts})

    def copy(self) -> "ReceiverProfile":
        return ReceiverProfile(
            {site: dict(counts) for site, counts in self.sites.items()}
        )

    def merge(self, other: "ReceiverProfile", scale: float = 1.0) -> None:
        """Accumulate another profile's counts (fleet aggregation)."""
        for site, counts in other.sites.items():
            mine = self.sites.setdefault(site, {})
            for rclass, count in counts.items():
                mine[rclass] = mine.get(rclass, 0) + count * scale

    # -- basic queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.sites)

    def site_counts(self, caller: int, pc: int) -> dict:
        """{class_index: count} at one site (empty if never executed)."""
        return self.sites.get((caller, pc), {})

    def site_total(self, caller: int, pc: int) -> float:
        return sum(self.site_counts(caller, pc).values())

    def total_calls(self) -> float:
        """Every virtual call the profile observed (exactness check:
        equals the VM's virtual-call count when snapshotted at exit)."""
        return sum(sum(counts.values()) for counts in self.sites.values())

    def hot_sites(self, count: int = 10) -> list:
        """The ``count`` highest-volume sites as ``(site, total)``."""
        totals = [
            (site, sum(counts.values())) for site, counts in self.sites.items()
        ]
        totals.sort(key=lambda item: (-item[1], item[0]))
        return totals[:count]

    # -- callee-level views (resolved through the flat dispatch tables) -----------

    def callee_distribution(self, program, caller: int, pc: int) -> dict:
        """{callee_function_index: count} at one site.

        Receiver classes map to targets through the same flat
        selector-indexed tables the megamorphic IC path dispatches
        with, so this is exactly the call distribution the VM executed.
        """
        counts = self.sites.get((caller, pc))
        if not counts:
            return {}
        instr = program.functions[caller].code[pc]
        if instr.op is not Op.CALL_VIRTUAL:
            return {}
        selector = instr.a
        tables = program.flat_dispatch_tables()
        distribution: dict = {}
        for rclass, count in counts.items():
            row = tables[rclass]
            callee = row[selector] if selector < len(row) else -1
            if callee >= 0:
                distribution[callee] = distribution.get(callee, 0) + count
        return distribution

    def edge_weight_fraction(
        self, program, caller: int, pc: int, callee: int
    ) -> float:
        """This edge's share of every observed virtual call — the exact
        analogue of ``DCG.weight_fraction`` for the inliner's linear
        size threshold."""
        total = self.total_calls()
        if total == 0:
            return 0.0
        distribution = self.callee_distribution(program, caller, pc)
        return distribution.get(callee, 0) / total

    def to_dcg(self, program) -> DCG:
        """The profile as a DCG (virtual edges only), for the shared
        accuracy metrics."""
        dcg = DCG()
        for caller, pc in self.sites:
            for callee, count in self.callee_distribution(
                program, caller, pc
            ).items():
                dcg.record(caller, pc, callee, count)
        return dcg

    # -- accuracy against sampled profiles ----------------------------------------

    def site_overlap(self, program, dcg: DCG, caller: int, pc: int) -> float:
        """Percent overlap between a sampled DCG's distribution at this
        site and the exact one (100 = identical shape).

        The paper's overlap metric restricted to one call site: sum of
        ``min(p_sampled, p_exact)`` over callees, in percent.  A site
        the sampler never hit scores 0.
        """
        exact = self.callee_distribution(program, caller, pc)
        exact_total = sum(exact.values())
        sampled = dcg.callsite_distribution(caller, pc)
        sampled_total = sum(sampled.values())
        if exact_total == 0 or sampled_total == 0:
            return 0.0
        shared = 0.0
        for callee, count in exact.items():
            p_exact = count / exact_total
            p_sampled = sampled.get(callee, 0.0) / sampled_total
            shared += min(p_exact, p_sampled)
        return 100.0 * shared

    # -- serialization (fleet wire format) -----------------------------------------

    def to_rows(self) -> list:
        """Flatten to ``[[caller, pc, class_index, count], ...]`` rows,
        deterministically ordered — the fleet ``receivers`` field."""
        rows = []
        for site in sorted(self.sites):
            caller, pc = site
            counts = self.sites[site]
            for rclass in sorted(counts):
                rows.append([caller, pc, rclass, counts[rclass]])
        return rows

    @classmethod
    def from_rows(cls, rows) -> "ReceiverProfile":
        profile = cls()
        for caller, pc, rclass, count in rows:
            site = (int(caller), int(pc))
            counts = profile.sites.setdefault(site, {})
            counts[rclass] = counts.get(rclass, 0) + count
        return profile

    def describe(self, program=None, limit: int = 5) -> str:
        lines = [
            f"ReceiverProfile({len(self.sites)} sites, "
            f"{self.total_calls():.0f} calls)"
        ]
        for site, total in self.hot_sites(limit):
            caller, pc = site
            name = (
                program.functions[caller].qualified_name
                if program is not None
                else str(caller)
            )
            counts = self.sites[site]
            shape = ", ".join(
                f"{rclass}:{count}" for rclass, count in sorted(counts.items())
            )
            lines.append(f"  {name}@{pc}: {total:.0f} calls [{shape}]")
        return "\n".join(lines)
