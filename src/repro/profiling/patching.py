"""Code-patching (dynamic instrumentation) profiling, Suganuma et al.
style (paper §3.2).

The IBM DK 1.3.1 system skips a method's initial executions, then — once
the method is deemed worth profiling — patches a *listener* into its
prologue.  The listener records the caller–callee relationship on every
invocation; after a fixed number of samples it uninstalls itself by
patching the prologue back.

The reproduction models this on the call-observer hook:

* each method's invocations are counted;
* after ``warmup_invocations`` the listener is installed (charging the
  code-patch cost);
* while installed, every entry records an edge and charges the listener
  cost;
* after ``samples_per_method`` recorded samples the listener uninstalls
  (charging the patch cost again).

The characteristic weaknesses the paper points out emerge directly:
short-running programs exit before warmup completes (few methods ever
profiled), and all of a method's samples land in one short burst.
"""

from __future__ import annotations

from collections import Counter

from repro.profiling.dcg import DCG


class CodePatchingProfiler:
    """Burst-per-method dynamic instrumentation."""

    def __init__(self, warmup_invocations: int = 500, samples_per_method: int = 100):
        if warmup_invocations < 0:
            raise ValueError("warmup_invocations must be >= 0")
        if samples_per_method < 1:
            raise ValueError("samples_per_method must be >= 1")
        self.warmup_invocations = warmup_invocations
        self.samples_per_method = samples_per_method

        self.dcg = DCG()
        self.method_samples: Counter = Counter()
        self.samples_taken = 0
        self.patches_installed = 0
        self.patches_removed = 0

        self._invocations: Counter = Counter()
        self._listening: dict[int, int] = {}  # callee -> samples remaining
        self._done: set[int] = set()
        self._vm = None

    # The patching profiler is driven by calls, not yieldpoints, so it is
    # installed on the observer hook rather than the profiler slot.
    def install(self, vm) -> None:
        self._vm = vm
        existing = vm.call_observer
        if existing is None:
            vm.call_observer = self._observe
        else:
            def chained(caller, pc, callee, _first=existing, _second=self._observe):
                _first(caller, pc, callee)
                _second(caller, pc, callee)

            vm.call_observer = chained

    def _observe(self, caller: int, callsite_pc: int, callee: int) -> None:
        remaining = self._listening.get(callee)
        if remaining is not None:
            vm = self._vm
            cost_model = vm.config.cost_model
            vm.time += cost_model.patch_listener_cost
            self.dcg.record(caller, callsite_pc, callee)
            self.method_samples[callee] += 1
            self.samples_taken += 1
            if remaining <= 1:
                del self._listening[callee]
                self._done.add(callee)
                self.patches_removed += 1
                vm.time += cost_model.code_patch_cost
            else:
                self._listening[callee] = remaining - 1
            return
        if callee in self._done:
            return
        count = self._invocations[callee] + 1
        self._invocations[callee] = count
        if count >= self.warmup_invocations:
            self._listening[callee] = self.samples_per_method
            self.patches_installed += 1
            self._vm.time += self._vm.config.cost_model.code_patch_cost
