"""CBS applied to loop (backedge) frequency profiling.

The paper closes by noting the mechanism "is fairly general ... it could
be applied any time it is desirable to use low overhead timer-based
sampling to collect frequency-based profile data."  This module is that
generalization: the same timer-opens-window / countdown-samples scheme,
driven by *backedge* yieldpoints instead of prologues, yielding a loop
frequency profile (which loop back-edges execute most) — the input an
optimizer would use for loop-level decisions (unrolling, OSR
candidates).

Mechanically it uses the ``YP_ALL`` window state (all yieldpoints taken)
since backedge yieldpoints only fire on a positive control word, and
counts backedge events through the Figure 3 countdown.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.vm.yieldpoint import BACKEDGE, YP_ALL, YP_NONE

#: A loop identifier: (function index, backedge pc).
LoopId = tuple[int, int]


class CBSLoopProfiler:
    """Counter-based sampling of loop backedge frequencies."""

    def __init__(
        self,
        stride: int = 3,
        samples_per_tick: int = 16,
        seed: int = 977,
    ):
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if samples_per_tick < 1:
            raise ValueError("samples_per_tick must be >= 1")
        self.stride = stride
        self.samples_per_tick = samples_per_tick

        #: loop id -> sampled backedge executions.
        self.loop_samples: Counter = Counter()
        self.method_samples: Counter = Counter()
        self.samples_taken = 0
        self.windows_opened = 0
        self.ticks_seen = 0

        self._rng = random.Random(seed)
        self._armed = False
        self._skipped = 0
        self._remaining = 0

    def attach(self, vm) -> None:
        pass

    def handle_timer(self, vm) -> None:
        self.ticks_seen += 1
        if self._armed:
            self._remaining = self.samples_per_tick
        elif vm.yieldpoint_flag == YP_NONE:
            vm.yieldpoint_flag = YP_ALL

    def handle_yieldpoint(self, vm, kind: int) -> None:
        if not self._armed:
            # First taken yieldpoint after the tick opens the window.
            # The control word stays positive so backedges keep firing.
            self._armed = True
            self.windows_opened += 1
            self._skipped = self._rng.randint(1, self.stride)
            self._remaining = self.samples_per_tick
            return
        if kind != BACKEDGE:
            return
        cost_model = vm.config.cost_model
        vm.charge(cost_model.cbs_countdown_cost)
        self._skipped -= 1
        if self._skipped != 0:
            return
        self._sample(vm, cost_model)
        self._skipped = self.stride
        self._remaining -= 1
        if self._remaining == 0:
            self._armed = False
            vm.yieldpoint_flag = YP_NONE

    def _sample(self, vm, cost_model) -> None:
        vm.charge(cost_model.stack_walk_base_cost)
        frame = vm.frames[-1]
        self.loop_samples[(frame.method.index, frame.pc)] += 1
        self.method_samples[frame.method.index] += 1
        self.samples_taken += 1

    def hottest_loops(self, count: int = 10) -> list[tuple[LoopId, int]]:
        """The most frequently sampled backedges, hottest first."""
        return self.loop_samples.most_common(count)

    def describe(self, program=None, limit: int = 8) -> str:
        total = sum(self.loop_samples.values())
        lines = [
            f"loop profile: {len(self.loop_samples)} loops, {total} samples"
        ]
        for (function_index, pc), count in self.hottest_loops(limit):
            if program is not None:
                where = program.functions[function_index].qualified_name
            else:
                where = str(function_index)
            share = 100.0 * count / total if total else 0.0
            lines.append(f"  {where} @backedge pc={pc}: {count} ({share:.1f}%)")
        return "\n".join(lines)
