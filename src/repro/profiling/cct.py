"""Calling context tree (CCT) support.

The paper notes the CBS mechanism "is easily extensible to
context-sensitive profiling"; Whaley's timer sampler also builds a CCT.
Paths are sequences of ``(function index, callsite pc)`` pairs ordered
caller→callee (the callsite pc is the pc *in the parent* that created
the frame; the outermost recorded frame's pc is whatever created it, or
-1 for the entry frame).
"""

from __future__ import annotations

from repro.profiling.dcg import DCG

PathEntry = tuple[int, int]


class CCTNode:
    """One calling context: a method reached through a specific path."""

    __slots__ = ("function_index", "callsite_pc", "weight", "children")

    def __init__(self, function_index: int, callsite_pc: int):
        self.function_index = function_index
        self.callsite_pc = callsite_pc
        self.weight = 0.0
        self.children: dict[PathEntry, "CCTNode"] = {}

    def child(self, entry: PathEntry) -> "CCTNode":
        node = self.children.get(entry)
        if node is None:
            node = CCTNode(entry[0], entry[1])
            self.children[entry] = node
        return node


class CallingContextTree:
    """A weighted tree of sampled calling contexts."""

    def __init__(self) -> None:
        self._root = CCTNode(-1, -1)
        self.total_weight = 0.0

    def record_path(self, path: list[PathEntry], weight: float = 1.0) -> None:
        """Add a sample for one caller→callee path (leaf gets the weight)."""
        if not path:
            return
        node = self._root
        for entry in path:
            node = node.child(entry)
        node.weight += weight
        self.total_weight += weight

    # -- queries -----------------------------------------------------------------

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += len(node.children)
            stack.extend(node.children.values())
        return count

    def context_profile(self) -> dict[tuple[PathEntry, ...], float]:
        """Flatten to path → weight (paths with non-zero weight only)."""
        result: dict[tuple[PathEntry, ...], float] = {}
        stack: list[tuple[CCTNode, tuple[PathEntry, ...]]] = [(self._root, ())]
        while stack:
            node, prefix = stack.pop()
            for entry, child in node.children.items():
                path = prefix + (entry,)
                if child.weight > 0:
                    result[path] = result.get(path, 0.0) + child.weight
                stack.append((child, path))
        return result

    def to_dcg(self) -> DCG:
        """Project contexts down to context-insensitive call edges.

        Each sampled path contributes its weight to the (parent → leaf)
        edge *and* structural weight to interior edges along the path.
        """
        dcg = DCG()
        stack: list[tuple[CCTNode, CCTNode | None]] = [(self._root, None)]
        # Accumulate subtree weights bottom-up via explicit post-order.
        subtree: dict[int, float] = {}
        order: list[tuple[CCTNode, CCTNode | None]] = []
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            for child in node.children.values():
                stack.append((child, node))
        for node, parent in reversed(order):
            total = node.weight + sum(
                subtree[id(child)] for child in node.children.values()
            )
            subtree[id(node)] = total
            if parent is not None and parent.function_index >= 0 and total > 0:
                dcg.record(
                    parent.function_index, node.callsite_pc, node.function_index, total
                )
        return dcg


def context_overlap(
    profile1: dict[tuple[PathEntry, ...], float],
    profile2: dict[tuple[PathEntry, ...], float],
) -> float:
    """The overlap metric generalized to context (path) profiles."""
    total1 = sum(profile1.values())
    total2 = sum(profile2.values())
    if total1 == 0 or total2 == 0:
        return 0.0
    common = 0.0
    small, big = (profile1, profile2) if len(profile1) <= len(profile2) else (
        profile2,
        profile1,
    )
    small_total = total1 if small is profile1 else total2
    big_total = total2 if small is profile1 else total1
    for path, weight in small.items():
        other = big.get(path)
        if other is not None:
            common += min(weight / small_total, other / big_total)
    return 100.0 * common
