"""Simulated hardware call sampling (the paper's §7 alternative).

The paper observes that PMU-style hardware could sample executed call
instructions directly — "low overhead, but somewhat imprecise" on the
Pentium 4 — capturing the call PC and target PC every N-th call.  The
simulation models exactly that trade:

* a hardware *period* counter fires every ``period`` dynamic calls
  (no software cost: the counting happens "in hardware", i.e. on the
  call-observer hook with zero virtual-time charge);
* *skid*: the sampled call is not the one that tripped the counter but
  one up to ``max_skid`` calls later (seeded, uniform), modeling the
  imprecise attribution of cheap PMU sampling;
* draining a sample into the profile costs ``drain_cost`` virtual time
  (the interrupt/buffer-read the VM still pays for).

Because the trigger counts *calls* rather than time, this sampler has
CBS-like accuracy characteristics; its deficiencies in practice are the
engineering ones the paper lists (per-microarchitecture PMU code),
which a simulator cannot capture.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.profiling.dcg import DCG

#: Virtual cost of draining one sample from the PMU buffer.
DEFAULT_DRAIN_COST = 4


class HardwareCallSampler:
    """Period-based call sampling with attribution skid."""

    def __init__(
        self,
        period: int = 97,
        max_skid: int = 4,
        jitter: int = 0,
        drain_cost: int = DEFAULT_DRAIN_COST,
        seed: int = 4242,
    ):
        """``jitter`` adds a random 0..jitter to each period, breaking
        the aliasing that afflicts fixed-period sampling of periodic
        call patterns (real PMU drivers randomize for the same
        reason)."""
        if period < 1:
            raise ValueError("period must be >= 1")
        if max_skid < 0:
            raise ValueError("max_skid must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.period = period
        self.max_skid = max_skid
        self.jitter = jitter
        self.drain_cost = drain_cost

        self.dcg = DCG()
        self.method_samples: Counter = Counter()
        self.samples_taken = 0

        self._rng = random.Random(seed)
        self._countdown = period
        self._skid_remaining: int | None = None
        self._vm = None

    def install(self, vm) -> None:
        """Attach to the call-observer hook (chains with any existing)."""
        self._vm = vm
        existing = vm.call_observer
        if existing is None:
            vm.call_observer = self._observe
        else:
            def chained(caller, pc, callee, _first=existing, _second=self._observe):
                _first(caller, pc, callee)
                _second(caller, pc, callee)

            vm.call_observer = chained

    def _observe(self, caller: int, callsite_pc: int, callee: int) -> None:
        if self._skid_remaining is not None:
            if self._skid_remaining == 0:
                self.dcg.record(caller, callsite_pc, callee)
                self.method_samples[callee] += 1
                self.samples_taken += 1
                self._vm.time += self.drain_cost
                self._skid_remaining = None
            else:
                self._skid_remaining -= 1
            return
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.period + (
                self._rng.randint(0, self.jitter) if self.jitter else 0
            )
            skid = self._rng.randint(0, self.max_skid) if self.max_skid else 0
            if skid == 0:
                # Precise attribution: the triggering call itself.
                self.dcg.record(caller, callsite_pc, callee)
                self.method_samples[callee] += 1
                self.samples_taken += 1
                self._vm.time += self.drain_cost
            else:
                self._skid_remaining = skid - 1
