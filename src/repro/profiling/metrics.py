"""Profile accuracy metrics.

The paper evaluates sampled DCGs against an exhaustively profiled DCG
with the *overlap* metric (§6.2)::

    overlap(DCG1, DCG2) = Σ_{e ∈ CallEdges} min(Weight(e, DCG1),
                                                Weight(e, DCG2))

where ``CallEdges`` is the set of edges present in both graphs and
``Weight(e, DCG)`` is the *percentage* of that DCG's total samples on
edge ``e``.  The result lies in 0..100: 0 = no common information,
100 = identical profiles.

A handful of additional metrics beyond the paper (hot-edge recall/
precision, rank correlation) support the extended analyses in
``benchmarks/``.
"""

from __future__ import annotations

from repro.profiling.dcg import DCG


def overlap(dcg1: DCG, dcg2: DCG) -> float:
    """The paper's overlap metric, in percent (0..100)."""
    if dcg1.total_weight == 0 or dcg2.total_weight == 0:
        return 0.0
    weights1 = dcg1.normalized()
    weights2 = dcg2.normalized()
    if len(weights2) < len(weights1):
        weights1, weights2 = weights2, weights1
    common = 0.0
    for edge, fraction1 in weights1.items():
        fraction2 = weights2.get(edge)
        if fraction2 is not None:
            common += min(fraction1, fraction2)
    return 100.0 * common


def accuracy(sampled: DCG, perfect: DCG) -> float:
    """``overlap(sampled, perfect)`` — the paper's accuracy score."""
    return overlap(sampled, perfect)


def hot_edges(dcg: DCG, threshold_percent: float) -> set:
    """Edges whose weight exceeds ``threshold_percent`` of the total."""
    cutoff = threshold_percent / 100.0
    return {
        edge
        for edge, fraction in dcg.normalized().items()
        if fraction > cutoff
    }


def hot_edge_recall(sampled: DCG, perfect: DCG, threshold_percent: float = 1.0) -> float:
    """Fraction of truly hot edges (per the perfect profile) that the
    sampled profile also classifies as hot.  1.0 when there are none."""
    truly_hot = hot_edges(perfect, threshold_percent)
    if not truly_hot:
        return 1.0
    sampled_hot = hot_edges(sampled, threshold_percent)
    return len(truly_hot & sampled_hot) / len(truly_hot)


def hot_edge_precision(
    sampled: DCG, perfect: DCG, threshold_percent: float = 1.0
) -> float:
    """Fraction of sampled-hot edges that are truly hot.  1.0 when the
    sampled profile reports none."""
    sampled_hot = hot_edges(sampled, threshold_percent)
    if not sampled_hot:
        return 1.0
    truly_hot = hot_edges(perfect, threshold_percent)
    return len(sampled_hot & truly_hot) / len(sampled_hot)


def edge_coverage(sampled: DCG, perfect: DCG) -> float:
    """Fraction of the perfect profile's *edges* (unweighted) that appear
    at all in the sampled profile."""
    perfect_edges = perfect.edges()
    if not perfect_edges:
        return 1.0
    sampled_edges = sampled.edges()
    found = sum(1 for edge in perfect_edges if edge in sampled_edges)
    return found / len(perfect_edges)


def weight_rank_correlation(sampled: DCG, perfect: DCG) -> float:
    """Spearman rank correlation of edge weights over the union of edges
    (absent edges count as weight 0).  Returns 0.0 when degenerate."""
    from scipy import stats

    union = set(sampled.edges()) | set(perfect.edges())
    if len(union) < 2:
        return 0.0
    ordered = sorted(union)
    xs = [sampled.edge_weight(edge) for edge in ordered]
    ys = [perfect.edge_weight(edge) for edge in ordered]
    result = stats.spearmanr(xs, ys)
    value = float(result.statistic)
    if value != value:  # NaN (constant input)
        return 0.0
    return value
