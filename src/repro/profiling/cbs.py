"""Counter-based sampling (CBS) — the paper's contribution (§4).

A timer interrupt opens a *profiling window* by setting the yieldpoint
control word to "all yieldpoints taken".  The first taken yieldpoint
switches the word to the CBS state (prologue/epilogue yieldpoints only)
and arms the countdown; from then on every method entry runs the
Figure 3 logic: every ``stride``-th call is sampled (a call-stack walk
records the caller→callee edge) until ``samples_per_tick`` samples have
been taken, after which yieldpoints are disabled until the next tick.

To give every call in the window an equal chance of being profiled, the
initial value of the skip counter is drawn from ``[1..stride]`` either
pseudo-randomly or round-robin (paper §4).
"""

from __future__ import annotations

import random
from collections import Counter

from repro.profiling.cct import CallingContextTree
from repro.profiling.dcg import DCG
from repro.vm.yieldpoint import PROLOGUE, YP_ALL, YP_CBS, YP_NONE

#: Valid initial-skip selection policies.
SKIP_POLICIES = ("random", "roundrobin")


class CBSProfiler:
    """Counter-based sampling of the dynamic call graph.

    Parameters mirror the paper: ``stride`` is the sampling stride *i*
    (sample every i-th call in the window) and ``samples_per_tick`` is
    SAMPLES_PER_TIMER_INTERRUPT.  ``Stride=1, samples_per_tick=1``
    degenerates to the timer-based baseline.

    ``context_depth > 1`` enables the context-sensitive extension: each
    sample walks ``context_depth`` frames and records the calling
    context into a :class:`CallingContextTree` (charging proportionally
    more stack-walk cost), in addition to the plain DCG edge.
    """

    def __init__(
        self,
        stride: int = 3,
        samples_per_tick: int = 16,
        skip_policy: str = "random",
        seed: int = 1234,
        context_depth: int = 1,
    ):
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if samples_per_tick < 1:
            raise ValueError("samples_per_tick must be >= 1")
        if skip_policy not in SKIP_POLICIES:
            raise ValueError(f"skip_policy must be one of {SKIP_POLICIES}")
        if context_depth < 1:
            raise ValueError("context_depth must be >= 1")
        self.stride = stride
        self.samples_per_tick = samples_per_tick
        self.skip_policy = skip_policy
        self.context_depth = context_depth

        self.dcg = DCG()
        self.cct = CallingContextTree() if context_depth > 1 else None
        self.method_samples: Counter = Counter()
        self.samples_taken = 0
        self.windows_opened = 0
        self.ticks_seen = 0

        self._rng = random.Random(seed)
        self._round_robin = 0
        self._skipped = 0
        self._remaining = 0

    # -- hook implementation ------------------------------------------------------

    def attach(self, vm) -> None:
        pass

    def handle_timer(self, vm) -> None:
        self.ticks_seen += 1
        flag = vm.yieldpoint_flag
        if flag == YP_CBS:
            # Tick landed inside an open window: refresh the sample budget
            # (profilingEnabledByTimer is simply set true again).
            self._remaining = self.samples_per_tick
        elif flag == YP_NONE:
            vm.yieldpoint_flag = YP_ALL

    def handle_yieldpoint(self, vm, kind: int) -> None:
        flag = vm.yieldpoint_flag
        if flag == YP_ALL:
            # First yieldpoint after the tick: open the profiling window.
            vm.yieldpoint_flag = YP_CBS
            self.windows_opened += 1
            self._skipped = self._initial_skip()
            self._remaining = self.samples_per_tick
            if vm.telemetry is not None:
                vm.telemetry.on_window_open(vm.time)
            return
        if flag != YP_CBS or kind != PROLOGUE:
            # Epilogue/backedge yieldpoints are taken (their cost is
            # charged by the interpreter) but only method entries drive
            # the Figure 3 countdown.
            return

        cost_model = vm.config.cost_model
        vm.charge(cost_model.cbs_countdown_cost)
        self._skipped -= 1
        if self._skipped != 0:
            return

        self._sample(vm, cost_model)
        self._skipped = self.stride
        self._remaining -= 1
        if self._remaining == 0:
            vm.yieldpoint_flag = YP_NONE
            if vm.telemetry is not None:
                vm.telemetry.on_window_close(vm.time)

    # -- internals ------------------------------------------------------------------

    def _initial_skip(self) -> int:
        if self.stride == 1:
            return 1
        if self.skip_policy == "random":
            return self._rng.randint(1, self.stride)
        self._round_robin = self._round_robin % self.stride + 1
        return self._round_robin

    def _sample(self, vm, cost_model) -> None:
        depth = min(self.context_depth + 1, len(vm.frames))
        vm.charge(
            cost_model.stack_walk_base_cost + depth * cost_model.stack_walk_frame_cost
        )
        frames = vm.frames
        self.method_samples[frames[-1].method.index] += 1
        if len(frames) > 1:
            # The caller is executing this call: it gets hotness credit
            # too, so hot loops containing calls are promoted (in Jikes
            # the backedge-driven method listener provides this credit).
            self.method_samples[frames[-2].method.index] += 1
        edge = vm.current_edge()
        if edge is None:
            return
        self.dcg.record_edge(edge)
        self.samples_taken += 1
        if vm.telemetry is not None:
            vm.telemetry.on_sample(vm.time, edge[0], edge[1], edge[2], len(frames))
        if self.cct is not None:
            path = [
                (frame.method.index, frame.callsite_pc)
                for frame in frames[-depth:]
            ]
            self.cct.record_path(path)

    def describe(self) -> str:
        return (
            f"CBS(stride={self.stride}, samples={self.samples_per_tick}, "
            f"policy={self.skip_policy}): {self.samples_taken} samples in "
            f"{self.windows_opened} windows over {self.ticks_seen} ticks"
        )
