"""Ball-Larus path profiles: numbering, collection, and exploitation.

A *path profile* counts, per method, how often each acyclic
ENTRY→EXIT control-flow path executed — strictly more information than
edge counts at a comparable cost, and the profile type the fusion and
inlining layers exploit for path-aware decisions.

Numbering
---------
Each :class:`~repro.vm.runtime.CompiledMethod`'s CFG is derived from
its flat ``ops``/``a`` arrays (the same jump-target scan the
superinstruction fuser uses).  A CFG edge whose target pc is ≤ the
branch pc is a *back edge* — exactly the interpreter's backedge-
yieldpoint definition — and every other edge strictly increases pc, so
removing back edges leaves a DAG whose topological order is pc order.
Classic Ball-Larus numbering assigns each DAG edge a value such that
summing values along a path yields a unique id in ``[0, num_paths)``.

Back edges are handled with the multi-iteration extension (arxiv
1304.5197): a back edge ``u→v`` is replaced by dummy edges ``u→EXIT``
and ``ENTRY→v``; at runtime the back edge *records* the current path
(``count[r + val(u→EXIT)]``) and *resets* ``r = val(ENTRY→v)`` — so
each loop iteration is its own countable path and dominant
multi-iteration bodies are visible as hot ids.

Collection
----------
:class:`PathTracker` hangs off the interpreter's dispatch loops (see
``Interpreter.attach_paths``) and supports three modes:

* ``exhaustive`` — every observable branch outcome applies its edge
  value; the reference counts.
* ``mincov`` — minimum-coverage placement (:mod:`repro.profiling.
  pathplace`): increments only on spanning-tree chords, *identical*
  final ids, strictly fewer executed increments on branchy code.
* ``cbs`` — windowed sampling that reuses the virtual timer: every
  ``stride``-th tick opens a window with a budget of
  ``samples_per_tick`` path records; outside windows events are
  ignored and a frame's register is re-synced at the next back edge
  (the reset value fully determines ``r``).

A tracker built with ``charge=False`` is a zero-virtual-cost rider
(like telemetry and the flight recorder) used by the differential
fuzzer to assert bit-identity; ``charge=True`` bills
``path_edge_cost`` per executed increment and ``path_record_cost`` per
path record against the VM's virtual clock — the table-2 overhead
story.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.bytecode.opcodes import Op
from repro.profiling import pathplace

_OP_JUMP = int(Op.JUMP)
_OP_JIF = int(Op.JUMP_IF_FALSE)
_OP_JIT = int(Op.JUMP_IF_TRUE)
_OP_RETURN = int(Op.RETURN)
_OP_RETURN_VAL = int(Op.RETURN_VAL)
_BRANCH_OPS = (_OP_JIF, _OP_JIT)

#: Methods with more acyclic paths than this are not path-profiled
#: (the id space would not fit a sane counter table); their frames
#: no-op in every mode, so the modes still agree.
PATH_LIMIT = 1 << 20

#: Collection modes accepted by :class:`PathTracker` and the CLI.
PATH_MODES = ("exhaustive", "mincov", "cbs")


class Edge:
    """One DAG edge of a method's numbering.

    ``kind`` ∈ ``entry`` (ENTRY→block0), ``fall`` (fall-through),
    ``jump`` (forward JUMP), ``branch`` (conditional outcome, key
    ``(pc, taken)``), ``ret`` (block→EXIT at a RETURN, key pc),
    ``bout``/``bin`` (back-edge dummies ``u→EXIT`` / ``ENTRY→v``, key
    = the back edge's event key).
    """

    __slots__ = ("id", "u", "v", "val", "kind", "key")

    def __init__(self, eid: int, u: int, v: int, kind: str, key=None):
        self.id = eid
        self.u = u
        self.v = v
        self.kind = kind
        self.key = key
        self.val = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<edge {self.u}->{self.v} {self.kind} key={self.key} val={self.val}>"


class PathNumbering:
    """Ball-Larus numbering of one method's CFG (back-edge extended)."""

    __slots__ = (
        "n",
        "entry",
        "exit",
        "blocks",
        "starts",
        "edges",
        "out",
        "back_edges",
        "num_paths",
        "overflow",
    )

    def __init__(self, n, blocks, starts, edges, out, back_edges, num_paths, overflow):
        #: Node count including virtual ENTRY (0) and EXIT (n-1).
        self.n = n
        self.entry = 0
        self.exit = n - 1
        #: ``(start_pc, end_pc)`` per real block; node id = index + 1.
        self.blocks = blocks
        #: Block start pcs (sorted), for pc→block lookup.
        self.starts = starts
        #: Flat list of :class:`Edge` (DAG edges only).
        self.edges = edges
        #: Out-edge lists per node, in successor (value-assignment) order.
        self.out = out
        #: ``(key, src_node, dst_node, branch_pc, target_pc)`` per back edge.
        self.back_edges = back_edges
        #: Total acyclic paths (``numpaths(ENTRY)``).
        self.num_paths = num_paths
        #: True when ``num_paths`` exceeded :data:`PATH_LIMIT`.
        self.overflow = overflow

    # -- decoding -------------------------------------------------------------------

    def path_nodes(self, path_id: int) -> list:
        """The node sequence of ``path_id`` (ENTRY/EXIT excluded)."""
        nodes = []
        node, remaining = self.entry, path_id
        while node != self.exit:
            chosen = None
            for edge in reversed(self.out[node]):
                if edge.val <= remaining:
                    chosen = edge
                    break
            if chosen is None:  # pragma: no cover - invalid id
                break
            remaining -= chosen.val
            node = chosen.v
            if node != self.exit:
                nodes.append(node)
        return nodes

    def path_pcs(self, path_id: int) -> list:
        """Every raw pc covered by ``path_id``, in execution order."""
        pcs = []
        for node in self.path_nodes(path_id):
            start, end = self.blocks[node - 1]
            pcs.extend(range(start, end + 1))
        return pcs

    def block_at(self, pc: int) -> int:
        """Node id of the block containing ``pc``."""
        return bisect_right(self.starts, pc)


def number_paths(ops: list, a: list) -> PathNumbering:
    """Build the back-edge-extended Ball-Larus numbering for one
    method's flat opcode arrays (raw, unfused — the pcs the
    interpreter's hook sites report under every dispatch mode)."""
    size = len(ops)
    leaders = {0}
    for pc in range(size):
        op = ops[pc]
        if op == _OP_JUMP or op in _BRANCH_OPS:
            leaders.add(a[pc])
            if pc + 1 < size:
                leaders.add(pc + 1)
        elif op in (_OP_RETURN, _OP_RETURN_VAL):
            if pc + 1 < size:
                leaders.add(pc + 1)
    all_starts = sorted(p for p in leaders if 0 <= p < size)
    block_index = {start: i for i, start in enumerate(all_starts)}
    spans = [
        (start, (all_starts[i + 1] - 1) if i + 1 < len(all_starts) else size - 1)
        for i, start in enumerate(all_starts)
    ]

    def raw_successors(i: int) -> list:
        _start, end = spans[i]
        op = ops[end]
        if op == _OP_JUMP:
            return [block_index[a[end]]]
        if op in _BRANCH_OPS:
            succ = []
            if end + 1 < size:
                succ.append(block_index[end + 1])
            succ.append(block_index[a[end]])
            return succ
        if op in (_OP_RETURN, _OP_RETURN_VAL):
            return []
        return [block_index[end + 1]] if end + 1 < size else []

    # Reachability from block 0 (over real edges, back edges included).
    reachable = set()
    worklist = [0] if all_starts else []
    while worklist:
        i = worklist.pop()
        if i in reachable:
            continue
        reachable.add(i)
        worklist.extend(raw_successors(i))

    live = [i for i in sorted(reachable)]
    node_of = {i: idx + 1 for idx, i in enumerate(live)}
    blocks = [spans[i] for i in live]
    starts = [spans[i][0] for i in live]
    n = len(live) + 2
    entry, exit_node = 0, n - 1

    edges: list = []
    out: list = [[] for _ in range(n)]
    back_edges: list = []
    pending_bins: list = []

    def add_edge(u: int, v: int, kind: str, key=None) -> Edge:
        edge = Edge(len(edges), u, v, kind, key)
        edges.append(edge)
        out[u].append(edge)
        return edge

    for i in live:
        node = node_of[i]
        _start, end = spans[i]
        op = ops[end]
        if op == _OP_JUMP:
            target = a[end]
            if target <= end:
                back_edges.append((end, node, node_of[block_index[target]], end, target))
                add_edge(node, exit_node, "bout", end)
                pending_bins.append((end, node_of[block_index[target]]))
            else:
                add_edge(node, node_of[block_index[target]], "jump")
        elif op in _BRANCH_OPS:
            if end + 1 < size:
                add_edge(node, node_of[block_index[end + 1]], "branch", (end, False))
            target = a[end]
            if target <= end:
                key = (end, True)
                back_edges.append((key, node, node_of[block_index[target]], end, target))
                add_edge(node, exit_node, "bout", key)
                pending_bins.append((key, node_of[block_index[target]]))
            else:
                add_edge(node, node_of[block_index[target]], "branch", (end, True))
        elif op in (_OP_RETURN, _OP_RETURN_VAL):
            add_edge(node, exit_node, "ret", end)
        elif end + 1 < size:
            add_edge(node, node_of[block_index[end + 1]], "fall")
        else:
            # Fell off the end of the method (the verifier prevents
            # this, but keep the CFG closed).
            add_edge(node, exit_node, "ret", end)

    # ENTRY edges: the real entry first (so its value is 0 and the
    # entry register starts at 0 under exhaustive placement), then one
    # dummy per back-edge target.
    if live:
        add_edge(entry, node_of[live[0]], "entry")
    else:
        add_edge(entry, exit_node, "entry")
    for key, target_node in pending_bins:
        add_edge(entry, target_node, "bin", key)

    # Value assignment in reverse topological (descending node) order.
    numpaths = [0] * n
    numpaths[exit_node] = 1
    overflow = False
    for node in range(n - 2, -1, -1):
        running = 0
        for edge in out[node]:
            edge.val = running
            running += numpaths[edge.v]
        numpaths[node] = running if out[node] else 1
        if numpaths[node] > PATH_LIMIT:
            overflow = True
            break
    return PathNumbering(
        n, blocks, starts, edges, out, back_edges, numpaths[entry], overflow
    )


def numbering_for_code(code) -> PathNumbering:
    """Numbering straight from a function's ``Instr`` list (the
    baseline CFG — what the exploitation layers decode against)."""
    return number_paths([int(i.op) for i in code], [i.a for i in code])


class PathTables:
    """Runtime lookup tables for one (method, placement) pair."""

    __slots__ = (
        "num_paths",
        "entry_r",
        "branch",
        "branch_back",
        "back_jump",
        "ret",
        "charged",
        "placement",
    )

    def __init__(self, numbering: PathNumbering, placement: str):
        theta = [0] * numbering.n
        chords = None
        if placement == "mincov":
            placed = pathplace.place_counters(numbering)
            if placed is not None:
                theta, chords = placed.theta, placed.chords
        self.placement = placement
        self.num_paths = numbering.num_paths
        self.entry_r = 0
        #: {(pc, taken): increment} for forward conditional outcomes.
        self.branch: dict = {}
        #: {(pc, True): (record_inc, reset)} for backward conditionals.
        self.branch_back: dict = {}
        #: {pc: (record_inc, reset)} for backward JUMPs.
        self.back_jump: dict = {}
        #: {return_pc: increment folded into the record at EXIT}.
        self.ret: dict = {}
        #: Branch keys whose increment is actually *instrumented*
        #: (all of them under exhaustive placement; chords only under
        #: minimum coverage) — the charging / ``paths.increments`` set.
        charged = set()
        bouts = {e.key: e for e in numbering.edges if e.kind == "bout"}
        for edge in numbering.edges:
            if edge.kind == "entry":
                self.entry_r = edge.val + theta[edge.v]
            elif edge.kind == "branch":
                inc = edge.val + theta[edge.v] - theta[edge.u]
                if inc:
                    self.branch[edge.key] = inc
                if chords is None or edge.id in chords:
                    charged.add(edge.key)
            elif edge.kind == "ret":
                inc = -theta[edge.u]
                if inc:
                    self.ret[edge.key] = inc
            elif edge.kind == "bin":
                bout = bouts[edge.key]
                record_inc = bout.val - theta[bout.u]
                reset = edge.val + theta[edge.v]
                if isinstance(edge.key, tuple):
                    self.branch_back[edge.key] = (record_inc, reset)
                else:
                    self.back_jump[edge.key] = (record_inc, reset)
        self.charged = frozenset(charged)


def method_tables(method, placement: str) -> PathTables | None:
    """The (lazily built, cached) tables for one compiled method.

    Returns ``None`` for methods whose path space overflows
    :data:`PATH_LIMIT`; such frames are skipped in every mode.
    """
    info = method.pathinfo
    if info is None:
        info = method.pathinfo = {}
    if placement in info:
        return info[placement]
    numbering = info.get("numbering")
    if numbering is None:
        numbering = info["numbering"] = number_paths(method.ops, method.a)
    tables = None if numbering.overflow else PathTables(numbering, placement)
    info[placement] = tables
    return tables


class PathProfile:
    """Per-(function, path-id) execution counts."""

    __slots__ = ("counts",)

    def __init__(self, counts: dict | None = None):
        #: {(function_index, path_id): count}
        self.counts: dict = counts if counts is not None else {}

    def record(self, function: int, path_id: int, count: float = 1) -> None:
        key = (function, path_id)
        self.counts[key] = self.counts.get(key, 0) + count

    def total(self) -> float:
        return sum(self.counts.values())

    def distinct(self) -> int:
        return len(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def function_totals(self) -> dict:
        totals: dict = {}
        for (function, _pid), count in self.counts.items():
            totals[function] = totals.get(function, 0) + count
        return totals

    def hot_paths(self, count: int = 10) -> list:
        """The ``count`` hottest ``((function, path_id), count)`` rows."""
        rows = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return rows[:count]

    def merge(self, other: "PathProfile", scale: float = 1.0) -> None:
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count * scale

    def copy(self) -> "PathProfile":
        return PathProfile(dict(self.counts))

    def overlap(self, other: "PathProfile") -> float:
        """Percent distribution overlap with another profile — the
        figure-5 metric over (function, path) keys: ``Σ min(p, q)`` in
        percent (100 = identical shape)."""
        mine, theirs = self.total(), other.total()
        if mine == 0 or theirs == 0:
            return 0.0
        shared = 0.0
        for key, count in self.counts.items():
            shared += min(count / mine, other.counts.get(key, 0) / theirs)
        return 100.0 * shared

    # -- serialization (profile files and the fleet wire format) -------------------

    def to_rows(self, program) -> list:
        """``[[qualified_name, path_id, count], ...]``, deterministic."""
        names = {}
        rows = []
        for (function, pid) in sorted(self.counts):
            name = names.get(function)
            if name is None:
                name = names[function] = program.functions[function].qualified_name
            rows.append([name, pid, self.counts[(function, pid)]])
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    @classmethod
    def from_rows(cls, rows, program, strict: bool = False) -> "PathProfile":
        index_of = {
            function.qualified_name: i for i, function in enumerate(program.functions)
        }
        profile = cls()
        for name, pid, count in rows:
            function = index_of.get(name)
            if function is None:
                if strict:
                    raise ValueError(f"unknown function in path rows: {name!r}")
                continue
            profile.record(function, int(pid), count)
        return profile

    def describe(self, program=None, limit: int = 5) -> str:
        lines = [
            f"PathProfile({self.distinct()} paths, {self.total():.0f} records)"
        ]
        for (function, pid), count in self.hot_paths(limit):
            name = (
                program.functions[function].qualified_name
                if program is not None
                else str(function)
            )
            lines.append(f"  {name} path {pid}: {count:.0f}")
        return "\n".join(lines)


class PathHeat:
    """Per-pc execution heat decoded from a path profile.

    Decoding walks the *baseline* CFG (path ids are collected at opt
    level 0), so the heat keys line up with the pcs the fuser and the
    inlining policies reason about.
    """

    __slots__ = ("heat", "totals")

    def __init__(self, heat: dict, totals: dict):
        #: {function_index: {pc: weight}}
        self.heat = heat
        #: {function_index: total recorded paths}
        self.totals = totals

    @classmethod
    def from_profile(cls, profile: PathProfile, program) -> "PathHeat":
        numberings: dict = {}
        heat: dict = {}
        totals: dict = {}
        for (function, pid), count in profile.counts.items():
            numbering = numberings.get(function)
            if numbering is None:
                numbering = numberings[function] = numbering_for_code(
                    program.functions[function].code
                )
            if numbering.overflow or pid >= numbering.num_paths:
                continue
            per_pc = heat.setdefault(function, {})
            for pc in numbering.path_pcs(pid):
                per_pc[pc] = per_pc.get(pc, 0) + count
            totals[function] = totals.get(function, 0) + count
        return cls(heat, totals)

    def function_heat(self, function: int) -> dict:
        return self.heat.get(function, {})

    def pc_fraction(self, function: int, pc: int) -> float:
        """Fraction of the function's recorded paths covering ``pc``."""
        total = self.totals.get(function, 0)
        if not total:
            return 0.0
        return self.heat.get(function, {}).get(pc, 0) / total


class PathTracker:
    """The collector: mirrors the interpreter's frame stack and keeps
    one Ball-Larus register per live frame.

    Hook contract (all driven from ``Interpreter``'s dispatch loops,
    after the step-limit/yieldpoint handling of the site, under the
    same sync-at-raise-sites discipline as the call observer):

    * ``on_entry(method)`` / ``on_call(method)`` — frame pushed,
    * ``on_branch(pc, taken)`` — conditional outcome at ``pc``,
    * ``on_jump_back(pc)`` — backward unconditional jump,
    * ``on_return(pc)`` — frame popped at a RETURN site,
    * ``on_tick(vm)`` — virtual timer fired (CBS windowing only).

    By default the tracker is a charge-free rider (the flight-recorder
    contract): attaching one leaves output, virtual time, the tick
    schedule, and every other profile bit-identical.  Pass
    ``charge=True`` to bill ``path_edge_cost``/``path_record_cost``
    against the virtual clock — what the overhead harness does to
    measure what the instrumentation *would* cost.
    """

    __slots__ = (
        "mode",
        "charge",
        "stride",
        "samples_per_tick",
        "placement",
        "vm",
        "profile",
        "stack",
        "increments",
        "records",
        "_edge_cost",
        "_record_cost",
        "_open",
        "_windowed",
        "_budget",
        "_ticks",
        "windows",
    )

    def __init__(
        self,
        mode: str = "exhaustive",
        charge: bool = False,
        stride: int = 3,
        samples_per_tick: int = 32,
    ):
        if mode not in PATH_MODES:
            raise ValueError(f"unknown path mode: {mode!r} (expected {PATH_MODES})")
        self.mode = mode
        self.charge = charge
        self.stride = max(1, stride)
        self.samples_per_tick = max(1, samples_per_tick)
        #: Exhaustive placement instruments every observable edge;
        #: both cheaper modes run on minimum-coverage tables.
        self.placement = "exhaustive" if mode == "exhaustive" else "mincov"
        self.vm = None
        self.profile = PathProfile()
        #: Per-frame state: [tables, register, dirty, function_index].
        self.stack: list = []
        #: Instrumented edge increments executed (the overhead driver
        #: minimum coverage shrinks).
        self.increments = 0
        #: Paths recorded (back-edge + return records).
        self.records = 0
        self._edge_cost = 0
        self._record_cost = 0
        self._windowed = mode == "cbs"
        self._open = not self._windowed
        self._budget = 0
        self._ticks = 0
        #: CBS windows opened.
        self.windows = 0

    # -- attachment -----------------------------------------------------------------

    def attach(self, vm) -> None:
        """Bind to a VM (called by ``Interpreter.attach_paths``)."""
        self.vm = vm
        cost_model = vm.config.cost_model
        self._edge_cost = cost_model.path_edge_cost
        self._record_cost = cost_model.path_record_cost

    # -- frame hooks ----------------------------------------------------------------

    def on_entry(self, method) -> None:
        tables = method_tables(method, self.placement)
        self.stack.append(
            [tables, tables.entry_r if tables is not None else 0, False, method.index]
        )

    on_call = on_entry

    def on_return(self, pc: int) -> None:
        frame = self.stack.pop()
        tables = frame[0]
        if tables is None or not self._open or frame[2]:
            return
        self._record(frame[3], frame[1] + tables.ret.get(pc, 0))

    # -- edge hooks -----------------------------------------------------------------

    def on_branch(self, pc: int, taken: bool) -> None:
        frame = self.stack[-1]
        tables = frame[0]
        if tables is None:
            return
        if not self._open:
            frame[2] = True
            return
        key = (pc, taken)
        back = tables.branch_back.get(key)
        if back is not None:
            self._back_edge(frame, back)
            return
        if frame[2]:
            return
        inc = tables.branch.get(key)
        if inc is not None:
            frame[1] += inc
        if key in tables.charged:
            self.increments += 1
            if self.charge:
                self.vm.time += self._edge_cost

    def on_jump_back(self, pc: int) -> None:
        frame = self.stack[-1]
        tables = frame[0]
        if tables is None:
            return
        if not self._open:
            frame[2] = True
            return
        self._back_edge(frame, tables.back_jump[pc])

    def _back_edge(self, frame, back) -> None:
        record_inc, reset = back
        if frame[2]:
            # Register went stale while the sampling window was closed;
            # the reset value fully determines it again.
            frame[1] = reset
            frame[2] = False
            return
        self._record(frame[3], frame[1] + record_inc)
        frame[1] = reset

    def _record(self, function: int, path_id: int) -> None:
        self.records += 1
        self.profile.record(function, path_id)
        if self.charge:
            self.vm.time += self._record_cost
        if self._windowed:
            self._budget -= 1
            if self._budget <= 0:
                self._open = False

    # -- timer hook (CBS windowing) --------------------------------------------------

    def on_tick(self, vm) -> None:
        if not self._windowed:
            return
        self._ticks += 1
        if not self._open and self._ticks % self.stride == 0:
            self._open = True
            self._budget = self.samples_per_tick
            self.windows += 1

    # -- summaries ------------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "total": self.records,
            "distinct": self.profile.distinct(),
            "increments": self.increments,
            "windows": self.windows,
        }

    def describe(self) -> str:
        return (
            f"PathTracker({self.mode}, {self.records} records, "
            f"{self.profile.distinct()} distinct, {self.increments} increments)"
        )
