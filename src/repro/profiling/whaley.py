"""Whaley-style asynchronous stack sampling (paper §3.3).

Whaley's profiler runs a separate *sampling thread* that periodically
observes the program counters and stack pointers of the running threads;
the program threads perform no profiling work and never know they were
sampled.  In the simulation this means: on every timer tick the profiler
inspects the guest stack directly — no yieldpoint flag is ever set, no
guest-visible cost is charged — and records the top of the stack into a
calling context tree.

Its weakness is exactly the paper's: the observation records where
*time* is spent, so the derived call-edge weights reflect time, not call
frequency (method ``M`` looping over non-call work is repeatedly seen at
the top of the stack and its outgoing short calls are missed).
"""

from __future__ import annotations

from collections import Counter

from repro.profiling.cct import CallingContextTree
from repro.profiling.dcg import DCG


class WhaleyProfiler:
    """Asynchronous top-of-stack sampler building a CCT."""

    def __init__(self, context_depth: int = 8):
        if context_depth < 2:
            raise ValueError("context_depth must be >= 2")
        self.context_depth = context_depth
        self.cct = CallingContextTree()
        self.dcg = DCG()  # edge between the top two frames at each tick
        self.method_samples: Counter = Counter()
        self.samples_taken = 0

    def attach(self, vm) -> None:
        pass

    def handle_timer(self, vm) -> None:
        frames = vm.frames
        if not frames:
            return
        self.samples_taken += 1
        self.method_samples[frames[-1].method.index] += 1
        depth = min(self.context_depth, len(frames))
        path = [
            (frame.method.index, frame.callsite_pc) for frame in frames[-depth:]
        ]
        self.cct.record_path(path)
        edge = vm.current_edge()
        if edge is not None:
            self.dcg.record_edge(edge)

    def handle_yieldpoint(self, vm, kind: int) -> None:
        # Never reached: this profiler never sets the yieldpoint flag.
        vm.yieldpoint_flag = 0
