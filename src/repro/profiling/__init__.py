"""Dynamic call graph profiling: the paper's CBS technique plus every
baseline it is compared against (exhaustive, timer, code patching,
Whaley), the DCG/CCT data structures, and the accuracy metrics."""

from repro.profiling.cbs import CBSProfiler, SKIP_POLICIES
from repro.profiling.cct import CallingContextTree, CCTNode, context_overlap
from repro.profiling.dcg import DCG, Edge
from repro.profiling.exhaustive import ExhaustiveProfiler, INSTRUMENTATION_COST
from repro.profiling.hardware import HardwareCallSampler
from repro.profiling.loops import CBSLoopProfiler
from repro.profiling.metrics import (
    accuracy,
    edge_coverage,
    hot_edge_precision,
    hot_edge_recall,
    hot_edges,
    overlap,
    weight_rank_correlation,
)
from repro.profiling.patching import CodePatchingProfiler
from repro.profiling.receivers import ReceiverProfile
from repro.profiling.serialize import (
    ProfileFormatError,
    ProfileMismatchWarning,
    dcg_from_dict,
    dcg_to_dict,
    load_profile,
    save_profile,
)
from repro.profiling.timer_sampler import TimerProfiler
from repro.profiling.whaley import WhaleyProfiler

__all__ = [
    "CBSLoopProfiler",
    "CBSProfiler",
    "CCTNode",
    "CallingContextTree",
    "CodePatchingProfiler",
    "DCG",
    "Edge",
    "ExhaustiveProfiler",
    "HardwareCallSampler",
    "INSTRUMENTATION_COST",
    "ProfileFormatError",
    "ProfileMismatchWarning",
    "ReceiverProfile",
    "SKIP_POLICIES",
    "TimerProfiler",
    "WhaleyProfiler",
    "accuracy",
    "context_overlap",
    "edge_coverage",
    "hot_edge_precision",
    "hot_edge_recall",
    "hot_edges",
    "dcg_from_dict",
    "dcg_to_dict",
    "load_profile",
    "overlap",
    "save_profile",
    "weight_rank_correlation",
]
